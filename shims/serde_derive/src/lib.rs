//! Derive macros for the offline `serde` stand-in.
//!
//! The build environment cannot fetch `syn`/`quote`, so the input item is
//! parsed directly from the `proc_macro::TokenStream` and the impl is
//! generated as a source string. Supported shapes — the only ones the
//! workspace uses:
//!
//! - structs with named fields (honouring `#[serde(default)]`; `Option`
//!   fields tolerate missing keys, like real serde)
//! - newtype structs (`struct Time(u64);`) — serialized as the inner value
//! - enums with unit, newtype, and struct variants, externally tagged
//!   (`"Variant"` / `{"Variant": ...}`), matching serde's default encoding
//!
//! Generics, tuple structs with more than one field, and other serde
//! attributes are intentionally unsupported and panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `#[serde(default)]` present, or the type is `Option<..>` (serde treats
    /// a missing `Option` field as `None`).
    default: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Newtype {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (the shim's Value-based trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the shim's Value-based trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_at(&toks, i, "struct/enum keyword");
    i += 1;
    let name = ident_at(&toks, i, "type name");
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generics are not supported (on `{name}`)");
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_types(g.stream());
                assert!(
                    arity == 1,
                    "serde shim derive: tuple struct `{name}` must have exactly 1 field, has {arity}"
                );
                Item::Newtype { name }
            }
            other => panic!("serde shim derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    }
}

fn ident_at(toks: &[TokenTree], i: usize, what: &str) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected {what}, found {other:?}"),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// Skips field attributes, reporting whether `#[serde(default)]` was seen.
fn skip_field_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            let body = g.stream().to_string();
            let compact: String = body.chars().filter(|c| !c.is_whitespace()).collect();
            if compact.starts_with("serde(") && compact.contains("default") {
                default = true;
            }
        }
        *i += 2;
    }
    default
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut default = skip_field_attrs(&toks, &mut i);
        skip_attrs_and_vis(&toks, &mut i);
        let name = ident_at(&toks, i, "field name");
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde shim derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        // Scan the type: stop at a comma outside angle brackets; note whether
        // the leading path segment is `Option`.
        let mut angle = 0i32;
        let mut first_ident = true;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        i += 1;
                        break;
                    }
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle -= 1;
                    }
                }
                TokenTree::Ident(id) => {
                    if first_ident && id.to_string() == "Option" {
                        default = true;
                    }
                    first_ident = false;
                }
                _ => first_ident = false,
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_top_level_types(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1;
    for (idx, t) in toks.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            let c = p.as_char();
            if c == '<' {
                angle += 1;
            } else if c == '>' {
                angle -= 1;
            } else if c == ',' && angle == 0 && idx + 1 < toks.len() {
                count += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_field_attrs(&toks, &mut i); // e.g. #[default] on a variant
        let name = ident_at(&toks, i, "variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_types(g.stream());
                assert!(
                    arity == 1,
                    "serde shim derive: tuple variant `{name}` must have exactly 1 field, has {arity}"
                );
                i += 1;
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, {
            let mut b = String::from(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let fname = &f.name;
                b.push_str(&format!(
                    "__obj.push((::std::string::String::from(\"{fname}\"), ::serde::Serialize::to_value(&self.{fname})));\n"
                ));
            }
            b.push_str("::serde::Value::Object(__obj)");
            b
        }),
        Item::Newtype { name } => (name, "::serde::Serialize::to_value(&self.0)".to_string()),
        Item::Enum { name, variants } => (name, {
            let mut b = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => b.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Newtype => b.push_str(&format!(
                        "{name}::{vname}(__x) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__x))]),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        b.push_str(&format!("{name}::{vname} {{ {} }} => {{\n", pat.join(", ")));
                        b.push_str(
                            "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            let fname = &f.name;
                            b.push_str(&format!(
                                "__obj.push((::std::string::String::from(\"{fname}\"), ::serde::Serialize::to_value({fname})));\n"
                            ));
                        }
                        b.push_str(&format!(
                            "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(__obj))])\n}}\n"
                        ));
                    }
                }
            }
            b.push('}');
            b
        }),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic, unused_mut, dead_code)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_field_extraction(type_name: &str, fields: &[Field], obj_var: &str) -> String {
    let mut b = String::new();
    for f in fields {
        let fname = &f.name;
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::Error::custom(\
                 \"missing field `{fname}` in {type_name}\"))"
            )
        };
        b.push_str(&format!(
            "{fname}: match __find(&{obj_var}, \"{fname}\") {{\n\
                 ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
                 ::std::option::Option::None => {missing},\n\
             }},\n"
        ));
    }
    b
}

fn gen_deserialize(item: &Item) -> String {
    let find_helper =
        "fn __find<'__a>(__obj: &'__a [(::std::string::String, ::serde::Value)], __key: &str) \
                       -> ::std::option::Option<&'__a ::serde::Value> {\n\
                           __obj.iter().find(|__kv| __kv.0 == __key).map(|__kv| &__kv.1)\n\
                       }\n";
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, {
            let mut b = String::from(find_helper);
            b.push_str(&format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n"
            ));
            b.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            b.push_str(&gen_field_extraction(name, fields, "__obj"));
            b.push_str("})");
            b
        }),
        Item::Newtype { name } => (
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        ),
        Item::Enum { name, variants } => {
            (name, {
                let mut b = String::from(find_helper);
                // Unit variants arrive as a bare string.
                b.push_str("if let ::std::option::Option::Some(__s) = __v.as_str() {\nreturn match __s {\n");
                for v in variants {
                    if matches!(v.kind, VariantKind::Unit) {
                        let vname = &v.name;
                        b.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                }
                b.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n}};\n}}\n"
                ));
                // Data variants arrive externally tagged: {"Variant": ...}.
                b.push_str(
                    "if let ::std::option::Option::Some(__obj) = __v.as_object() {\n\
                 if __obj.len() == 1 {\n\
                 let (__tag, __inner) = (&__obj[0].0, &__obj[0].1);\n\
                 return match __tag.as_str() {\n",
                );
                for v in variants {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {}
                        VariantKind::Newtype => b.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\
                         {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
                        )),
                        VariantKind::Struct(fields) => {
                            b.push_str(&format!(
                                "\"{vname}\" => {{\n\
                             let __fobj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n"
                            ));
                            b.push_str(&gen_field_extraction(name, fields, "__fobj"));
                            b.push_str("})\n}\n");
                        }
                    }
                }
                b.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n}};\n}}\n}}\n"
                ));
                b.push_str(&format!(
                "::std::result::Result::Err(::serde::Error::custom(\"invalid value for enum {name}\"))"
            ));
                b
            })
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic, unused_variables, dead_code, unreachable_code)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
