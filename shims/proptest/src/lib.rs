//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(ProptestConfig::with_cases(N))]`,
//! integer/float range strategies, tuple strategies, `any::<bool>()`,
//! `prop::collection::vec`, `prop::sample::select`, `.prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Generation is deterministic (seeded per test case index) and there is no
//! shrinking: a failing case panics with the generated inputs so it can be
//! reproduced by reading the message. `proptest-regressions` files are
//! ignored.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion (from `prop_assert!`-family macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic random source driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds a generator from a case index (SplitMix64-expanded xoshiro256++).
    #[must_use]
    pub fn for_case(seed: u64) -> Self {
        let mut state = seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(0xA076_1D64_78BD_642F);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw below `n` (must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives the cases of one property.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given config.
    #[must_use]
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Number of cases to run.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The deterministic generator for case `case`.
    #[must_use]
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::for_case(u64::from(case))
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.abs_diff(start) as u64;
                match span.checked_add(1) {
                    Some(n) => start.wrapping_add(rng.below(n) as $t),
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `T` (see [`any`]).
#[derive(Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;
        use std::ops::{Range, RangeInclusive};

        /// Anything usable as a size range for [`vec`].
        pub trait SizeRange {
            /// Draws a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty size range");
                s + rng.below((e - s + 1) as u64) as usize
            }
        }

        /// Strategy for vectors of values from `element`.
        #[derive(Debug)]
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors whose length is drawn from `size` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;

        /// Strategy choosing uniformly from a fixed set (see [`select`]).
        #[derive(Debug)]
        pub struct Select<T: Clone + Debug>(Vec<T>);

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// Chooses uniformly from `options` (must be non-empty).
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires options");
            Select(options)
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __runner = $crate::TestRunner::new(__config);
                for __case in 0..__runner.cases() {
                    let mut __rng = __runner.rng_for_case(__case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "property `{}` failed at case {}: {}\n  inputs: {}",
                            stringify!($name), __case, __e, __inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, reporting the inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{} ({:?} != {:?})", format!($($fmt)*), l, r);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{} ({:?} == {:?})", format!($($fmt)*), l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    struct Spec {
        p: u64,
        mask: u8,
    }

    fn spec() -> impl Strategy<Value = Spec> {
        (1u64..100, 0u8..=255).prop_map(|(p, mask)| Spec { p, mask })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 0usize..=3, f in -2.0f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec((1u64..50, 0u8..=7), 1..20),
            pick in prop::sample::select(vec![1u32, 5, 9]),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!([1u32, 5, 9].contains(&pick));
            let _ = flag;
            for (a, b) in v {
                prop_assert!((1..50).contains(&a), "a = {}", a);
                prop_assert!(b <= 7);
            }
        }

        #[test]
        fn mapped_strategies(s in spec(), same in prop::collection::vec(spec(), 2..5)) {
            prop_assert!(s.p >= 1 && s.p < 100);
            let _ = s.mask;
            prop_assert_ne!(same.len(), 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let runner = TestRunner::new(ProptestConfig::with_cases(4));
        let s = (1u64..1_000, 0u8..=255);
        let a: Vec<_> = (0..4)
            .map(|c| s.generate(&mut runner.rng_for_case(c)))
            .collect();
        let b: Vec<_> = (0..4)
            .map(|c| s.generate(&mut runner.rng_for_case(c)))
            .collect();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    use crate::{ProptestConfig, Strategy, TestRunner};
}
