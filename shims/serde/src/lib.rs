//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, self-contained replacement that covers exactly the surface the
//! repo uses: `#[derive(Serialize, Deserialize)]` on structs and enums, the
//! externally-tagged JSON data model, and `#[serde(default)]`.
//!
//! Instead of serde's visitor architecture, everything round-trips through a
//! JSON-shaped [`Value`] tree: `Serialize` renders a value into a [`Value`],
//! `Deserialize` reads one back. `serde_json` (also shimmed) provides the
//! text encoding on top.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the intermediate data model.
///
/// Objects preserve insertion order so emitted JSON is stable and matches
/// field declaration order, like serde's derive.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::from_value(v)?))
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let mut it = a.iter();
                Ok(($(
                    $t::from_value(
                        it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types usable as JSON object keys (serde stringifies non-string keys).
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    ///
    /// # Errors
    ///
    /// Returns an error when `s` does not parse as `Self`.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::custom(concat!("invalid map key for ", stringify!($t))))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object for map"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: MapKey,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: MapKey + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object for map"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let f = f64::from_value(&0.25f64.to_value()).unwrap();
        assert!((f - 0.25).abs() < 1e-12);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2u64), (3, 4)];
        let back: Vec<(usize, u64)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let o: Option<u32> = None;
        assert!(o.to_value().is_null());
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn numeric_cross_decoding() {
        // integers written as JSON numbers decode into f64 fields
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::I64(5)).unwrap(), 5);
        assert!(u64::from_value(&Value::I64(-5)).is_err());
    }

    #[test]
    fn object_get() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert!(v.get("b").is_none());
    }
}
