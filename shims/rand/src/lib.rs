//! Offline stand-in for the `rand` crate.
//!
//! Provides the slice of rand 0.8's API that the workspace uses:
//! `rngs::SmallRng` (implemented as xoshiro256++ seeded via SplitMix64, the
//! same family real `SmallRng` uses on 64-bit targets), `SeedableRng::seed_from_u64`,
//! and `Rng::{gen, gen_range}` over integer ranges.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from raw random bits (stand-in for rand's `Standard`
/// distribution).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable with a generator (stand-in for rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw below `n` (Lemire's multiply-shift rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(n);
    let mut lo = m as u64;
    if lo < n {
        let t = n.wrapping_neg() % n;
        while lo < t {
            m = u128::from(rng.next_u64()) * u128::from(n);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                match span.checked_add(1) {
                    Some(n) => start + uniform_below(rng, n) as $t,
                    None => rng.next_u64() as $t, // full-width range
                }
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as rand does, so similar
            // seeds yield decorrelated streams.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn nearby_seeds_decorrelated() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn f64_uniform_mean() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = total / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn small_spans_hit_every_value() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
