//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness exposing the API shape the workspace's
//! benches use (`benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `criterion_group!`,
//! `criterion_main!`). Each sample times a batch of iterations with
//! `std::time::Instant`; median and min per-iteration times are printed to
//! stdout. No statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function name` / `parameter` pair).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Per-iteration times of the collected samples.
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // `--test`: run the routine once to check it works, skip timing.
            self.results.clear();
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
            return;
        }
        // Warm-up and batch sizing: aim for ~5ms per sample, at least 1 iter.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed();
        let batch = if once < Duration::from_micros(50) {
            (Duration::from_millis(5).as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u32
        } else {
            1
        };
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.results.push(start.elapsed() / batch);
        }
    }

    fn summary(&self) -> Option<(Duration, Duration)> {
        if self.results.is_empty() {
            return None;
        }
        let mut sorted = self.results.clone();
        sorted.sort();
        Some((sorted[sorted.len() / 2], sorted[0]))
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark taking only a `Bencher`.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            results: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.into_id(), &bencher);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            results: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id.into_id(), &bencher);
        self
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let Some((median, min)) = bencher.summary() else {
            println!("{}/{id}: no samples collected", self.name);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  {per_sec:.0} elem/s")
            }
            Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  {per_sec:.0} B/s")
            }
            _ => String::new(),
        };
        println!("{}/{id}: median {median:?}  min {min:?}{rate}", self.name);
    }

    /// Finishes the group (printing happens per-benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Honors `cargo bench -- --test` like real criterion: each benchmark
    /// routine runs exactly once, untimed, as a smoke test.
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group-runner function, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, invoking each listed group function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
        assert!(runs > 0);
    }
}
