//! Offline stand-in for `crossbeam`, covering `crossbeam::thread::scope`.
//!
//! Built on `std::thread::scope` (stable since 1.63). The only API
//! difference papered over here: crossbeam's spawn closures receive the
//! scope as an argument, and `scope` returns a `Result` carrying child
//! panics instead of propagating them.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; closures spawned within may borrow from `'env`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope,
        /// so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed, joining
    /// all threads before returning.
    ///
    /// # Errors
    ///
    /// Returns the panic payload if any spawned thread (or `f` itself)
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread as cb_thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_environment() {
        let counter = AtomicUsize::new(0);
        cb_thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = cb_thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
