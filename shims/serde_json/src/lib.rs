//! Offline stand-in for `serde_json`: a JSON reader/writer over the serde
//! shim's [`Value`] tree.
//!
//! Covers the surface the workspace uses: `from_str`, `to_string`,
//! `to_string_pretty`, `to_writer`, and `Value`. The pretty printer emits
//! 2-space indentation with `"key": value` separators (same shape as real
//! serde_json), which some tests rely on for textual substitution.

use std::fmt::Write as _;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON encoding/decoding failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing garbage, or a shape mismatch
/// with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Infallible for tree-shaped values; the `Result` mirrors serde_json's API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (2-space indent).
///
/// # Errors
///
/// Infallible for tree-shaped values; the `Result` mirrors serde_json's API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value as compact JSON into an `io::Write`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible for tree-shaped values; the `Result` mirrors serde_json's API.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json refuses non-finite floats; emitting null keeps the
        // document valid without panicking deep inside an exporter.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a fractional part so the value reparses as a float.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_compact() {
        let v: Value = from_str(r#"{"a": 1, "b": [true, null, -2, 0.5], "c": "x\ny"}"#).unwrap();
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[true,null,-2,0.5],"c":"x\ny"}"#);
    }

    #[test]
    fn pretty_uses_colon_space() {
        let v = Value::Object(vec![
            ("partitions".into(), Value::U64(10)),
            ("sf".into(), Value::F64(1.0)),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"partitions\": 10"), "got: {s}");
        assert!(s.contains("\"sf\": 1.0"), "got: {s}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": 1} trailing").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
    }

    #[test]
    fn round_trips_floats_and_escapes() {
        let v: Value = from_str("[0.3, 2.0, 1e3, \"\\u0041\\u00e9\"]").unwrap();
        let s = to_string(&v).unwrap();
        let v2: Value = from_str(&s).unwrap();
        assert_eq!(v, v2);
        assert_eq!(v.as_array().unwrap()[3].as_str(), Some("Aé"));
    }

    #[test]
    fn typed_round_trip() {
        let pairs: Vec<(usize, u64)> = vec![(1, 2), (3, 4)];
        let s = to_string(&pairs).unwrap();
        let back: Vec<(usize, u64)> = from_str(&s).unwrap();
        assert_eq!(back, pairs);
    }
}
