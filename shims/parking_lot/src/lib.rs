//! Offline stand-in for `parking_lot`, backed by `std::sync::Mutex`.
//!
//! Matches parking_lot's API shape where the workspace uses it: `lock()`
//! returns a guard directly (poisoning is swallowed, as parking_lot has no
//! poisoning) and `into_inner()` takes no `Result`.

/// The guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
