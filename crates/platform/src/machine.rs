//! The machine: all working processors plus delivery bookkeeping.

use paragon_des::{Duration, Time};
use rt_task::{CommModel, ProcessorId, ResourceEats, Task, TaskId};
use serde::{Deserialize, Serialize};

use crate::worker::{FailedWork, Worker};

/// Static machine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of working processors `m` (the dedicated host is extra).
    pub workers: usize,
    /// The interconnect cost model: the paper's flat `c_ij ∈ {0, C}`, a 2D
    /// mesh, or a hierarchical node/rack topology (whose 1-node degenerate
    /// form is the flat model).
    pub comm: CommModel,
}

/// One task-to-processor dispatch: the unit a delivered schedule consists of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatch {
    /// The task to execute.
    pub task: Task,
    /// The worker it was assigned to.
    pub processor: ProcessorId,
}

/// What actually happened to one dispatched task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionRecord {
    /// The task's id.
    pub task: TaskId,
    /// The worker that executed it.
    pub processor: ProcessorId,
    /// When the schedule containing it was delivered.
    pub delivered: Time,
    /// When execution (including any communication delay) began.
    pub start: Time,
    /// When execution finished.
    pub completion: Time,
    /// The task's absolute deadline.
    pub deadline: Time,
    /// Whether `completion <= deadline`.
    pub met_deadline: bool,
    /// The service time charged (`p + c`).
    pub service: Duration,
}

/// The simulated distributed-memory machine.
///
/// See the [crate docs](crate) for the execution model and an example.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    workers: Vec<Worker>,
    completions: Vec<CompletionRecord>,
    resources: ResourceEats,
}

impl Machine {
    /// Builds an idle machine.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is zero.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.workers > 0, "a machine needs at least one worker");
        Machine {
            workers: ProcessorId::all(config.workers).map(Worker::new).collect(),
            config,
            completions: Vec::new(),
            resources: ResourceEats::new(),
        }
    }

    /// Number of working processors.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The interconnect model.
    #[must_use]
    pub fn comm(&self) -> &CommModel {
        &self.config.comm
    }

    /// The cluster topology, when the interconnect is hierarchical.
    #[must_use]
    pub fn topology(&self) -> Option<&rt_task::TopologySpec> {
        self.config.comm.topology()
    }

    /// Read access to one worker.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn worker(&self, p: ProcessorId) -> &Worker {
        &self.workers[p.index()]
    }

    /// Iterates over all workers.
    pub fn iter_workers(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter()
    }

    /// Delivers a (partial) schedule at instant `at`: each dispatch is
    /// appended to its worker's FIFO queue in order, and exact start and
    /// completion times are computed immediately (valid because execution is
    /// non-preemptive FIFO and deliveries only append).
    ///
    /// Returns the completion records for exactly this delivery, in dispatch
    /// order. All records are also retained in [`Machine::completions`].
    pub fn deliver(&mut self, dispatches: Vec<Dispatch>, at: Time) -> Vec<CompletionRecord> {
        let mut new_records = Vec::with_capacity(dispatches.len());
        for Dispatch { task, processor } in dispatches {
            let service = self.config.comm.demand(&task, processor);
            // a task may not start before its resources are available
            let ready = at.max(self.resources.earliest_start(task.resources()));
            let start = self.workers[processor.index()].admit(&task, ready, service);
            let completion = start + service;
            self.resources.commit(task.resources(), completion);
            let record = CompletionRecord {
                task: task.id(),
                processor,
                delivered: at,
                start,
                completion,
                deadline: task.deadline(),
                met_deadline: task.meets_deadline(completion),
                service,
            };
            self.completions.push(record.clone());
            new_records.push(record);
        }
        new_records
    }

    /// Marks processor `p` down at instant `at`. Queued-but-unstarted work
    /// is orphaned back to the caller; the in-flight task (if any) either
    /// finishes (`keep_in_flight`) or is lost. The eagerly computed
    /// [`CompletionRecord`]s of every retracted slot are removed from
    /// [`Machine::completions`].
    ///
    /// Resource commits made for retracted work are *not* rolled back: a
    /// held resource-available time can only be conservative (later than
    /// necessary), which delays future tasks but never breaks the deadline
    /// guarantee for work that is re-scheduled.
    ///
    /// `at` may precede earlier deliveries' instants — the host discovers
    /// failures at phase boundaries — and the partition around `at` is
    /// still exact.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or already down.
    pub fn fail(&mut self, p: ProcessorId, at: Time, keep_in_flight: bool) -> FailedWork {
        let failed = self.workers[p.index()].fail(at, keep_in_flight);
        let mut retract: Vec<(TaskId, Time)> = failed
            .orphaned
            .iter()
            .map(|(t, start)| (t.id(), *start))
            .collect();
        if let Some((t, start)) = &failed.lost {
            retract.push((t.id(), *start));
        }
        if !retract.is_empty() {
            self.completions
                .retain(|r| !(r.processor == p && retract.contains(&(r.task, r.start))));
        }
        failed
    }

    /// Fails an entire node (shard fault domain) at instant `at`: every
    /// processor of node `n` that is still up goes down as if by
    /// [`Machine::fail`], and the collected failed work is returned in
    /// processor order. Processors already down are skipped — a node crash
    /// subsumes any prior per-processor failure inside it.
    ///
    /// # Panics
    ///
    /// Panics if the interconnect has no topology or `n` is not one of its
    /// nodes.
    pub fn fail_node(&mut self, n: usize, at: Time, keep_in_flight: bool) -> Vec<FailedWork> {
        let topo = *self
            .topology()
            .expect("fail_node requires a hierarchical topology");
        let (lo, hi) = topo.node_range(n);
        (lo..hi)
            .map(ProcessorId::new)
            .filter(|&p| !self.is_down(p))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|p| self.fail(p, at, keep_in_flight))
            .collect()
    }

    /// Brings a down processor back up at instant `at` (see
    /// [`Worker::recover`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or not down.
    pub fn recover(&mut self, p: ProcessorId, at: Time) {
        self.workers[p.index()].recover(at);
    }

    /// Whether processor `p` is currently down.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn is_down(&self, p: ProcessorId) -> bool {
        self.workers[p.index()].is_down()
    }

    /// The machine's resource earliest-available times (what the next
    /// scheduling phase should plan against).
    #[must_use]
    pub fn resource_eats(&self) -> &ResourceEats {
        &self.resources
    }

    /// The paper's `Load_k` for worker `p` at `now`.
    #[must_use]
    pub fn load(&self, p: ProcessorId, now: Time) -> Duration {
        self.workers[p.index()].load(now)
    }

    /// All worker loads at `now`, indexed by processor.
    #[must_use]
    pub fn loads(&self, now: Time) -> Vec<Duration> {
        self.workers.iter().map(|w| w.load(now)).collect()
    }

    /// `Min_Load` (Figure 3): the minimum waiting time among *available*
    /// working processors at `now`. Down processors are excluded — they are
    /// not candidates for placement, so their (unbounded) wait must not
    /// inflate the quantum. With every processor down this degenerates to
    /// zero, leaving the quantum at `Min_Slack`.
    #[must_use]
    pub fn min_load(&self, now: Time) -> Duration {
        self.workers
            .iter()
            .filter(|w| !w.is_down())
            .map(|w| w.load(now))
            .min()
            .unwrap_or(Duration::ZERO)
    }

    /// The instant every worker has drained its queue.
    #[must_use]
    pub fn all_idle_at(&self) -> Time {
        self.workers
            .iter()
            .map(Worker::busy_until)
            .max()
            .expect("machine has at least one worker")
    }

    /// Every completion record so far, in delivery order.
    #[must_use]
    pub fn completions(&self) -> &[CompletionRecord] {
        &self.completions
    }

    /// Count of completions that met their deadline.
    #[must_use]
    pub fn deadline_hits(&self) -> usize {
        self.completions.iter().filter(|r| r.met_deadline).count()
    }

    /// Number of distinct workers that have executed at least one task —
    /// used to validate the paper's conjecture that sequence-oriented search
    /// loads only a fraction of the processors.
    #[must_use]
    pub fn workers_used(&self) -> usize {
        self.workers.iter().filter(|w| w.executed() > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_task::AffinitySet;

    fn machine(workers: usize, c_us: u64) -> Machine {
        Machine::new(MachineConfig {
            workers,
            comm: CommModel::constant(Duration::from_micros(c_us)),
        })
    }

    fn task(id: u64, p_us: u64, d_us: u64, affine: &[usize]) -> Task {
        Task::builder(TaskId::new(id))
            .processing_time(Duration::from_micros(p_us))
            .deadline(Time::from_micros(d_us))
            .affinity(
                affine
                    .iter()
                    .map(|&i| ProcessorId::new(i))
                    .collect::<AffinitySet>(),
            )
            .build()
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = machine(0, 0);
    }

    #[test]
    fn delivery_computes_exact_times() {
        let mut m = machine(2, 100);
        let recs = m.deliver(
            vec![
                Dispatch {
                    task: task(0, 1_000, 10_000, &[0]),
                    processor: ProcessorId::new(0),
                },
                Dispatch {
                    task: task(1, 1_000, 10_000, &[0]),
                    processor: ProcessorId::new(0),
                },
                Dispatch {
                    task: task(2, 1_000, 10_000, &[0]),
                    processor: ProcessorId::new(1),
                },
            ],
            Time::ZERO,
        );
        // P0: affine task then affine task, FIFO
        assert_eq!(recs[0].start, Time::ZERO);
        assert_eq!(recs[0].completion, Time::from_micros(1_000));
        assert_eq!(recs[1].start, Time::from_micros(1_000));
        assert_eq!(recs[1].completion, Time::from_micros(2_000));
        // P1: non-affine, pays C=100
        assert_eq!(recs[2].service, Duration::from_micros(1_100));
        assert_eq!(recs[2].completion, Time::from_micros(1_100));
        assert!(recs.iter().all(|r| r.met_deadline));
        assert_eq!(m.completions().len(), 3);
        assert_eq!(m.deadline_hits(), 3);
        assert_eq!(m.workers_used(), 2);
    }

    #[test]
    fn missed_deadline_is_recorded_not_dropped() {
        let mut m = machine(1, 0);
        let recs = m.deliver(
            vec![Dispatch {
                task: task(0, 5_000, 1_000, &[0]),
                processor: ProcessorId::new(0),
            }],
            Time::ZERO,
        );
        assert!(!recs[0].met_deadline);
        assert_eq!(m.deadline_hits(), 0);
    }

    #[test]
    fn loads_track_backlog_per_worker() {
        let mut m = machine(3, 0);
        m.deliver(
            vec![Dispatch {
                task: task(0, 4_000, 100_000, &[1]),
                processor: ProcessorId::new(1),
            }],
            Time::ZERO,
        );
        let now = Time::from_micros(1_000);
        assert_eq!(
            m.load(ProcessorId::new(1), now),
            Duration::from_micros(3_000)
        );
        assert_eq!(m.load(ProcessorId::new(0), now), Duration::ZERO);
        assert_eq!(
            m.loads(now),
            vec![Duration::ZERO, Duration::from_micros(3_000), Duration::ZERO]
        );
        assert_eq!(m.min_load(now), Duration::ZERO);
        assert_eq!(m.all_idle_at(), Time::from_micros(4_000));
    }

    #[test]
    fn min_load_when_all_busy() {
        let mut m = machine(2, 0);
        m.deliver(
            vec![
                Dispatch {
                    task: task(0, 2_000, 100_000, &[0]),
                    processor: ProcessorId::new(0),
                },
                Dispatch {
                    task: task(1, 5_000, 100_000, &[1]),
                    processor: ProcessorId::new(1),
                },
            ],
            Time::ZERO,
        );
        assert_eq!(m.min_load(Time::ZERO), Duration::from_micros(2_000));
    }

    #[test]
    fn later_delivery_queues_behind_earlier() {
        let mut m = machine(1, 0);
        m.deliver(
            vec![Dispatch {
                task: task(0, 10_000, 100_000, &[0]),
                processor: ProcessorId::new(0),
            }],
            Time::ZERO,
        );
        let recs = m.deliver(
            vec![Dispatch {
                task: task(1, 1_000, 100_000, &[0]),
                processor: ProcessorId::new(0),
            }],
            Time::from_micros(2_000),
        );
        assert_eq!(recs[0].start, Time::from_micros(10_000));
        assert_eq!(recs[0].delivered, Time::from_micros(2_000));
    }

    #[test]
    fn resource_holds_serialize_across_processors() {
        use rt_task::ResourceRequest;
        let mut m = machine(2, 0);
        let writer =
            task(0, 5_000, 1_000_000, &[0]).with_resources(vec![ResourceRequest::exclusive(0)]);
        let reader =
            task(1, 1_000, 1_000_000, &[1]).with_resources(vec![ResourceRequest::shared(0)]);
        let recs = m.deliver(
            vec![
                Dispatch {
                    task: writer,
                    processor: ProcessorId::new(0),
                },
                Dispatch {
                    task: reader,
                    processor: ProcessorId::new(1),
                },
            ],
            Time::ZERO,
        );
        // the reader runs on a different (idle) processor but must still
        // wait for the exclusive writer
        assert_eq!(recs[0].completion, Time::from_micros(5_000));
        assert_eq!(recs[1].start, Time::from_micros(5_000));
        assert_eq!(recs[1].completion, Time::from_micros(6_000));
        assert_eq!(
            m.resource_eats()
                .earliest_start(&[ResourceRequest::exclusive(0)]),
            Time::from_micros(6_000),
            "a future writer waits for the reader too"
        );
    }

    #[test]
    fn shared_holds_overlap_across_processors() {
        use rt_task::ResourceRequest;
        let mut m = machine(2, 0);
        let mk_reader = |id: u64, p: usize| Dispatch {
            task: task(id, 2_000, 1_000_000, &[p]).with_resources(vec![ResourceRequest::shared(3)]),
            processor: ProcessorId::new(p),
        };
        let recs = m.deliver(vec![mk_reader(0, 0), mk_reader(1, 1)], Time::ZERO);
        // shared readers run concurrently
        assert_eq!(recs[0].start, Time::ZERO);
        assert_eq!(recs[1].start, Time::ZERO);
    }

    #[test]
    fn fail_retracts_records_and_orphans_queued_work() {
        let mut m = machine(2, 0);
        m.deliver(
            vec![
                Dispatch {
                    task: task(0, 2_000, 100_000, &[0]),
                    processor: ProcessorId::new(0),
                },
                Dispatch {
                    task: task(1, 2_000, 100_000, &[0]),
                    processor: ProcessorId::new(0),
                },
                Dispatch {
                    task: task(2, 2_000, 100_000, &[1]),
                    processor: ProcessorId::new(1),
                },
            ],
            Time::ZERO,
        );
        assert_eq!(m.completions().len(), 3);
        // P0 dies at 1ms: task 0 in flight (lost), task 1 unstarted (orphan)
        let failed = m.fail(ProcessorId::new(0), Time::from_micros(1_000), false);
        assert_eq!(failed.orphaned.len(), 1);
        assert_eq!(failed.orphaned[0].0.id(), TaskId::new(1));
        assert_eq!(failed.lost.as_ref().unwrap().0.id(), TaskId::new(0));
        assert!(m.is_down(ProcessorId::new(0)));
        // only the unaffected P1 record survives
        assert_eq!(m.completions().len(), 1);
        assert_eq!(m.completions()[0].task, TaskId::new(2));
        assert_eq!(m.workers_used(), 1);
        m.recover(ProcessorId::new(0), Time::from_micros(5_000));
        assert!(!m.is_down(ProcessorId::new(0)));
        // recovered worker accepts work again, not before the recovery
        let recs = m.deliver(
            vec![Dispatch {
                task: task(3, 1_000, 100_000, &[0]),
                processor: ProcessorId::new(0),
            }],
            Time::from_micros(2_000),
        );
        assert_eq!(recs[0].start, Time::from_micros(5_000));
    }

    #[test]
    fn min_load_skips_down_processors() {
        let mut m = machine(2, 0);
        m.deliver(
            vec![Dispatch {
                task: task(0, 5_000, 100_000, &[1]),
                processor: ProcessorId::new(1),
            }],
            Time::ZERO,
        );
        // P0 idle -> min load zero; once P0 is down, P1's backlog is the min
        assert_eq!(m.min_load(Time::ZERO), Duration::ZERO);
        let _ = m.fail(ProcessorId::new(0), Time::ZERO, false);
        assert_eq!(m.min_load(Time::ZERO), Duration::from_micros(5_000));
        let _ = m.fail(ProcessorId::new(1), Time::from_micros(1), false);
        assert_eq!(
            m.min_load(Time::ZERO),
            Duration::ZERO,
            "all-down degenerates to zero"
        );
    }

    #[test]
    fn fail_with_kept_in_flight_preserves_its_record() {
        let mut m = machine(1, 0);
        m.deliver(
            vec![
                Dispatch {
                    task: task(0, 4_000, 100_000, &[0]),
                    processor: ProcessorId::new(0),
                },
                Dispatch {
                    task: task(1, 4_000, 100_000, &[0]),
                    processor: ProcessorId::new(0),
                },
            ],
            Time::ZERO,
        );
        let failed = m.fail(ProcessorId::new(0), Time::from_micros(1_000), true);
        assert!(failed.lost.is_none());
        assert_eq!(failed.orphaned.len(), 1);
        assert_eq!(m.completions().len(), 1);
        assert_eq!(m.completions()[0].task, TaskId::new(0));
    }

    #[test]
    fn fail_node_downs_every_member_once() {
        use rt_task::TopologySpec;
        let mut m = Machine::new(MachineConfig {
            workers: 6,
            comm: CommModel::hierarchical(TopologySpec::new(6, 3, 1, 0, 100, 100)),
        });
        assert_eq!(m.topology().unwrap().nodes(), 3);
        m.deliver(
            vec![
                Dispatch {
                    task: task(0, 2_000, 100_000, &[2]),
                    processor: ProcessorId::new(2),
                },
                Dispatch {
                    task: task(1, 2_000, 100_000, &[3]),
                    processor: ProcessorId::new(3),
                },
            ],
            Time::ZERO,
        );
        // P2 dies alone first; the node-1 crash then subsumes it.
        let _ = m.fail(ProcessorId::new(2), Time::from_micros(500), false);
        let failed = m.fail_node(1, Time::from_micros(1_000), false);
        assert_eq!(failed.len(), 1, "only the still-up P3 fails");
        assert!(m.is_down(ProcessorId::new(2)) && m.is_down(ProcessorId::new(3)));
        assert!(!m.is_down(ProcessorId::new(0)) && !m.is_down(ProcessorId::new(4)));
        assert_eq!(m.completions().len(), 0, "both records retracted");
    }

    #[test]
    fn workers_used_counts_distinct() {
        let mut m = machine(4, 0);
        assert_eq!(m.workers_used(), 0);
        m.deliver(
            vec![
                Dispatch {
                    task: task(0, 1_000, 100_000, &[0]),
                    processor: ProcessorId::new(0),
                },
                Dispatch {
                    task: task(1, 1_000, 100_000, &[0]),
                    processor: ProcessorId::new(0),
                },
            ],
            Time::ZERO,
        );
        assert_eq!(m.workers_used(), 1);
        assert_eq!(m.worker(ProcessorId::new(0)).executed(), 2);
        assert_eq!(m.iter_workers().count(), 4);
    }
}
