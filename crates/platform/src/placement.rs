//! Data-object placement across local memories.
//!
//! In the paper's model, data objects (sub-databases in the evaluation) are
//! distributed among the processors' private memories, possibly with copies.
//! A task has affinity with exactly the processors holding *all* of its
//! referenced objects locally (Section 2).

use rt_task::{AffinitySet, ProcessorId};
use serde::{Deserialize, Serialize};

/// Identifier of a replicable data object (e.g. a sub-database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataObjectId(usize);

impl DataObjectId {
    /// Wraps a dense object index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        DataObjectId(index)
    }

    /// The dense object index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for DataObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Which processors hold a local copy of each data object.
///
/// # Example
///
/// ```
/// use paragon_platform::{DataObjectId, Placement};
/// use rt_task::ProcessorId;
///
/// let mut placement = Placement::new(2, 4);
/// placement.add_copy(DataObjectId::new(0), ProcessorId::new(1));
/// placement.add_copy(DataObjectId::new(1), ProcessorId::new(1));
/// placement.add_copy(DataObjectId::new(1), ProcessorId::new(3));
/// // a task touching both objects is only local on P1
/// let aff = placement.affinity_for([DataObjectId::new(0), DataObjectId::new(1)]);
/// assert_eq!(aff.len(), 1);
/// assert!(aff.contains(ProcessorId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    homes: Vec<AffinitySet>,
    workers: usize,
}

impl Placement {
    /// Creates an empty placement for `objects` data objects over `workers`
    /// processors.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn new(objects: usize, workers: usize) -> Self {
        assert!(workers > 0, "placement needs at least one worker");
        Placement {
            homes: vec![AffinitySet::new(); objects],
            workers,
        }
    }

    /// Number of data objects.
    #[must_use]
    pub fn objects(&self) -> usize {
        self.homes.len()
    }

    /// Number of processors.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Records that `proc` holds a local copy of `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` or `proc` is out of range.
    pub fn add_copy(&mut self, object: DataObjectId, proc: ProcessorId) {
        assert!(
            proc.index() < self.workers,
            "processor {proc} out of range (workers={})",
            self.workers
        );
        self.homes
            .get_mut(object.index())
            .unwrap_or_else(|| panic!("unknown data object {object}"))
            .insert(proc);
    }

    /// The processors holding a copy of `object`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    #[must_use]
    pub fn holders(&self, object: DataObjectId) -> &AffinitySet {
        &self.homes[object.index()]
    }

    /// The affinity set of a task referencing `objects`: processors holding
    /// *all* of them. Referencing no objects yields affinity with every
    /// processor (nothing needs to be fetched).
    #[must_use]
    pub fn affinity_for<I: IntoIterator<Item = DataObjectId>>(&self, objects: I) -> AffinitySet {
        let mut iter = objects.into_iter();
        let Some(first) = iter.next() else {
            return AffinitySet::all(self.workers);
        };
        let mut acc = self.holders(first).clone();
        for obj in iter {
            acc = acc.intersection(self.holders(obj));
        }
        acc
    }

    /// Number of copies of each object, for replication-rate assertions.
    #[must_use]
    pub fn copy_counts(&self) -> Vec<usize> {
        self.homes.iter().map(AffinitySet::len).collect()
    }

    /// The achieved replication rate: mean fraction of processors holding
    /// each object.
    ///
    /// # Panics
    ///
    /// Panics if the placement has no objects.
    #[must_use]
    pub fn replication_rate(&self) -> f64 {
        assert!(!self.homes.is_empty(), "no data objects placed");
        let total: usize = self.homes.iter().map(AffinitySet::len).sum();
        total as f64 / (self.homes.len() * self.workers) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_copies() {
        let mut p = Placement::new(3, 4);
        assert_eq!(p.objects(), 3);
        assert_eq!(p.workers(), 4);
        p.add_copy(DataObjectId::new(0), ProcessorId::new(2));
        p.add_copy(DataObjectId::new(0), ProcessorId::new(3));
        assert_eq!(p.holders(DataObjectId::new(0)).len(), 2);
        assert!(p.holders(DataObjectId::new(1)).is_empty());
        assert_eq!(p.copy_counts(), vec![2, 0, 0]);
    }

    #[test]
    fn affinity_is_intersection_of_holders() {
        let mut p = Placement::new(2, 4);
        p.add_copy(DataObjectId::new(0), ProcessorId::new(0));
        p.add_copy(DataObjectId::new(0), ProcessorId::new(1));
        p.add_copy(DataObjectId::new(1), ProcessorId::new(1));
        p.add_copy(DataObjectId::new(1), ProcessorId::new(2));
        let aff = p.affinity_for([DataObjectId::new(0), DataObjectId::new(1)]);
        assert_eq!(
            aff.iter().map(ProcessorId::index).collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn empty_reference_set_is_fully_affine() {
        let p = Placement::new(1, 3);
        let aff = p.affinity_for([]);
        assert_eq!(aff.len(), 3);
    }

    #[test]
    fn disjoint_objects_yield_empty_affinity() {
        let mut p = Placement::new(2, 2);
        p.add_copy(DataObjectId::new(0), ProcessorId::new(0));
        p.add_copy(DataObjectId::new(1), ProcessorId::new(1));
        let aff = p.affinity_for([DataObjectId::new(0), DataObjectId::new(1)]);
        assert!(aff.is_empty());
    }

    #[test]
    fn replication_rate_is_mean_fraction() {
        let mut p = Placement::new(2, 4);
        p.add_copy(DataObjectId::new(0), ProcessorId::new(0));
        p.add_copy(DataObjectId::new(0), ProcessorId::new(1));
        p.add_copy(DataObjectId::new(1), ProcessorId::new(2));
        // (2 + 1) / (2 * 4)
        assert!((p.replication_rate() - 0.375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn copy_on_unknown_processor_panics() {
        let mut p = Placement::new(1, 2);
        p.add_copy(DataObjectId::new(0), ProcessorId::new(2));
    }

    #[test]
    #[should_panic(expected = "unknown data object")]
    fn copy_of_unknown_object_panics() {
        let mut p = Placement::new(1, 2);
        p.add_copy(DataObjectId::new(5), ProcessorId::new(0));
    }

    #[test]
    fn display_and_index() {
        let d = DataObjectId::new(7);
        assert_eq!(d.index(), 7);
        assert_eq!(d.to_string(), "D7");
    }
}
