//! The dedicated scheduling (host) processor's cost model.
//!
//! On the paper's Paragon, the host node runs the scheduler and its cost is
//! physical time. Here, scheduling cost is *virtual*: every search vertex the
//! scheduler generates and evaluates charges [`HostParams::vertex_eval_cost`]
//! against the phase's quantum. The [`SchedulingMeter`] does the bookkeeping
//! for one phase and answers "how much of `Q_s` is left" (`RQ_s`).

use paragon_des::Duration;
use serde::{Deserialize, Serialize};

/// Host-processor cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostParams {
    /// Virtual time charged per generated search vertex (allocation +
    /// evaluation + feasibility test, per Section 4.1 of the paper).
    pub vertex_eval_cost: Duration,
}

impl HostParams {
    /// A host with the given per-vertex cost.
    #[must_use]
    pub const fn new(vertex_eval_cost: Duration) -> Self {
        HostParams { vertex_eval_cost }
    }

    /// A host whose scheduling work is free — useful for isolating
    /// representation quality from overhead in ablation experiments.
    #[must_use]
    pub const fn free() -> Self {
        HostParams {
            vertex_eval_cost: Duration::ZERO,
        }
    }
}

impl Default for HostParams {
    /// Default calibrated per-vertex cost (5 µs), roughly a few thousand
    /// instructions on mid-90s hardware.
    fn default() -> Self {
        HostParams::new(Duration::from_micros(5))
    }
}

/// Scheduling-time accounting for one phase.
///
/// # Example
///
/// ```
/// use paragon_des::Duration;
/// use paragon_platform::{HostParams, SchedulingMeter};
///
/// let mut meter = SchedulingMeter::new(HostParams::new(Duration::from_micros(5)),
///                                      Duration::from_micros(12));
/// assert!(meter.charge_vertex()); // 5us consumed, 7 left
/// assert!(meter.charge_vertex()); // 10us consumed, 2 left
/// assert!(!meter.charge_vertex()); // would exceed the quantum
/// assert_eq!(meter.vertices(), 3);
/// assert!(meter.exhausted());
/// ```
#[derive(Debug, Clone)]
pub struct SchedulingMeter {
    params: HostParams,
    quantum: Duration,
    consumed: Duration,
    vertices: u64,
    exhausted: bool,
}

impl SchedulingMeter {
    /// Starts metering a phase with allocated quantum `quantum`.
    #[must_use]
    pub fn new(params: HostParams, quantum: Duration) -> Self {
        SchedulingMeter {
            params,
            quantum,
            consumed: Duration::ZERO,
            vertices: 0,
            exhausted: false,
        }
    }

    /// Charges one vertex generation. Returns `false` — and marks the meter
    /// exhausted — if the charge does not fit in the remaining quantum; the
    /// vertex is still counted (the work of discovering the budget is over
    /// was done), but `consumed` never exceeds the quantum.
    #[inline]
    pub fn charge_vertex(&mut self) -> bool {
        self.vertices += 1;
        if self.exhausted {
            return false;
        }
        let after = self.consumed + self.params.vertex_eval_cost;
        if after > self.quantum {
            self.exhausted = true;
            self.consumed = self.quantum;
            false
        } else {
            self.consumed = after;
            // A zero-cost host never exhausts; otherwise exactly filling the
            // quantum leaves no room for further vertices.
            if after == self.quantum && !self.params.vertex_eval_cost.is_zero() {
                self.exhausted = true;
            }
            true
        }
    }

    /// The host cost parameters this meter charges with.
    #[must_use]
    pub fn host_params(&self) -> HostParams {
        self.params
    }

    /// Folds a sub-meter's tally into this meter. Used by the parallel
    /// search engine, whose subtree walks each charge a private meter
    /// carrying a slice of the parent quantum: vertices add up, consumed
    /// time adds up but never exceeds the quantum, and exhaustion carries
    /// over from the sub-meter. Exactly filling a nonzero-cost quantum
    /// exhausts, mirroring [`SchedulingMeter::charge_vertex`].
    pub fn absorb(&mut self, vertices: u64, consumed: Duration, exhausted: bool) {
        self.vertices += vertices;
        let after = self.consumed + consumed;
        self.consumed = if after > self.quantum {
            self.quantum
        } else {
            after
        };
        if exhausted || (self.consumed == self.quantum && !self.params.vertex_eval_cost.is_zero()) {
            self.exhausted = true;
        }
    }

    /// The allocated quantum `Q_s(j)`.
    #[must_use]
    pub fn quantum(&self) -> Duration {
        self.quantum
    }

    /// Scheduling time consumed so far, `t_c − t_s`.
    #[must_use]
    pub fn consumed(&self) -> Duration {
        self.consumed
    }

    /// The remaining scheduling time `RQ_s(j) = Q_s − (t_c − t_s)`.
    #[must_use]
    pub fn remaining(&self) -> Duration {
        self.quantum.saturating_sub(self.consumed)
    }

    /// Number of vertices generated (including the one that hit the limit).
    #[must_use]
    pub fn vertices(&self) -> u64 {
        self.vertices
    }

    /// Whether the quantum is used up.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_until_quantum() {
        let mut m = SchedulingMeter::new(
            HostParams::new(Duration::from_micros(10)),
            Duration::from_micros(35),
        );
        assert!(m.charge_vertex());
        assert!(m.charge_vertex());
        assert!(m.charge_vertex());
        assert_eq!(m.consumed(), Duration::from_micros(30));
        assert_eq!(m.remaining(), Duration::from_micros(5));
        assert!(!m.charge_vertex(), "fourth vertex exceeds 35us");
        assert_eq!(
            m.consumed(),
            Duration::from_micros(35),
            "clamped to quantum"
        );
        assert_eq!(m.remaining(), Duration::ZERO);
        assert!(m.exhausted());
        assert_eq!(m.vertices(), 4);
        assert!(!m.charge_vertex(), "stays exhausted");
        assert_eq!(m.vertices(), 5);
    }

    #[test]
    fn exact_fill_exhausts() {
        let mut m = SchedulingMeter::new(
            HostParams::new(Duration::from_micros(10)),
            Duration::from_micros(20),
        );
        assert!(m.charge_vertex());
        assert!(m.charge_vertex());
        assert!(m.exhausted());
        assert_eq!(m.consumed(), Duration::from_micros(20));
    }

    #[test]
    fn free_host_never_exhausts() {
        let mut m = SchedulingMeter::new(HostParams::free(), Duration::ZERO);
        for _ in 0..1_000 {
            assert!(m.charge_vertex());
        }
        assert!(!m.exhausted());
        assert_eq!(m.consumed(), Duration::ZERO);
        assert_eq!(m.vertices(), 1_000);
    }

    #[test]
    fn zero_quantum_with_cost_exhausts_immediately() {
        let mut m = SchedulingMeter::new(HostParams::default(), Duration::ZERO);
        assert!(!m.charge_vertex());
        assert!(m.exhausted());
    }

    #[test]
    fn absorb_accumulates_and_clamps() {
        let mut m = SchedulingMeter::new(
            HostParams::new(Duration::from_micros(10)),
            Duration::from_micros(100),
        );
        assert!(m.charge_vertex());
        m.absorb(3, Duration::from_micros(30), false);
        assert_eq!(m.vertices(), 4);
        assert_eq!(m.consumed(), Duration::from_micros(40));
        assert!(!m.exhausted());
        // Sub-meter exhaustion carries over even when time remains here.
        m.absorb(2, Duration::from_micros(20), true);
        assert_eq!(m.vertices(), 6);
        assert_eq!(m.consumed(), Duration::from_micros(60));
        assert!(m.exhausted());
    }

    #[test]
    fn absorb_never_exceeds_quantum_and_exact_fill_exhausts() {
        let mut m = SchedulingMeter::new(
            HostParams::new(Duration::from_micros(10)),
            Duration::from_micros(50),
        );
        m.absorb(4, Duration::from_micros(40), false);
        assert!(!m.exhausted());
        m.absorb(2, Duration::from_micros(20), false);
        assert_eq!(m.consumed(), Duration::from_micros(50), "clamped");
        assert!(m.exhausted(), "full nonzero-cost quantum is exhausted");
    }

    #[test]
    fn host_params_round_trip() {
        let params = HostParams::new(Duration::from_micros(7));
        let m = SchedulingMeter::new(params, Duration::from_micros(100));
        assert_eq!(m.host_params(), params);
    }

    #[test]
    fn default_params_are_calibrated() {
        assert_eq!(
            HostParams::default().vertex_eval_cost,
            Duration::from_micros(5)
        );
    }
}
