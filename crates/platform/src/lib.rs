//! Simulated distributed-memory multiprocessor — the reproduction's stand-in
//! for the paper's Intel Paragon.
//!
//! The machine consists of `m` *working processors*, each with a private
//! local memory and a FIFO ready queue, plus one dedicated *host* processor
//! that runs the scheduling algorithm concurrently with task execution
//! (paper, Sections 2 and 4). The interconnect cost is captured by
//! [`rt_task::CommModel`]: the paper's cut-through-routed machine charges
//! the distance-independent constant `C` for every non-affine execution,
//! while a sharded cluster ([`rt_task::TopologySpec`]) charges by hierarchy
//! class — near-zero intra-node, `C` inter-node, `C'` inter-rack. The
//! paper's flat model is exactly the 1-node special case of the hierarchy.
//!
//! Because working processors execute non-preemptively from FIFO queues and
//! new work is only ever appended (a delivered schedule never preempts or
//! reorders queued work), task start/completion times can be computed eagerly
//! at delivery time — the simulation stays exact without per-tick events.
//!
//! * [`Machine`] — the processors plus delivery/completion bookkeeping,
//! * [`Placement`] — which local memories hold which data objects, deriving
//!   task affinities,
//! * [`HostParams`]/[`SchedulingMeter`] — the virtual cost of running the
//!   scheduler on the host node.
//!
//! # Example
//!
//! ```
//! use paragon_des::{Duration, Time};
//! use paragon_platform::{Dispatch, Machine, MachineConfig};
//! use rt_task::{AffinitySet, CommModel, ProcessorId, Task, TaskId};
//!
//! let mut machine = Machine::new(MachineConfig {
//!     workers: 2,
//!     comm: CommModel::constant(Duration::from_micros(100)),
//! });
//! let task = Task::builder(TaskId::new(0))
//!     .processing_time(Duration::from_millis(1))
//!     .deadline(Time::from_millis(10))
//!     .affinity(AffinitySet::from_iter([ProcessorId::new(0)]))
//!     .build();
//! let recs = machine.deliver(vec![Dispatch { task, processor: ProcessorId::new(1) }], Time::ZERO);
//! // non-affine processor: pays the 100us communication cost
//! assert_eq!(recs[0].completion, Time::from_micros(1_100));
//! assert!(recs[0].met_deadline);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod host;
mod machine;
mod placement;
mod worker;

pub use host::{HostParams, SchedulingMeter};
pub use machine::{CompletionRecord, Dispatch, Machine, MachineConfig};
pub use placement::{DataObjectId, Placement};
pub use worker::{FailedWork, Worker, UNAVAILABLE};
