//! A single working processor with a FIFO ready queue.

use paragon_des::{Duration, Time};
use rt_task::ProcessorId;

/// One working processor `P_k`.
///
/// The worker executes assignments non-preemptively in delivery order. Its
/// state is summarized by `busy_until` — the instant it finishes everything
/// currently queued — from which the paper's `Load_k` ("the waiting time
/// before the processor becomes available") follows directly.
///
/// # Example
///
/// ```
/// use paragon_des::{Duration, Time};
/// use paragon_platform::Worker;
/// use rt_task::ProcessorId;
///
/// let mut w = Worker::new(ProcessorId::new(0));
/// let start = w.admit(Time::from_millis(1), Duration::from_millis(3));
/// assert_eq!(start, Time::from_millis(1));
/// assert_eq!(w.busy_until(), Time::from_millis(4));
/// assert_eq!(w.load(Time::from_millis(1)), Duration::from_millis(3));
/// assert_eq!(w.load(Time::from_millis(10)), Duration::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Worker {
    id: ProcessorId,
    busy_until: Time,
    busy_time: Duration,
    executed: u64,
}

impl Worker {
    /// Creates an idle worker.
    #[must_use]
    pub fn new(id: ProcessorId) -> Self {
        Worker {
            id,
            busy_until: Time::ZERO,
            busy_time: Duration::ZERO,
            executed: 0,
        }
    }

    /// This worker's identifier.
    #[must_use]
    pub fn id(&self) -> ProcessorId {
        self.id
    }

    /// Appends a work item of length `service` delivered at `at`, returning
    /// the instant execution will start (after all previously queued work).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes an earlier delivery's time in a way that would
    /// start work in the past relative to `busy_until` bookkeeping — i.e.
    /// `service` must be non-zero.
    pub fn admit(&mut self, at: Time, service: Duration) -> Time {
        assert!(
            !service.is_zero(),
            "zero-length work admitted to {}",
            self.id
        );
        let start = self.busy_until.max(at);
        self.busy_until = start + service;
        self.busy_time += service;
        self.executed += 1;
        start
    }

    /// The instant this worker drains its queue.
    #[must_use]
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// The paper's `Load_k` at instant `now`: how long until the processor
    /// becomes available (zero if already idle).
    #[must_use]
    pub fn load(&self, now: Time) -> Duration {
        self.busy_until.saturating_since(now)
    }

    /// Whether the worker has no pending work at `now`.
    #[must_use]
    pub fn is_idle(&self, now: Time) -> bool {
        self.busy_until <= now
    }

    /// Total service time executed so far (for utilization reports).
    #[must_use]
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }

    /// Number of work items executed.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Idle time over the window `[0, horizon]`: the horizon minus the
    /// service time executed, saturating at zero when the worker was busy
    /// the whole window (or beyond it).
    #[must_use]
    pub fn idle_time(&self, horizon: Time) -> Duration {
        horizon
            .saturating_since(Time::ZERO)
            .saturating_sub(self.busy_time)
    }

    /// Utilization over the window `[0, horizon]`, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is `Time::ZERO`.
    #[must_use]
    pub fn utilization(&self, horizon: Time) -> f64 {
        assert!(horizon > Time::ZERO, "utilization needs a positive horizon");
        let busy = self.busy_time.as_micros().min(horizon.as_micros());
        busy as f64 / horizon.as_micros() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_when_idle_starts_immediately() {
        let mut w = Worker::new(ProcessorId::new(2));
        let start = w.admit(Time::from_millis(5), Duration::from_millis(2));
        assert_eq!(start, Time::from_millis(5));
        assert_eq!(w.busy_until(), Time::from_millis(7));
        assert_eq!(w.executed(), 1);
    }

    #[test]
    fn admit_when_busy_queues_fifo() {
        let mut w = Worker::new(ProcessorId::new(0));
        w.admit(Time::ZERO, Duration::from_millis(10));
        let start = w.admit(Time::from_millis(1), Duration::from_millis(5));
        assert_eq!(
            start,
            Time::from_millis(10),
            "second item waits for the first"
        );
        assert_eq!(w.busy_until(), Time::from_millis(15));
    }

    #[test]
    fn load_reflects_backlog() {
        let mut w = Worker::new(ProcessorId::new(0));
        assert_eq!(w.load(Time::ZERO), Duration::ZERO);
        assert!(w.is_idle(Time::ZERO));
        w.admit(Time::ZERO, Duration::from_millis(4));
        assert_eq!(w.load(Time::from_millis(1)), Duration::from_millis(3));
        assert!(!w.is_idle(Time::from_millis(1)));
        assert!(w.is_idle(Time::from_millis(4)));
    }

    #[test]
    fn busy_time_accumulates_across_gaps() {
        let mut w = Worker::new(ProcessorId::new(0));
        w.admit(Time::ZERO, Duration::from_millis(1));
        w.admit(Time::from_millis(100), Duration::from_millis(1));
        assert_eq!(w.busy_time(), Duration::from_millis(2));
        let u = w.utilization(Time::from_millis(200));
        assert!((u - 0.01).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn idle_time_complements_busy_time() {
        let mut w = Worker::new(ProcessorId::new(0));
        assert_eq!(
            w.idle_time(Time::from_millis(10)),
            Duration::from_millis(10)
        );
        w.admit(Time::ZERO, Duration::from_millis(4));
        assert_eq!(w.idle_time(Time::from_millis(10)), Duration::from_millis(6));
        // busy beyond the horizon saturates at zero idle
        assert_eq!(w.idle_time(Time::from_millis(2)), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero-length work")]
    fn zero_service_rejected() {
        let mut w = Worker::new(ProcessorId::new(0));
        w.admit(Time::ZERO, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive horizon")]
    fn utilization_rejects_zero_horizon() {
        let w = Worker::new(ProcessorId::new(0));
        let _ = w.utilization(Time::ZERO);
    }
}
