//! A single working processor with a FIFO ready queue.

use paragon_des::{Duration, Time};
use rt_task::{ProcessorId, Task};

/// Planning-time availability of a processor that is down with no known
/// repair time: far enough in the future that no real deadline can pass the
/// feasibility test against it, yet small enough that adding a service
/// demand can never overflow the microsecond counter.
pub const UNAVAILABLE: Time = Time::from_micros(u64::MAX / 4);

/// One admitted execution slot. Slots are retained for the lifetime of the
/// run so that a failure applied retroactively (the host only observes
/// failures at phase boundaries) can still partition work around the exact
/// failure instant.
#[derive(Debug, Clone)]
struct Slot {
    task: Task,
    start: Time,
    service: Duration,
}

impl Slot {
    fn completion(&self) -> Time {
        self.start + self.service
    }
}

/// Work removed from a worker by a failure.
#[derive(Debug, Clone, Default)]
pub struct FailedWork {
    /// Queued-but-unstarted tasks handed back to the host for re-batching,
    /// in FIFO order, each paired with the start instant its retracted slot
    /// had been assigned.
    pub orphaned: Vec<(Task, Time)>,
    /// The task that was executing at the failure instant, with its start —
    /// present only under the `Lost` in-flight policy (it was killed and its
    /// completion record must be retracted).
    pub lost: Option<(Task, Time)>,
}

/// One working processor `P_k`.
///
/// The worker executes assignments non-preemptively in delivery order. Its
/// planning state is summarized by `busy_until` — the instant it finishes
/// everything currently queued — from which the paper's `Load_k` ("the
/// waiting time before the processor becomes available") follows directly.
/// It additionally keeps the admitted slots and a down flag so that fault
/// injection can orphan unstarted work back to the host.
///
/// # Example
///
/// ```
/// use paragon_des::{Duration, Time};
/// use paragon_platform::Worker;
/// use rt_task::{ProcessorId, Task, TaskId};
///
/// let task = Task::builder(TaskId::new(0))
///     .processing_time(Duration::from_millis(3))
///     .deadline(Time::from_millis(10))
///     .build();
/// let mut w = Worker::new(ProcessorId::new(0));
/// let start = w.admit(&task, Time::from_millis(1), Duration::from_millis(3));
/// assert_eq!(start, Time::from_millis(1));
/// assert_eq!(w.busy_until(), Time::from_millis(4));
/// assert_eq!(w.load(Time::from_millis(1)), Duration::from_millis(3));
/// assert_eq!(w.load(Time::from_millis(10)), Duration::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Worker {
    id: ProcessorId,
    busy_until: Time,
    busy_time: Duration,
    executed: u64,
    queue: Vec<Slot>,
    down: bool,
}

impl Worker {
    /// Creates an idle worker.
    #[must_use]
    pub fn new(id: ProcessorId) -> Self {
        Worker {
            id,
            busy_until: Time::ZERO,
            busy_time: Duration::ZERO,
            executed: 0,
            queue: Vec::new(),
            down: false,
        }
    }

    /// This worker's identifier.
    #[must_use]
    pub fn id(&self) -> ProcessorId {
        self.id
    }

    /// Appends `task` as a work item of length `service` delivered at `at`,
    /// returning the instant execution will start (after all previously
    /// queued work).
    ///
    /// # Panics
    ///
    /// Panics if `service` is zero or the worker is down — the driver
    /// excludes down processors from placement, so an admission to one is a
    /// scheduling bug, not a recoverable condition.
    pub fn admit(&mut self, task: &Task, at: Time, service: Duration) -> Time {
        assert!(
            !service.is_zero(),
            "zero-length work admitted to {}",
            self.id
        );
        assert!(!self.down, "work admitted to down processor {}", self.id);
        let start = self.busy_until.max(at);
        self.busy_until = start + service;
        self.busy_time += service;
        self.executed += 1;
        self.queue.push(Slot {
            task: task.clone(),
            start,
            service,
        });
        start
    }

    /// Marks the processor down at instant `at` and partitions its queue
    /// around that instant: slots that had not started (`start >= at`) are
    /// orphaned back to the caller, the in-flight slot (if any) is kept when
    /// `keep_in_flight` or returned as lost otherwise, and finished slots
    /// are untouched.
    ///
    /// `at` may lie in the past relative to later admissions — the host only
    /// observes failures at phase boundaries — and the partition is still
    /// exact because every slot's start is retained.
    ///
    /// Bookkeeping for retracted slots is rolled back: orphaned slots
    /// contribute nothing to `busy_time`/`executed`; a lost slot contributes
    /// only the service actually burned before the failure.
    ///
    /// # Panics
    ///
    /// Panics if the worker is already down.
    pub fn fail(&mut self, at: Time, keep_in_flight: bool) -> FailedWork {
        assert!(
            !self.down,
            "processor {} failed while already down",
            self.id
        );
        self.down = true;
        let mut out = FailedWork::default();
        let mut kept = Vec::with_capacity(self.queue.len());
        for slot in self.queue.drain(..) {
            if slot.start >= at {
                // Never started: fully retract and orphan.
                self.busy_time = self.busy_time.saturating_sub(slot.service);
                self.executed -= 1;
                out.orphaned.push((slot.task, slot.start));
            } else if slot.completion() > at {
                // In flight exactly at the failure instant.
                if keep_in_flight {
                    kept.push(slot);
                } else {
                    // Only the portion actually executed stays in busy_time.
                    self.busy_time = self.busy_time.saturating_sub(slot.service);
                    self.busy_time += at.saturating_since(slot.start);
                    self.executed -= 1;
                    out.lost = Some((slot.task, slot.start));
                }
            } else {
                kept.push(slot);
            }
        }
        self.queue = kept;
        self.busy_until = self
            .queue
            .iter()
            .map(Slot::completion)
            .max()
            .unwrap_or(Time::ZERO);
        out
    }

    /// Brings a down processor back up at instant `at`; it rejoins with an
    /// empty queue (orphans were re-batched at failure time) and becomes
    /// available no earlier than `at`.
    ///
    /// # Panics
    ///
    /// Panics if the worker is not down.
    pub fn recover(&mut self, at: Time) {
        assert!(self.down, "processor {} recovered while up", self.id);
        self.down = false;
        self.busy_until = self.busy_until.max(at);
    }

    /// Whether the processor is currently marked down.
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// The earliest instant a scheduling phase may plan new work on this
    /// worker, given the phase's execution bound `floor`: `busy_until`
    /// clamped below by `floor`, or [`UNAVAILABLE`] while the processor is
    /// down (no deadline can pass the feasibility test against it).
    #[must_use]
    pub fn available_from(&self, floor: Time) -> Time {
        if self.down {
            UNAVAILABLE
        } else {
            self.busy_until.max(floor)
        }
    }

    /// The instant this worker drains its queue.
    #[must_use]
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// The paper's `Load_k` at instant `now`: how long until the processor
    /// becomes available (zero if already idle; effectively unbounded while
    /// down).
    #[must_use]
    pub fn load(&self, now: Time) -> Duration {
        if self.down {
            return UNAVAILABLE.saturating_since(now);
        }
        self.busy_until.saturating_since(now)
    }

    /// Whether the worker has no pending work at `now` (a down worker is
    /// never idle — it cannot accept work).
    #[must_use]
    pub fn is_idle(&self, now: Time) -> bool {
        !self.down && self.busy_until <= now
    }

    /// Total service time executed so far (for utilization reports).
    #[must_use]
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }

    /// Number of work items executed.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Idle time over the window `[0, horizon]`: the horizon minus the
    /// service time executed, saturating at zero when the worker was busy
    /// the whole window (or beyond it).
    #[must_use]
    pub fn idle_time(&self, horizon: Time) -> Duration {
        horizon
            .saturating_since(Time::ZERO)
            .saturating_sub(self.busy_time)
    }

    /// Utilization over the window `[0, horizon]`, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is `Time::ZERO`.
    #[must_use]
    pub fn utilization(&self, horizon: Time) -> f64 {
        assert!(horizon > Time::ZERO, "utilization needs a positive horizon");
        let busy = self.busy_time.as_micros().min(horizon.as_micros());
        busy as f64 / horizon.as_micros() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_task::TaskId;

    fn task(id: u64) -> Task {
        Task::builder(TaskId::new(id))
            .processing_time(Duration::from_millis(1))
            .deadline(Time::from_millis(1_000))
            .build()
    }

    #[test]
    fn admit_when_idle_starts_immediately() {
        let mut w = Worker::new(ProcessorId::new(2));
        let start = w.admit(&task(0), Time::from_millis(5), Duration::from_millis(2));
        assert_eq!(start, Time::from_millis(5));
        assert_eq!(w.busy_until(), Time::from_millis(7));
        assert_eq!(w.executed(), 1);
    }

    #[test]
    fn admit_when_busy_queues_fifo() {
        let mut w = Worker::new(ProcessorId::new(0));
        w.admit(&task(0), Time::ZERO, Duration::from_millis(10));
        let start = w.admit(&task(1), Time::from_millis(1), Duration::from_millis(5));
        assert_eq!(
            start,
            Time::from_millis(10),
            "second item waits for the first"
        );
        assert_eq!(w.busy_until(), Time::from_millis(15));
    }

    #[test]
    fn load_reflects_backlog() {
        let mut w = Worker::new(ProcessorId::new(0));
        assert_eq!(w.load(Time::ZERO), Duration::ZERO);
        assert!(w.is_idle(Time::ZERO));
        w.admit(&task(0), Time::ZERO, Duration::from_millis(4));
        assert_eq!(w.load(Time::from_millis(1)), Duration::from_millis(3));
        assert!(!w.is_idle(Time::from_millis(1)));
        assert!(w.is_idle(Time::from_millis(4)));
    }

    #[test]
    fn busy_time_accumulates_across_gaps() {
        let mut w = Worker::new(ProcessorId::new(0));
        w.admit(&task(0), Time::ZERO, Duration::from_millis(1));
        w.admit(&task(1), Time::from_millis(100), Duration::from_millis(1));
        assert_eq!(w.busy_time(), Duration::from_millis(2));
        let u = w.utilization(Time::from_millis(200));
        assert!((u - 0.01).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn idle_time_complements_busy_time() {
        let mut w = Worker::new(ProcessorId::new(0));
        assert_eq!(
            w.idle_time(Time::from_millis(10)),
            Duration::from_millis(10)
        );
        w.admit(&task(0), Time::ZERO, Duration::from_millis(4));
        assert_eq!(w.idle_time(Time::from_millis(10)), Duration::from_millis(6));
        // busy beyond the horizon saturates at zero idle
        assert_eq!(w.idle_time(Time::from_millis(2)), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero-length work")]
    fn zero_service_rejected() {
        let mut w = Worker::new(ProcessorId::new(0));
        w.admit(&task(0), Time::ZERO, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive horizon")]
    fn utilization_rejects_zero_horizon() {
        let w = Worker::new(ProcessorId::new(0));
        let _ = w.utilization(Time::ZERO);
    }

    #[test]
    fn fail_partitions_done_in_flight_and_unstarted() {
        let mut w = Worker::new(ProcessorId::new(0));
        // done: [0,2ms); in flight at 3ms: [2,5ms); unstarted: [5,6ms), [6,7ms)
        w.admit(&task(0), Time::ZERO, Duration::from_millis(2));
        w.admit(&task(1), Time::ZERO, Duration::from_millis(3));
        w.admit(&task(2), Time::ZERO, Duration::from_millis(1));
        w.admit(&task(3), Time::ZERO, Duration::from_millis(1));
        assert_eq!(w.busy_time(), Duration::from_millis(7));

        let failed = w.fail(Time::from_millis(3), false);
        assert!(w.is_down());
        assert_eq!(failed.orphaned.len(), 2, "two unstarted slots orphaned");
        assert_eq!(failed.orphaned[0].0.id(), TaskId::new(2));
        assert_eq!(failed.orphaned[0].1, Time::from_millis(5));
        let (lost, lost_start) = failed.lost.clone().expect("in-flight task lost");
        assert_eq!(lost.id(), TaskId::new(1));
        assert_eq!(lost_start, Time::from_millis(2));
        // done 2ms + 1ms burned of the lost slot
        assert_eq!(w.busy_time(), Duration::from_millis(3));
        assert_eq!(w.executed(), 1, "only the finished slot still counts");
        assert_eq!(w.busy_until(), Time::from_millis(2));
    }

    #[test]
    fn fail_keeping_in_flight_lets_it_finish() {
        let mut w = Worker::new(ProcessorId::new(0));
        w.admit(&task(0), Time::ZERO, Duration::from_millis(4));
        w.admit(&task(1), Time::ZERO, Duration::from_millis(4));
        let failed = w.fail(Time::from_millis(1), true);
        assert!(failed.lost.is_none());
        assert_eq!(failed.orphaned.len(), 1);
        assert_eq!(w.busy_until(), Time::from_millis(4), "in-flight finishes");
        assert_eq!(w.busy_time(), Duration::from_millis(4));
        assert_eq!(w.executed(), 1);
    }

    #[test]
    fn down_worker_is_unavailable_and_recovers() {
        let mut w = Worker::new(ProcessorId::new(0));
        let _ = w.fail(Time::from_millis(1), false);
        assert_eq!(w.available_from(Time::from_millis(2)), UNAVAILABLE);
        assert!(!w.is_idle(Time::from_millis(100)));
        assert!(w.load(Time::from_millis(2)) > Duration::from_secs(1_000_000));
        w.recover(Time::from_millis(10));
        assert!(!w.is_down());
        assert_eq!(w.busy_until(), Time::from_millis(10));
        assert_eq!(
            w.available_from(Time::from_millis(2)),
            Time::from_millis(10)
        );
        let start = w.admit(&task(5), Time::from_millis(3), Duration::from_millis(1));
        assert_eq!(start, Time::from_millis(10), "no work before recovery");
    }

    #[test]
    #[should_panic(expected = "down processor")]
    fn admit_to_down_worker_panics() {
        let mut w = Worker::new(ProcessorId::new(0));
        let _ = w.fail(Time::ZERO, false);
        let _ = w.admit(&task(0), Time::from_millis(1), Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_fail_panics() {
        let mut w = Worker::new(ProcessorId::new(0));
        let _ = w.fail(Time::ZERO, false);
        let _ = w.fail(Time::from_millis(1), false);
    }

    #[test]
    fn retroactive_fail_orphans_later_admissions() {
        // The host discovers the failure late: work admitted after the
        // failure instant is still orphaned exactly.
        let mut w = Worker::new(ProcessorId::new(0));
        w.admit(&task(0), Time::ZERO, Duration::from_millis(1)); // done by 1ms
        w.admit(&task(1), Time::from_millis(5), Duration::from_millis(1)); // starts 5ms
        let failed = w.fail(Time::from_millis(2), false);
        assert!(failed.lost.is_none());
        assert_eq!(failed.orphaned.len(), 1);
        assert_eq!(failed.orphaned[0].0.id(), TaskId::new(1));
        assert_eq!(w.busy_time(), Duration::from_millis(1));
    }
}
