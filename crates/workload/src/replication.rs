//! Replicated placement of sub-databases across processor memories.

use paragon_des::SimRng;
use paragon_platform::{DataObjectId, Placement};
use serde::{Deserialize, Serialize};

/// How sub-database copies are spread over the working processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplicationStrategy {
    /// Copy `c` of sub-database `s` lands on processor
    /// `(s · copies + c) mod m` — deterministic and evenly spread. With
    /// `rate = 10%` on the paper's 10×10 configuration this degenerates to
    /// "each processor holds at most one sub-database", and with `100%`
    /// every processor holds the whole database, matching the paper's two
    /// extremes.
    #[default]
    Strided,
    /// Each copy goes to a uniformly random distinct processor.
    Random,
}

impl ReplicationStrategy {
    /// Builds the placement of `d` sub-databases over `workers` processors
    /// at replication `rate` (fraction of processors holding each
    /// sub-database, clamped to at least one copy).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < rate <= 1.0`, `d > 0` and `workers > 0`.
    #[must_use]
    pub fn place(&self, d: usize, workers: usize, rate: f64, rng: &mut SimRng) -> Placement {
        assert!(d > 0, "no sub-databases to place");
        assert!(workers > 0, "no processors to place on");
        assert!(
            rate > 0.0 && rate <= 1.0,
            "replication rate must be in (0, 1], got {rate}"
        );
        let copies = ((rate * workers as f64).round() as usize).clamp(1, workers);
        let mut placement = Placement::new(d, workers);
        for s in 0..d {
            match self {
                ReplicationStrategy::Strided => {
                    for c in 0..copies {
                        let p = (s * copies + c) % workers;
                        placement.add_copy(DataObjectId::new(s), p.into());
                    }
                }
                ReplicationStrategy::Random => {
                    let mut procs: Vec<usize> = (0..workers).collect();
                    rng.shuffle(&mut procs);
                    for &p in &procs[..copies] {
                        placement.add_copy(DataObjectId::new(s), p.into());
                    }
                }
            }
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(1)
    }

    #[test]
    fn full_replication_puts_everything_everywhere() {
        let p = ReplicationStrategy::Strided.place(10, 10, 1.0, &mut rng());
        assert_eq!(p.copy_counts(), vec![10; 10]);
        assert!((p.replication_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn minimal_replication_gives_single_copies() {
        let p = ReplicationStrategy::Strided.place(10, 10, 0.1, &mut rng());
        assert_eq!(p.copy_counts(), vec![1; 10]);
        // each processor holds at most one sub-database (the paper's 10% case)
        let mut per_proc = [0usize; 10];
        for s in 0..10 {
            for proc in p.holders(DataObjectId::new(s)).iter() {
                per_proc[proc.index()] += 1;
            }
        }
        assert!(per_proc.iter().all(|&c| c <= 1));
    }

    #[test]
    fn thirty_percent_gives_three_copies() {
        let p = ReplicationStrategy::Strided.place(10, 10, 0.3, &mut rng());
        assert_eq!(p.copy_counts(), vec![3; 10]);
        assert!((p.replication_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn copies_are_distinct_processors() {
        for strategy in [ReplicationStrategy::Strided, ReplicationStrategy::Random] {
            let p = strategy.place(7, 5, 0.6, &mut rng());
            for s in 0..7 {
                // AffinitySet is a set: len == number of distinct holders
                assert_eq!(p.holders(DataObjectId::new(s)).len(), 3, "{strategy:?}");
            }
        }
    }

    #[test]
    fn rate_rounds_to_nearest_copy_count() {
        let p = ReplicationStrategy::Strided.place(4, 6, 0.25, &mut rng());
        // 0.25 * 6 = 1.5 -> rounds to 2
        assert_eq!(p.copy_counts(), vec![2; 4]);
    }

    #[test]
    fn tiny_rate_clamps_to_one_copy() {
        let p = ReplicationStrategy::Strided.place(3, 4, 0.01, &mut rng());
        assert_eq!(p.copy_counts(), vec![1; 3]);
    }

    #[test]
    fn random_placement_is_seed_deterministic() {
        let a = ReplicationStrategy::Random.place(5, 8, 0.5, &mut SimRng::seed_from(9));
        let b = ReplicationStrategy::Random.place(5, 8, 0.5, &mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "replication rate")]
    fn zero_rate_rejected() {
        let _ = ReplicationStrategy::Strided.place(1, 1, 0.0, &mut rng());
    }
}
