//! Arrival processes: the paper's burst plus a Poisson extension.

use paragon_des::{Duration, SimRng, Time};
use serde::{Deserialize, Serialize};

/// When the `n` transactions of a run reach the host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Everything arrives simultaneously at `at` — the paper's "bursty
    /// arrival of 1000 transactions which simultaneously reach the host
    /// node".
    Burst {
        /// The common arrival instant.
        at: Time,
    },
    /// Poisson arrivals: the first transaction arrives at `start` and each
    /// subsequent one follows after an exponential gap with the given mean.
    /// Used by the open-load extension experiments.
    Poisson {
        /// The first arrival instant.
        start: Time,
        /// Mean inter-arrival gap.
        mean_gap: Duration,
    },
}

impl ArrivalProcess {
    /// A burst at time zero.
    #[must_use]
    pub const fn burst_at_zero() -> Self {
        ArrivalProcess::Burst { at: Time::ZERO }
    }

    /// Draws `n` arrival instants in non-decreasing order.
    ///
    /// # Panics
    ///
    /// Panics if a Poisson process is asked for a zero `mean_gap`.
    #[must_use]
    pub fn sample(&self, n: usize, rng: &mut SimRng) -> Vec<Time> {
        match self {
            ArrivalProcess::Burst { at } => vec![*at; n],
            ArrivalProcess::Poisson { start, mean_gap } => {
                assert!(!mean_gap.is_zero(), "Poisson mean gap must be non-zero");
                // The first arrival lands exactly at `start`, per the doc
                // above; only the gaps between consecutive arrivals are
                // exponential. (Adding a gap before the first arrival as
                // well would silently shift the whole process and make the
                // observed rate over `[start, last]` miss its target.)
                let mut t = *start;
                (0..n)
                    .map(|i| {
                        if i > 0 {
                            let gap = rng.exponential(mean_gap.as_micros() as f64);
                            t += Duration::from_micros(gap.round() as u64);
                        }
                        t
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_simultaneous() {
        let a = ArrivalProcess::burst_at_zero().sample(5, &mut SimRng::seed_from(1));
        assert_eq!(a, vec![Time::ZERO; 5]);
        let b = ArrivalProcess::Burst {
            at: Time::from_millis(2),
        }
        .sample(3, &mut SimRng::seed_from(1));
        assert_eq!(b, vec![Time::from_millis(2); 3]);
    }

    #[test]
    fn poisson_is_sorted_and_roughly_calibrated() {
        let proc = ArrivalProcess::Poisson {
            start: Time::ZERO,
            mean_gap: Duration::from_micros(100),
        };
        let arrivals = proc.sample(2_000, &mut SimRng::seed_from(4));
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(arrivals[0], Time::ZERO, "first arrival at start");
        let span = arrivals.last().unwrap().as_micros() as f64;
        // 2000 arrivals span 1999 gaps.
        let mean_gap = span / 1_999.0;
        assert!(
            (mean_gap - 100.0).abs() < 10.0,
            "observed mean gap {mean_gap}"
        );
    }

    #[test]
    fn poisson_is_seed_deterministic() {
        let proc = ArrivalProcess::Poisson {
            start: Time::from_millis(1),
            mean_gap: Duration::from_micros(50),
        };
        let a = proc.sample(100, &mut SimRng::seed_from(9));
        let b = proc.sample(100, &mut SimRng::seed_from(9));
        assert_eq!(a, b);
        assert_eq!(a[0], Time::from_millis(1), "first arrival lands at start");
        assert!(a[1] > a[0], "gaps only follow the first arrival");
    }

    #[test]
    fn zero_count_yields_empty() {
        assert!(ArrivalProcess::burst_at_zero()
            .sample(0, &mut SimRng::seed_from(0))
            .is_empty());
    }
}
