//! Uniform transaction generation (paper, Section 5.1).

use paragon_des::SimRng;
use rtdb::{GlobalDatabase, Transaction};
use serde::{Deserialize, Serialize};

/// Generates the paper's transaction mix: a uniformly distributed number of
/// given attribute-values, each picked equiprobably from its domain, all
/// targeting one uniformly chosen sub-database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransactionGenerator {
    min_predicates: usize,
    max_predicates: usize,
}

impl TransactionGenerator {
    /// A generator drawing the predicate count uniformly from
    /// `[min_predicates, max_predicates]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_predicates` is zero or the range is inverted.
    #[must_use]
    pub fn new(min_predicates: usize, max_predicates: usize) -> Self {
        assert!(
            min_predicates > 0,
            "transactions need at least one predicate"
        );
        assert!(
            min_predicates <= max_predicates,
            "inverted predicate range [{min_predicates}, {max_predicates}]"
        );
        TransactionGenerator {
            min_predicates,
            max_predicates,
        }
    }

    /// The paper's configuration over `attributes` columns: between 1 and
    /// all attributes predicated.
    #[must_use]
    pub fn uniform_over(attributes: usize) -> Self {
        TransactionGenerator::new(1, attributes)
    }

    /// Generates one transaction with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `max_predicates` exceeds the schema's attribute count.
    #[must_use]
    pub fn generate(&self, id: u64, db: &GlobalDatabase, rng: &mut SimRng) -> Transaction {
        let schema = db.schema();
        assert!(
            self.max_predicates <= schema.attributes(),
            "more predicates requested than attributes exist"
        );
        let target = rng.uniform_usize(0..db.partitions());
        let n_preds = rng.uniform_usize(self.min_predicates..self.max_predicates + 1);
        let mut attrs: Vec<usize> = (0..schema.attributes()).collect();
        rng.shuffle(&mut attrs);
        let mut preds: Vec<(usize, u64)> = attrs[..n_preds]
            .iter()
            .map(|&a| {
                let base = schema.domain_base(target, a);
                (a, rng.uniform_u64(base..base + schema.domain_size()))
            })
            .collect();
        preds.sort_by_key(|&(a, _)| a);
        Transaction::new(id, preds)
    }

    /// Generates a batch of `n` transactions with ids `0..n`.
    #[must_use]
    pub fn generate_many(
        &self,
        n: usize,
        db: &GlobalDatabase,
        rng: &mut SimRng,
    ) -> Vec<Transaction> {
        (0..n as u64).map(|id| self.generate(id, db, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdb::Schema;

    fn db() -> GlobalDatabase {
        let mut rng = SimRng::seed_from(2);
        GlobalDatabase::generate(&Schema::new(10, 50), 10, 200, &mut rng)
    }

    #[test]
    fn generated_transactions_are_well_formed() {
        let db = db();
        let gen = TransactionGenerator::uniform_over(10);
        let mut rng = SimRng::seed_from(5);
        for txn in gen.generate_many(300, &db, &mut rng) {
            // target_subdb asserts all predicates live in one sub-database
            let target = db.target_subdb(&txn);
            assert!(target < db.partitions());
            assert!(!txn.predicates().is_empty());
            assert!(txn.predicates().len() <= 10);
        }
    }

    #[test]
    fn predicate_counts_span_the_range() {
        let db = db();
        let gen = TransactionGenerator::new(2, 4);
        let mut rng = SimRng::seed_from(6);
        let txns = gen.generate_many(500, &db, &mut rng);
        let counts: Vec<usize> = txns.iter().map(|t| t.predicates().len()).collect();
        assert!(counts.iter().all(|&c| (2..=4).contains(&c)));
        for want in 2..=4 {
            assert!(counts.contains(&want), "predicate count {want} never drawn");
        }
    }

    #[test]
    fn targets_cover_all_partitions() {
        let db = db();
        let gen = TransactionGenerator::uniform_over(10);
        let mut rng = SimRng::seed_from(7);
        let txns = gen.generate_many(500, &db, &mut rng);
        let mut seen = vec![false; db.partitions()];
        for t in &txns {
            seen[db.target_subdb(t)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some partition never targeted");
    }

    #[test]
    fn keyed_and_unkeyed_both_occur() {
        let db = db();
        let gen = TransactionGenerator::uniform_over(10);
        let mut rng = SimRng::seed_from(8);
        let txns = gen.generate_many(300, &db, &mut rng);
        let keyed = txns.iter().filter(|t| t.key_value().is_some()).count();
        assert!(keyed > 50, "keyed share too small: {keyed}");
        assert!(keyed < 250, "keyed share too large: {keyed}");
    }

    #[test]
    fn generation_is_deterministic() {
        let db = db();
        let gen = TransactionGenerator::uniform_over(10);
        let a = gen.generate_many(50, &db, &mut SimRng::seed_from(3));
        let b = gen.generate_many(50, &db, &mut SimRng::seed_from(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn zero_min_predicates_rejected() {
        let _ = TransactionGenerator::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_rejected() {
        let _ = TransactionGenerator::new(4, 2);
    }
}
