//! Workload generation for the RT-SADS reproduction.
//!
//! Builds everything Section 5.1 of the paper describes: the partitioned
//! database, its replicated placement across processor memories, the stream
//! of read-only transactions, their estimated costs, deadlines
//! (`Deadline(q) = SF × 10 × Estimated_Cost(q)`) and arrival pattern (a
//! burst of 1000 simultaneous transactions in the paper; a Poisson process
//! is provided for extensions).
//!
//! The central type is [`Scenario`]: a declarative parameter set whose
//! [`Scenario::build`] produces the [`BuiltScenario`] (database, placement,
//! transactions, and ready-to-schedule [`Task`](rt_task::Task)s) that the
//! experiment harness feeds to the [`rtsads`-crate driver][driver].
//!
//! [driver]: https://docs.rs/rtsads
//!
//! # Example
//!
//! ```
//! use rt_workload::Scenario;
//!
//! let built = Scenario::paper_defaults()
//!     .workers(4)
//!     .replication_rate(0.3)
//!     .transactions(50)
//!     .build(42);
//! assert_eq!(built.tasks.len(), 50);
//! // low replication: every task is affine to only a few processors
//! assert!(built.tasks.iter().all(|t| t.affinity().len() <= 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod deadline;
mod replication;
mod resources;
mod scenario;
mod txgen;

pub use arrivals::ArrivalProcess;
pub use deadline::DeadlinePolicy;
pub use replication::ReplicationStrategy;
pub use resources::ResourceProfile;
pub use scenario::{BuiltScenario, Scenario};
pub use txgen::TransactionGenerator;
