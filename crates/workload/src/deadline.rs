//! Deadline assignment: `Deadline(q) = SF × 10 × Estimated_Cost(q)`.

use paragon_des::{Duration, Time};
use serde::{Deserialize, Serialize};

/// The paper's proportional deadline policy: a transaction's deadline is its
/// arrival plus `SF × multiplier × estimated cost`, where `SF` (the paper's
/// *slack factor*, plotted as "laxity") ranges over 1–3 — low values mean
/// tight deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadlinePolicy {
    sf: f64,
    multiplier: f64,
}

impl DeadlinePolicy {
    /// The paper's `×10` base multiplier with the given slack factor.
    ///
    /// # Panics
    ///
    /// Panics unless `sf` is finite and positive.
    #[must_use]
    pub fn proportional(sf: f64) -> Self {
        Self::with_multiplier(sf, 10.0)
    }

    /// A policy with a custom base multiplier (for sensitivity studies).
    ///
    /// # Panics
    ///
    /// Panics unless both factors are finite and positive.
    #[must_use]
    pub fn with_multiplier(sf: f64, multiplier: f64) -> Self {
        assert!(sf.is_finite() && sf > 0.0, "slack factor must be positive");
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "multiplier must be positive"
        );
        DeadlinePolicy { sf, multiplier }
    }

    /// The slack factor `SF`.
    #[must_use]
    pub fn sf(&self) -> f64 {
        self.sf
    }

    /// The absolute deadline of a transaction arriving at `arrival` with
    /// estimated cost `estimate`.
    #[must_use]
    pub fn deadline(&self, arrival: Time, estimate: Duration) -> Time {
        arrival + estimate.mul_f64(self.sf * self.multiplier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_one_gives_ten_times_cost() {
        let p = DeadlinePolicy::proportional(1.0);
        let d = p.deadline(Time::ZERO, Duration::from_micros(100));
        assert_eq!(d, Time::from_micros(1_000));
        assert_eq!(p.sf(), 1.0);
    }

    #[test]
    fn sf_three_triples_the_laxity() {
        let p = DeadlinePolicy::proportional(3.0);
        let d = p.deadline(Time::from_millis(5), Duration::from_micros(100));
        assert_eq!(d, Time::from_micros(8_000));
    }

    #[test]
    fn custom_multiplier() {
        let p = DeadlinePolicy::with_multiplier(2.0, 5.0);
        let d = p.deadline(Time::ZERO, Duration::from_micros(10));
        assert_eq!(d, Time::from_micros(100));
    }

    #[test]
    fn deadline_measured_from_arrival() {
        let p = DeadlinePolicy::proportional(1.0);
        let d0 = p.deadline(Time::ZERO, Duration::from_micros(50));
        let d1 = p.deadline(Time::from_millis(1), Duration::from_micros(50));
        assert_eq!(d1 - d0, Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "slack factor")]
    fn non_positive_sf_rejected() {
        let _ = DeadlinePolicy::proportional(0.0);
    }
}
