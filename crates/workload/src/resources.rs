//! Decorating workloads with resource constraints (the references' task
//! model; the paper's own transactions are independent).

use paragon_des::SimRng;
use rt_task::{ResourceRequest, Task};
use serde::{Deserialize, Serialize};

/// Parameters of a random resource-usage pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    /// Number of distinct serially reusable resources in the system.
    pub resources: usize,
    /// Probability that a task uses any resources at all.
    pub participation: f64,
    /// Probability that a used resource is held exclusively (vs shared).
    pub exclusive: f64,
    /// Maximum resources one task holds (drawn uniformly from 1..=max).
    pub max_per_task: usize,
}

impl ResourceProfile {
    /// A contention-free profile (no task touches any resource).
    #[must_use]
    pub fn none() -> Self {
        ResourceProfile {
            resources: 0,
            participation: 0.0,
            exclusive: 0.0,
            max_per_task: 0,
        }
    }

    /// Decorates `tasks` with randomly drawn resource requests.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are outside `[0, 1]`, or if participation is
    /// positive while `resources`/`max_per_task` is zero.
    #[must_use]
    pub fn decorate(&self, tasks: &[Task], rng: &mut SimRng) -> Vec<Task> {
        assert!(
            (0.0..=1.0).contains(&self.participation),
            "bad participation"
        );
        assert!((0.0..=1.0).contains(&self.exclusive), "bad exclusive share");
        if self.participation > 0.0 {
            assert!(
                self.resources > 0 && self.max_per_task > 0,
                "participation > 0 needs resources and max_per_task"
            );
        }
        tasks
            .iter()
            .map(|t| {
                if self.participation == 0.0 || !rng.bernoulli(self.participation) {
                    return t.clone();
                }
                let count = rng
                    .uniform_usize(1..self.max_per_task + 1)
                    .min(self.resources);
                let mut ids: Vec<usize> = (0..self.resources).collect();
                rng.shuffle(&mut ids);
                let requests: Vec<ResourceRequest> = ids[..count]
                    .iter()
                    .map(|&r| {
                        if rng.bernoulli(self.exclusive) {
                            ResourceRequest::exclusive(r)
                        } else {
                            ResourceRequest::shared(r)
                        }
                    })
                    .collect();
                t.with_resources(requests)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::{Duration, Time};
    use rt_task::{AccessMode, TaskId};

    fn tasks(n: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                Task::builder(TaskId::new(i as u64))
                    .processing_time(Duration::from_micros(100))
                    .deadline(Time::from_millis(10))
                    .build()
            })
            .collect()
    }

    #[test]
    fn none_profile_leaves_tasks_untouched() {
        let ts = tasks(10);
        let out = ResourceProfile::none().decorate(&ts, &mut SimRng::seed_from(1));
        assert_eq!(out, ts);
    }

    #[test]
    fn full_participation_decorates_everything() {
        let profile = ResourceProfile {
            resources: 4,
            participation: 1.0,
            exclusive: 1.0,
            max_per_task: 2,
        };
        let out = profile.decorate(&tasks(50), &mut SimRng::seed_from(2));
        for t in &out {
            assert!(!t.resources().is_empty());
            assert!(t.resources().len() <= 2);
            assert!(t
                .resources()
                .iter()
                .all(|r| r.mode == AccessMode::Exclusive && r.resource.index() < 4));
            // no duplicate resources per task
            let mut ids: Vec<usize> = t.resources().iter().map(|r| r.resource.index()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), t.resources().len());
        }
    }

    #[test]
    fn partial_participation_is_roughly_calibrated() {
        let profile = ResourceProfile {
            resources: 3,
            participation: 0.5,
            exclusive: 0.5,
            max_per_task: 1,
        };
        let out = profile.decorate(&tasks(1_000), &mut SimRng::seed_from(3));
        let using = out.iter().filter(|t| !t.resources().is_empty()).count();
        assert!((400..600).contains(&using), "participation {using}/1000");
        let exclusive = out
            .iter()
            .flat_map(|t| t.resources())
            .filter(|r| r.mode == AccessMode::Exclusive)
            .count();
        let total: usize = out.iter().map(|t| t.resources().len()).sum();
        let share = exclusive as f64 / total as f64;
        assert!((0.4..0.6).contains(&share), "exclusive share {share}");
    }

    #[test]
    fn decoration_is_deterministic() {
        let profile = ResourceProfile {
            resources: 2,
            participation: 0.7,
            exclusive: 0.3,
            max_per_task: 2,
        };
        let a = profile.decorate(&tasks(30), &mut SimRng::seed_from(9));
        let b = profile.decorate(&tasks(30), &mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "needs resources")]
    fn inconsistent_profile_rejected() {
        let profile = ResourceProfile {
            resources: 0,
            participation: 0.5,
            exclusive: 0.5,
            max_per_task: 1,
        };
        let _ = profile.decorate(&tasks(1), &mut SimRng::seed_from(1));
    }
}
