//! Declarative experiment scenarios (the paper's Section 5.1 parameter
//! sheet) and their materialization into schedulable tasks.

use paragon_des::{Duration, SimRng};
use paragon_platform::{DataObjectId, Placement};
use rt_task::{Task, TaskId};
use rtdb::{CostModel, GlobalDatabase, Schema, Transaction};
use serde::{Deserialize, Serialize};

use crate::arrivals::ArrivalProcess;
use crate::deadline::DeadlinePolicy;
use crate::replication::ReplicationStrategy;
use crate::txgen::TransactionGenerator;

/// A complete experiment parameter set.
///
/// Start from [`Scenario::paper_defaults`] and override what the experiment
/// sweeps. Building is deterministic in the seed passed to
/// [`Scenario::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of working processors `m`.
    pub workers: usize,
    /// Number of sub-databases `d`.
    pub partitions: usize,
    /// Tuples per sub-database (`r/d`).
    pub tuples_per_partition: usize,
    /// Attributes per tuple.
    pub attributes: usize,
    /// Values per attribute domain.
    pub domain_size: u64,
    /// Fraction of processors holding each sub-database.
    pub replication_rate: f64,
    /// How copies are spread.
    pub replication_strategy: ReplicationStrategy,
    /// Number of transactions.
    pub transactions: usize,
    /// Cost of one checking iteration (`k`).
    pub per_tuple_cost: Duration,
    /// The slack factor `SF` (the figures' "laxity").
    pub sf: f64,
    /// When the transactions arrive.
    pub arrivals: ArrivalProcess,
}

impl Scenario {
    /// The configuration of the paper's experiments: 10 sub-databases of
    /// 1000 records and 10 attributes, 1000 bursty transactions, key index
    /// on attribute 0, `SF = 1`, `R = 30%`, 10 workers.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Scenario {
            workers: 10,
            partitions: 10,
            tuples_per_partition: 1_000,
            attributes: 10,
            domain_size: 100,
            replication_rate: 0.3,
            replication_strategy: ReplicationStrategy::Strided,
            transactions: 1_000,
            per_tuple_cost: Duration::from_micros(10),
            sf: 1.0,
            arrivals: ArrivalProcess::burst_at_zero(),
        }
    }

    /// A scaled-down configuration for unit tests and doc examples
    /// (4 partitions × 200 tuples, 100 transactions, 4 workers).
    #[must_use]
    pub fn small() -> Self {
        Scenario {
            workers: 4,
            partitions: 4,
            tuples_per_partition: 200,
            attributes: 6,
            domain_size: 40,
            transactions: 100,
            ..Self::paper_defaults()
        }
    }

    /// Sets the worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the replication rate.
    #[must_use]
    pub fn replication_rate(mut self, rate: f64) -> Self {
        self.replication_rate = rate;
        self
    }

    /// Sets the slack factor.
    #[must_use]
    pub fn sf(mut self, sf: f64) -> Self {
        self.sf = sf;
        self
    }

    /// Sets the transaction count.
    #[must_use]
    pub fn transactions(mut self, n: usize) -> Self {
        self.transactions = n;
        self
    }

    /// Sets the arrival process.
    #[must_use]
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Checks the parameter sheet for degenerate values that the
    /// constituent constructors would otherwise reject with internal
    /// assertion panics deep inside [`Scenario::build`]. Call this at the
    /// configuration boundary (CLI parsing, config-file loading) to turn
    /// those panics into actionable error messages.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first degenerate
    /// parameter found (zero workers, partitions, tuples, attributes,
    /// domain values or transactions).
    pub fn validate(&self) -> Result<(), String> {
        let positive: [(&str, usize); 6] = [
            ("workers", self.workers),
            ("partitions", self.partitions),
            ("tuples_per_partition", self.tuples_per_partition),
            ("attributes", self.attributes),
            ("domain_size", self.domain_size as usize),
            ("transactions", self.transactions),
        ];
        for (name, value) in positive {
            if value == 0 {
                return Err(format!("scenario parameter `{name}` must be positive"));
            }
        }
        Ok(())
    }

    /// Materializes the scenario with the given seed: generates the
    /// database, places its replicas, draws the transactions and arrival
    /// times, estimates costs and assigns deadlines — yielding the tasks
    /// the scheduler consumes.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero workers/partitions/…), via the
    /// constituent constructors.
    #[must_use]
    pub fn build(&self, seed: u64) -> BuiltScenario {
        let root = SimRng::seed_from(seed);
        let schema = Schema::new(self.attributes, self.domain_size);
        let db = GlobalDatabase::generate(
            &schema,
            self.partitions,
            self.tuples_per_partition,
            &mut root.child(0),
        );
        let placement = self.replication_strategy.place(
            self.partitions,
            self.workers,
            self.replication_rate,
            &mut root.child(1),
        );
        let generator = TransactionGenerator::uniform_over(self.attributes);
        let transactions = generator.generate_many(self.transactions, &db, &mut root.child(2));
        let arrivals = self.arrivals.sample(self.transactions, &mut root.child(3));

        let cost = CostModel::new(self.per_tuple_cost);
        let deadline_policy = DeadlinePolicy::proportional(self.sf);
        let tasks = transactions
            .iter()
            .zip(&arrivals)
            .map(|(txn, &arrival)| {
                let estimate = cost.estimate(&db, txn);
                let target = db.target_subdb(txn);
                let affinity = placement.holders(DataObjectId::new(target)).clone();
                Task::builder(TaskId::new(txn.id()))
                    .processing_time(estimate)
                    .arrival(arrival)
                    .deadline(deadline_policy.deadline(arrival, estimate))
                    .affinity(affinity)
                    .build()
            })
            .collect();

        BuiltScenario {
            scenario: self.clone(),
            db,
            placement,
            transactions,
            tasks,
            cost,
        }
    }
}

/// A materialized scenario: everything a run needs.
#[derive(Debug, Clone)]
pub struct BuiltScenario {
    /// The parameters it was built from.
    pub scenario: Scenario,
    /// The generated database (held by the simulated local memories).
    pub db: GlobalDatabase,
    /// Which processor holds which sub-database.
    pub placement: Placement,
    /// The transaction stream, index-aligned with `tasks`.
    pub transactions: Vec<Transaction>,
    /// The schedulable tasks (processing time = worst-case estimate).
    pub tasks: Vec<Task>,
    /// The cost model used for the estimates.
    pub cost: CostModel,
}

impl BuiltScenario {
    /// The transaction a task id maps back to.
    #[must_use]
    pub fn transaction_of(&self, task: TaskId) -> Option<&Transaction> {
        self.transactions.iter().find(|t| t.id() == task.as_u64())
    }

    /// Mean task processing time — useful for calibration reports.
    ///
    /// # Panics
    ///
    /// Panics if the scenario has no tasks.
    #[must_use]
    pub fn mean_processing_time(&self) -> Duration {
        assert!(!self.tasks.is_empty(), "empty scenario");
        let total: Duration = self.tasks.iter().map(Task::processing_time).sum();
        total / self.tasks.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Time;
    use rt_task::ProcessorId;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let s = Scenario::paper_defaults();
        assert_eq!(s.partitions, 10);
        assert_eq!(s.tuples_per_partition, 1_000);
        assert_eq!(s.attributes, 10);
        assert_eq!(s.transactions, 1_000);
        assert_eq!(s.workers, 10);
        assert_eq!(s.sf, 1.0);
        assert!((s.replication_rate - 0.3).abs() < 1e-12);
    }

    #[test]
    fn build_produces_aligned_tasks_and_transactions() {
        let built = Scenario::small().build(1);
        assert_eq!(built.tasks.len(), built.transactions.len());
        for (task, txn) in built.tasks.iter().zip(&built.transactions) {
            assert_eq!(task.id().as_u64(), txn.id());
            // processing time equals the worst-case estimate
            assert_eq!(task.processing_time(), built.cost.estimate(&built.db, txn));
            // deadline = arrival + SF * 10 * estimate
            let expect = task.arrival() + task.processing_time().mul_f64(10.0 * built.scenario.sf);
            assert_eq!(task.deadline(), expect);
        }
    }

    #[test]
    fn affinity_matches_placement_of_target() {
        let built = Scenario::small().replication_rate(0.5).build(2);
        for (task, txn) in built.tasks.iter().zip(&built.transactions) {
            let target = built.db.target_subdb(txn);
            let holders = built.placement.holders(DataObjectId::new(target));
            assert_eq!(task.affinity(), holders);
            assert_eq!(task.affinity().len(), 2, "0.5 * 4 workers = 2 copies");
        }
    }

    #[test]
    fn burst_arrivals_all_at_zero() {
        let built = Scenario::small().build(3);
        assert!(built.tasks.iter().all(|t| t.arrival() == Time::ZERO));
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = Scenario::small().build(7);
        let b = Scenario::small().build(7);
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.transactions, b.transactions);
        let c = Scenario::small().build(8);
        assert_ne!(a.tasks, c.tasks, "different seed, different workload");
    }

    #[test]
    fn keyed_transactions_are_cheaper_than_scans() {
        let built = Scenario::small().build(4);
        let scan_cost = built.scenario.per_tuple_cost * built.scenario.tuples_per_partition as u64;
        let mut keyed_cheaper = 0;
        for (task, txn) in built.tasks.iter().zip(&built.transactions) {
            if txn.key_value().is_some() {
                assert!(task.processing_time() <= scan_cost);
                if task.processing_time() < scan_cost {
                    keyed_cheaper += 1;
                }
            } else {
                assert_eq!(task.processing_time(), scan_cost);
            }
        }
        assert!(keyed_cheaper > 10, "index should usually help");
    }

    #[test]
    fn transaction_of_round_trips() {
        let built = Scenario::small().build(5);
        let t = &built.tasks[17];
        let txn = built.transaction_of(t.id()).expect("exists");
        assert_eq!(txn.id(), 17);
        assert!(built.transaction_of(TaskId::new(999_999)).is_none());
    }

    #[test]
    fn sf_scales_deadlines() {
        let tight = Scenario::small().sf(1.0).build(6);
        let loose = Scenario::small().sf(3.0).build(6);
        for (a, b) in tight.tasks.iter().zip(&loose.tasks) {
            assert_eq!(a.processing_time(), b.processing_time());
            assert!(b.deadline() > a.deadline());
        }
    }

    #[test]
    fn workers_setter_affects_affinity_universe() {
        let built = Scenario::small().workers(2).replication_rate(1.0).build(9);
        for task in &built.tasks {
            assert_eq!(task.affinity().len(), 2);
            assert!(task.affinity().contains(ProcessorId::new(0)));
            assert!(task.affinity().contains(ProcessorId::new(1)));
        }
    }

    #[test]
    fn mean_processing_time_is_positive() {
        let built = Scenario::small().build(10);
        assert!(!built.mean_processing_time().is_zero());
    }

    #[test]
    fn validate_accepts_paper_defaults_and_small() {
        assert_eq!(Scenario::paper_defaults().validate(), Ok(()));
        assert_eq!(Scenario::small().validate(), Ok(()));
    }

    #[test]
    fn validate_names_the_degenerate_parameter() {
        let cases: [(&str, Scenario); 4] = [
            ("workers", Scenario::small().workers(0)),
            ("transactions", Scenario::small().transactions(0)),
            (
                "partitions",
                Scenario {
                    partitions: 0,
                    ..Scenario::small()
                },
            ),
            (
                "domain_size",
                Scenario {
                    domain_size: 0,
                    ..Scenario::small()
                },
            ),
        ];
        for (name, scenario) in cases {
            let err = scenario.validate().expect_err(name);
            assert!(err.contains(name), "error {err:?} should name `{name}`");
            assert!(err.contains("must be positive"), "got {err:?}");
        }
    }
}
