//! CLI entry point: regenerate the paper's figures.
//!
//! ```text
//! experiments [all|fig5|fig6|ext-laxity|ext-quantum|ext-cost|ext-overhead|
//!              ext-deadends|ext-baselines|ext-openload|ext-pruning|
//!              ext-mesh|ext-resources|ext-faults]
//!             [--quick] [--runs N] [--txns N] [--out DIR] [--progress]
//!             [--fault-rate R1,R2,...] [--mttr MS]
//!             [--scenario FILE.json] [--dump-scenario FILE.json]
//!             [--trace-out FILE.jsonl] [--metrics-out FILE.json]
//!             [--perfetto-out FILE.trace.json]
//! ```
//!
//! Prints each figure as an aligned table (plus significance notes) and, if
//! `--out` is given, writes one CSV per figure, each with a
//! `*.manifest.json` sibling recording the seed base, calibration constants
//! and source revision that produced it.
//!
//! `--progress` repaints a live stderr ticker while figures run —
//! replications and scheduling phases per second, plus position and ETA
//! within the current experiment point. It rides process-wide counters, so
//! it never touches the replication results.
//!
//! The three `--*-out` flags additionally run one instrumented RT-SADS
//! simulation of the base scenario (at `seed_base`) and export its JSONL
//! trace, metrics summary and/or Perfetto timeline — handy for inspecting
//! exactly what the figures aggregate over.

use std::path::PathBuf;
use std::process::ExitCode;

use experiments::config::{comm_model, host_params};
use experiments::{config::ExperimentConfig, ext, fig5, fig6, FigureOutput};
use rt_telemetry::{RunManifest, TelemetrySession};
use rtsads::{Algorithm, Driver, DriverConfig};

struct Cli {
    which: Vec<String>,
    config: ExperimentConfig,
    out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    perfetto_out: Option<PathBuf>,
}

const ALL: [&str; 14] = [
    "fig5",
    "fig6",
    "ext-laxity",
    "ext-quantum",
    "ext-cost",
    "ext-overhead",
    "ext-deadends",
    "ext-baselines",
    "ext-openload",
    "ext-pruning",
    "ext-mesh",
    "ext-resources",
    "ext-faults",
    "ext-sharded",
];

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut which = Vec::new();
    let mut config = ExperimentConfig::paper();
    let mut out = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut perfetto_out = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => config = ExperimentConfig::quick(),
            "--progress" => experiments::progress::enable(),
            "--runs" => {
                config.runs = it
                    .next()
                    .ok_or("--runs needs a value")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
            }
            "--txns" => {
                config.transactions = it
                    .next()
                    .ok_or("--txns needs a value")?
                    .parse()
                    .map_err(|e| format!("--txns: {e}"))?;
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            "--fault-rate" => {
                let list = it.next().ok_or("--fault-rate needs a value")?;
                config.fault_rates = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("--fault-rate '{s}': {e}"))
                            .and_then(|r| {
                                if r.is_finite() && r >= 0.0 {
                                    Ok(r)
                                } else {
                                    Err(format!("--fault-rate '{s}': must be >= 0"))
                                }
                            })
                    })
                    .collect::<Result<Vec<f64>, String>>()?;
            }
            "--mttr" => {
                config.mttr_ms = it
                    .next()
                    .ok_or("--mttr needs a value (milliseconds)")?
                    .parse()
                    .map_err(|e| format!("--mttr: {e}"))?;
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(it.next().ok_or("--trace-out needs a value")?));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a value")?,
                ));
            }
            "--perfetto-out" => {
                perfetto_out = Some(PathBuf::from(
                    it.next().ok_or("--perfetto-out needs a value")?,
                ));
            }
            "--scenario" => {
                let path = it.next().ok_or("--scenario needs a file path")?;
                let json =
                    std::fs::read_to_string(path).map_err(|e| format!("--scenario {path}: {e}"))?;
                config = config
                    .with_scenario_json(&json)
                    .map_err(|e| format!("--scenario {path}: {e}"))?;
            }
            "--dump-scenario" => {
                let path = it.next().ok_or("--dump-scenario needs a file path")?;
                std::fs::write(path, config.scenario_json())
                    .map_err(|e| format!("--dump-scenario {path}: {e}"))?;
                eprintln!("# wrote scenario template to {path}");
            }
            "all" => which.extend(ALL.iter().map(|s| s.to_string())),
            name if ALL.contains(&name) => which.push(name.to_string()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if which.is_empty() {
        which.extend(ALL.iter().map(|s| s.to_string()));
    }
    Ok(Cli {
        which,
        config,
        out,
        trace_out,
        metrics_out,
        perfetto_out,
    })
}

/// The manifest describing one figure produced by this invocation: seed
/// base, worker count and the calibration constants every figure shares.
fn manifest_for(fig_id: &str, config: &ExperimentConfig) -> RunManifest {
    let scenario = config.base_scenario();
    RunManifest::new("rt-sads vs d-cols", config.seed_base, scenario.workers)
        .calibration(
            host_params().vertex_eval_cost.as_micros(),
            Some(comm_model().constant_cost().as_micros()),
        )
        .with("figure", fig_id)
        .with("runs", config.runs.to_string())
        .with("transactions", config.transactions.to_string())
}

/// Runs one instrumented RT-SADS simulation of the base scenario and writes
/// whichever of the three telemetry outputs were requested.
fn run_instrumented(cli: &Cli) -> Result<(), String> {
    let mut session = TelemetrySession::create(
        cli.trace_out.as_deref(),
        cli.metrics_out.as_deref(),
        cli.perfetto_out.as_deref(),
    )
    .map_err(|e| format!("cannot open telemetry output: {e}"))?;
    let scenario = cli.config.base_scenario();
    let built = scenario.build(cli.config.seed_base);
    let driver = DriverConfig::new(scenario.workers, Algorithm::rt_sads())
        .comm(comm_model())
        .host(host_params())
        .seed(cli.config.seed_base);
    let report = Driver::new(driver).run_traced(built.tasks, &mut session.sink());
    eprintln!(
        "# instrumented run: {} hit ratio {:.3} over {} phases",
        report.algorithm,
        report.hit_ratio(),
        report.phases.len()
    );
    for path in session
        .finish(scenario.workers)
        .map_err(|e| format!("cannot write telemetry output: {e}"))?
    {
        eprintln!("# wrote {}", path.display());
    }
    Ok(())
}

fn run_one(name: &str, config: &ExperimentConfig) -> FigureOutput {
    match name {
        "fig5" => fig5::run(config),
        "fig6" => fig6::run(config),
        "ext-laxity" => ext::laxity(config),
        "ext-quantum" => ext::quantum(config),
        "ext-cost" => ext::cost(config),
        "ext-overhead" => ext::overhead(config),
        "ext-deadends" => ext::deadends(config),
        "ext-baselines" => ext::baselines(config),
        "ext-openload" => ext::open_load(config),
        "ext-pruning" => ext::pruning(config),
        "ext-mesh" => ext::mesh(config),
        "ext-resources" => ext::resources(config),
        "ext-faults" => ext::faults(config),
        "ext-sharded" => ext::sharded(config),
        other => unreachable!("unvalidated experiment name {other}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: experiments [{}|all] [--quick] [--runs N] [--txns N] [--out DIR] \
                 [--progress] [--fault-rate R1,R2,...] [--mttr MS] \
                 [--scenario FILE.json] [--dump-scenario FILE.json] [--trace-out FILE.jsonl] \
                 [--metrics-out FILE.json] [--perfetto-out FILE.trace.json]",
                ALL.join("|")
            );
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "# config: {} runs x {} transactions (seed base {})",
        cli.config.runs, cli.config.transactions, cli.config.seed_base
    );
    if let Some(dir) = &cli.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for name in &cli.which {
        let started = rt_telemetry::MonotonicInstant::now();
        experiments::progress::set_label(name);
        let ticker = experiments::progress::ProgressTicker::start();
        let fig = run_one(name, &cli.config);
        ticker.finish();
        println!("{}", fig.render());
        eprintln!("# {name} took {:.1}s", started.elapsed().as_secs_f64());
        if let Some(dir) = &cli.out {
            let path = dir.join(format!("{}.csv", fig.id));
            if let Err(e) = std::fs::write(&path, fig.table.to_csv()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("# wrote {}", path.display());
            match manifest_for(fig.id, &cli.config).write_beside(&path) {
                Ok(manifest_path) => eprintln!("# wrote {}", manifest_path.display()),
                Err(e) => {
                    eprintln!("error: cannot write manifest for {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if cli.trace_out.is_some() || cli.metrics_out.is_some() || cli.perfetto_out.is_some() {
        if let Err(msg) = run_instrumented(&cli) {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
