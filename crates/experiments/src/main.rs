//! CLI entry point: regenerate the paper's figures.
//!
//! ```text
//! experiments [all|fig5|fig6|ext-laxity|ext-quantum|ext-cost|ext-overhead|
//!              ext-deadends|ext-baselines|ext-openload|ext-pruning]
//!             [--quick] [--runs N] [--txns N] [--out DIR]
//!             [--scenario FILE.json] [--dump-scenario FILE.json]
//! ```
//!
//! Prints each figure as an aligned table (plus significance notes) and, if
//! `--out` is given, writes one CSV per figure.

use std::path::PathBuf;
use std::process::ExitCode;

use experiments::{config::ExperimentConfig, ext, fig5, fig6, FigureOutput};

struct Cli {
    which: Vec<String>,
    config: ExperimentConfig,
    out: Option<PathBuf>,
}

const ALL: [&str; 12] = [
    "fig5",
    "fig6",
    "ext-laxity",
    "ext-quantum",
    "ext-cost",
    "ext-overhead",
    "ext-deadends",
    "ext-baselines",
    "ext-openload",
    "ext-pruning",
    "ext-mesh",
    "ext-resources",
];

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut which = Vec::new();
    let mut config = ExperimentConfig::paper();
    let mut out = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => config = ExperimentConfig::quick(),
            "--runs" => {
                config.runs = it
                    .next()
                    .ok_or("--runs needs a value")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
            }
            "--txns" => {
                config.transactions = it
                    .next()
                    .ok_or("--txns needs a value")?
                    .parse()
                    .map_err(|e| format!("--txns: {e}"))?;
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            "--scenario" => {
                let path = it.next().ok_or("--scenario needs a file path")?;
                let json = std::fs::read_to_string(path)
                    .map_err(|e| format!("--scenario {path}: {e}"))?;
                config = config
                    .with_scenario_json(&json)
                    .map_err(|e| format!("--scenario {path}: {e}"))?;
            }
            "--dump-scenario" => {
                let path = it.next().ok_or("--dump-scenario needs a file path")?;
                std::fs::write(path, config.scenario_json())
                    .map_err(|e| format!("--dump-scenario {path}: {e}"))?;
                eprintln!("# wrote scenario template to {path}");
            }
            "all" => which.extend(ALL.iter().map(|s| s.to_string())),
            name if ALL.contains(&name) => which.push(name.to_string()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if which.is_empty() {
        which.extend(ALL.iter().map(|s| s.to_string()));
    }
    Ok(Cli { which, config, out })
}

fn run_one(name: &str, config: &ExperimentConfig) -> FigureOutput {
    match name {
        "fig5" => fig5::run(config),
        "fig6" => fig6::run(config),
        "ext-laxity" => ext::laxity(config),
        "ext-quantum" => ext::quantum(config),
        "ext-cost" => ext::cost(config),
        "ext-overhead" => ext::overhead(config),
        "ext-deadends" => ext::deadends(config),
        "ext-baselines" => ext::baselines(config),
        "ext-openload" => ext::open_load(config),
        "ext-pruning" => ext::pruning(config),
        "ext-mesh" => ext::mesh(config),
        "ext-resources" => ext::resources(config),
        other => unreachable!("unvalidated experiment name {other}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: experiments [{}|all] [--quick] [--runs N] [--txns N] [--out DIR] \
                 [--scenario FILE.json] [--dump-scenario FILE.json]",
                ALL.join("|")
            );
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "# config: {} runs x {} transactions (seed base {})",
        cli.config.runs, cli.config.transactions, cli.config.seed_base
    );
    if let Some(dir) = &cli.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for name in &cli.which {
        let started = std::time::Instant::now();
        let fig = run_one(name, &cli.config);
        println!("{}", fig.render());
        eprintln!("# {name} took {:.1}s", started.elapsed().as_secs_f64());
        if let Some(dir) = &cli.out {
            let path = dir.join(format!("{}.csv", fig.id));
            if let Err(e) = std::fs::write(&path, fig.table.to_csv()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("# wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
