//! **Figure 6** — deadline compliance under varying replication rates
//! (10%–100%) at `P = 10` processors and `SF = 1`, RT-SADS vs. D-COLS.
//!
//! Paper's claims: D-COLS improves as the replication rate rises (processor
//! selection stops mattering when every sub-database is everywhere), while
//! RT-SADS maintains a large advantage throughout.

use rt_stats::{welch_t_test, Series, Table};
use rtsads::{Algorithm, DriverConfig};

use crate::config::{comm_model, host_params, ExperimentConfig};
use crate::runner::{run_point, FigureOutput, PointResult};

/// The replication rates the paper sweeps.
pub const RATES: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 1.0];

/// Number of processors (fixed, per the figure caption).
pub const WORKERS: usize = 10;

/// Runs the sweep for one algorithm.
#[must_use]
pub fn sweep(config: &ExperimentConfig, algorithm: &Algorithm) -> Vec<PointResult> {
    RATES
        .iter()
        .map(|&r| {
            let scenario = config.base_scenario().workers(WORKERS).replication_rate(r);
            let driver = DriverConfig::new(WORKERS, algorithm.clone())
                .comm(comm_model())
                .host(host_params());
            run_point(&scenario, &driver, config.runs, config.seed_base)
        })
        .collect()
}

/// Regenerates Figure 6.
#[must_use]
pub fn run(config: &ExperimentConfig) -> FigureOutput {
    let algorithms = [Algorithm::rt_sads(), Algorithm::d_cols()];
    let mut series = Vec::new();
    let mut results = Vec::new();
    for alg in &algorithms {
        let points = sweep(config, alg);
        let mut s = Series::new(alg.name());
        for (&r, p) in RATES.iter().zip(&points) {
            s.push(r, p.mean_hit_ratio());
        }
        series.push(s);
        results.push(points);
    }

    let mut notes = Vec::new();
    for (i, &r) in RATES.iter().enumerate() {
        let t = welch_t_test(&results[0][i].hit_ratios, &results[1][i].hit_ratios);
        notes.push(format!(
            "R={:.0}%: RT-SADS {:.4} vs D-COLS {:.4}, diff {:+.4}, p={:.4}{}",
            r * 100.0,
            results[0][i].mean_hit_ratio(),
            results[1][i].mean_hit_ratio(),
            t.mean_diff,
            t.p_value,
            if t.significant_at(0.01) {
                " (significant at 0.01)"
            } else {
                ""
            }
        ));
    }
    let cols_low = results[1][0].mean_hit_ratio();
    let cols_high = results[1][RATES.len() - 1].mean_hit_ratio();
    notes.push(format!(
        "D-COLS replication sensitivity: {cols_low:.4} at R=10% -> {cols_high:.4} at R=100% \
         ({})",
        if cols_high > cols_low {
            "improves with replication, as the paper reports"
        } else {
            "UNEXPECTED: no improvement"
        }
    ));

    FigureOutput {
        id: "fig6",
        table: Table::new(
            "Figure 6: deadline compliance vs replication rate (P=10, SF=1)",
            "replication",
            series,
        ),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig6_has_expected_structure() {
        let config = ExperimentConfig {
            runs: 2,
            transactions: 60,
            seed_base: 11,
            base: None,
            fault_rates: Vec::new(),
            mttr_ms: 0,
        };
        let fig = run(&config);
        assert_eq!(fig.id, "fig6");
        assert_eq!(fig.table.xs(), vec![0.1, 0.3, 0.5, 0.7, 1.0]);
        assert_eq!(fig.table.series().len(), 2);
        assert!(!fig.notes.is_empty());
    }
}
