//! Extension experiments: parameter sweeps described in the paper's prose
//! and ablations of RT-SADS's own mechanisms (DESIGN.md, Ext. A–E, plus a
//! baseline comparison).

use paragon_des::Duration;
use rt_stats::{Series, Table};
use rtsads::{Algorithm, DriverConfig, QuantumPolicy};
use sched_search::{ChildOrder, ProcessorOrder, TaskOrder};

use crate::config::{comm_model, host_params, ExperimentConfig};
use crate::fig5::PROCESSORS;
use crate::fig6::RATES;
use crate::runner::{run_point, FigureOutput, PointResult};

fn point(
    config: &ExperimentConfig,
    workers: usize,
    rate: f64,
    sf: f64,
    driver: DriverConfig,
) -> PointResult {
    let scenario = config
        .base_scenario()
        .workers(workers)
        .replication_rate(rate)
        .sf(sf);
    run_point(&scenario, &driver, config.runs, config.seed_base)
}

fn default_driver(workers: usize, algorithm: Algorithm) -> DriverConfig {
    DriverConfig::new(workers, algorithm)
        .comm(comm_model())
        .host(host_params())
}

/// **Ext. A (laxity)** — the Figure-5 sweep at `SF ∈ {1, 2, 3}`, backing
/// the paper's "in all parameters configuration, RT-SADS outperforms …".
#[must_use]
pub fn laxity(config: &ExperimentConfig) -> FigureOutput {
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for &sf in &[1.0, 2.0, 3.0] {
        for alg in [Algorithm::rt_sads(), Algorithm::d_cols()] {
            let mut s = Series::new(format!("{} SF={sf}", alg.name()));
            for &m in &PROCESSORS {
                let p = point(config, m, 0.3, sf, default_driver(m, alg.clone()));
                s.push(m as f64, p.mean_hit_ratio());
            }
            series.push(s);
        }
    }
    for pair in series.chunks(2) {
        let (sads, cols) = (&pair[0], &pair[1]);
        let wins = sads
            .points()
            .iter()
            .zip(cols.points())
            .filter(|(a, b)| a.1 >= b.1)
            .count();
        notes.push(format!(
            "{} >= {} at {}/{} processor counts",
            sads.label(),
            cols.label(),
            wins,
            sads.points().len()
        ));
    }
    FigureOutput {
        id: "ext-laxity",
        table: Table::new(
            "Ext. A: scalability across slack factors (R=30%)",
            "processors",
            series,
        ),
        notes,
    }
}

/// **Ext. B (quantum ablation)** — the self-adjusting quantum against fixed
/// quanta, validating Section 4.2's allocation criterion.
#[must_use]
pub fn quantum(config: &ExperimentConfig) -> FigureOutput {
    let policies: [(&str, QuantumPolicy); 5] = [
        ("self-adjusting", QuantumPolicy::self_adjusting()),
        (
            "self-adj <=5ms",
            QuantumPolicy::SelfAdjusting {
                max: Some(Duration::from_millis(5)),
            },
        ),
        ("fixed 1ms", QuantumPolicy::Fixed(Duration::from_millis(1))),
        ("fixed 5ms", QuantumPolicy::Fixed(Duration::from_millis(5))),
        (
            "fixed 25ms",
            QuantumPolicy::Fixed(Duration::from_millis(25)),
        ),
    ];
    let mut series = Vec::new();
    for (label, policy) in policies {
        let mut s = Series::new(label);
        for &m in &PROCESSORS {
            let driver = default_driver(m, Algorithm::rt_sads()).quantum(policy);
            let p = point(config, m, 0.3, 1.0, driver);
            s.push(m as f64, p.mean_hit_ratio());
        }
        series.push(s);
    }
    let best_fixed = series[2..]
        .iter()
        .map(|s| s.points().last().map(|&(_, y)| y).unwrap_or(0.0))
        .fold(f64::NEG_INFINITY, f64::max);
    let adaptive = series[0].points().last().map(|&(_, y)| y).unwrap_or(0.0);
    let capped = series[1].points().last().map(|&(_, y)| y).unwrap_or(0.0);
    let notes = vec![
        format!(
            "at P=10: self-adjusting {adaptive:.4} vs best fixed {best_fixed:.4} \
             (adaptive {} the hand-tuned quanta)",
            if adaptive >= best_fixed {
                "matches or beats"
            } else {
                "trails"
            }
        ),
        format!(
            "capping the criterion at 5ms (still within Figure 3's `Q_s <= max(...)`) \
             gives {capped:.4} at P=10: long Min_Load-driven phases are the only \
             regime where the pure criterion loses ground"
        ),
    ];
    FigureOutput {
        id: "ext-quantum",
        table: Table::new(
            "Ext. B: quantum policy ablation (RT-SADS, R=30%, SF=1)",
            "processors",
            series,
        ),
        notes,
    }
}

/// **Ext. C (cost-function ablation)** — the load-balancing cost function
/// against cheaper successor orderings, over the replication sweep where
/// communication non-uniformity matters most (Section 4.4).
#[must_use]
pub fn cost(config: &ExperimentConfig) -> FigureOutput {
    let variants: [(&str, ChildOrder); 3] = [
        ("load-balance CE", ChildOrder::LoadBalance),
        ("earliest completion", ChildOrder::EarliestCompletion),
        ("no heuristic", ChildOrder::None),
    ];
    let workers = 10;
    let mut series = Vec::new();
    for (label, child_order) in variants {
        let alg = Algorithm::RtSads {
            task_order: TaskOrder::EarliestDeadline,
            child_order,
        };
        let mut s = Series::new(label);
        for &r in &RATES {
            let p = point(
                config,
                workers,
                r,
                1.0,
                default_driver(workers, alg.clone()),
            );
            s.push(r, p.mean_hit_ratio());
        }
        series.push(s);
    }
    let notes = vec![format!(
        "mean over the R sweep: CE {:.4}, earliest-completion {:.4}, none {:.4}",
        mean_y(&series[0]),
        mean_y(&series[1]),
        mean_y(&series[2]),
    )];
    FigureOutput {
        id: "ext-cost",
        table: Table::new(
            "Ext. C: successor-ordering ablation (RT-SADS, P=10, SF=1)",
            "replication",
            series,
        ),
        notes,
    }
}

/// **Ext. D (scheduling overhead)** — measured scheduling cost per run: the
/// paper's "physical time required to run the scheduling algorithm", in
/// virtual milliseconds, plus vertices generated.
#[must_use]
pub fn overhead(config: &ExperimentConfig) -> FigureOutput {
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for alg in [Algorithm::rt_sads(), Algorithm::d_cols()] {
        let mut sched = Series::new(format!("{} sched ms", alg.name()));
        let mut verts = Vec::new();
        for &m in &PROCESSORS {
            let p = point(config, m, 0.3, 1.0, default_driver(m, alg.clone()));
            sched.push(
                m as f64,
                p.sched_time_ms.iter().sum::<f64>() / p.sched_time_ms.len() as f64,
            );
            verts.push(p.vertices.iter().sum::<f64>() / p.vertices.len() as f64);
        }
        notes.push(format!(
            "{}: mean vertices per run across P sweep: {:?}",
            alg.name(),
            verts.iter().map(|v| v.round()).collect::<Vec<_>>()
        ));
        series.push(sched);
    }
    FigureOutput {
        id: "ext-overhead",
        table: Table::new(
            "Ext. D: scheduling cost (virtual ms per run, R=30%, SF=1)",
            "processors",
            series,
        ),
        notes,
    }
}

/// **Ext. E (dead-ends & processor coverage)** — dead-end phases and mean
/// processors used per delivering phase, validating Section 3's conjecture
/// that pruned sequence-oriented search dead-ends early and loads only a
/// fraction of the machine.
#[must_use]
pub fn deadends(config: &ExperimentConfig) -> FigureOutput {
    let workers = 10;
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for alg in [Algorithm::rt_sads(), Algorithm::d_cols()] {
        let mut dead = Series::new(format!("{} dead-ends", alg.name()));
        let mut coverage = Vec::new();
        for &r in &RATES {
            let p = point(
                config,
                workers,
                r,
                1.0,
                default_driver(workers, alg.clone()),
            );
            dead.push(
                r,
                p.dead_ends.iter().sum::<f64>() / p.dead_ends.len() as f64,
            );
            coverage.push(p.procs_used.iter().sum::<f64>() / p.procs_used.len() as f64);
        }
        notes.push(format!(
            "{}: mean processors used per delivering phase over R sweep: {:?}",
            alg.name(),
            coverage
                .iter()
                .map(|c| (c * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        ));
        series.push(dead);
    }
    FigureOutput {
        id: "ext-deadends",
        table: Table::new(
            "Ext. E: dead-end phases per run (P=10, SF=1)",
            "replication",
            series,
        ),
        notes,
    }
}

/// **Ext. F (baselines)** — the Figure-5 sweep including the greedy-EDF and
/// random-assignment baselines and the fill-first D-COLS variant.
#[must_use]
pub fn baselines(config: &ExperimentConfig) -> FigureOutput {
    let algorithms = vec![
        Algorithm::rt_sads(),
        Algorithm::d_cols(),
        Algorithm::d_cols_skipping(),
        Algorithm::DCols {
            processor_order: ProcessorOrder::FillFirst,
            child_order: ChildOrder::EarliestDeadline,
            skip_processors: false,
        },
        Algorithm::GreedyEdf,
        Algorithm::myopic(),
        Algorithm::RandomAssign,
    ];
    let mut series = Vec::new();
    for alg in &algorithms {
        let mut s = Series::new(alg.name());
        for &m in &PROCESSORS {
            let p = point(config, m, 0.3, 1.0, default_driver(m, alg.clone()));
            s.push(m as f64, p.mean_hit_ratio());
        }
        series.push(s);
    }
    let notes = vec![format!(
        "mean hit ratio over P sweep: {}",
        series
            .iter()
            .map(|s| format!("{} {:.4}", s.label(), mean_y(s)))
            .collect::<Vec<_>>()
            .join(", ")
    )];
    FigureOutput {
        id: "ext-baselines",
        table: Table::new(
            "Ext. F: all schedulers on the Figure-5 sweep (R=30%, SF=1)",
            "processors",
            series,
        ),
        notes,
    }
}

/// **Ext. G (open load)** — Poisson arrivals instead of the paper's burst:
/// hit ratio as the offered load (utilization) varies, 10 processors. The
/// burst experiments measure transient overload; this measures the steady
/// state an actual database server would see.
#[must_use]
pub fn open_load(config: &ExperimentConfig) -> FigureOutput {
    use paragon_des::Time;
    use rt_workload::ArrivalProcess;

    let workers = 10;
    // mean service is ~4.3ms; with 10 workers, a gap g gives rho = 4.3/(10 g)
    let gaps_us: [u64; 5] = [2_000, 1_000, 600, 430, 300]; // rho ~ 0.22..1.4
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for alg in [
        Algorithm::rt_sads(),
        Algorithm::d_cols(),
        Algorithm::GreedyEdf,
    ] {
        let mut s = Series::new(alg.name());
        for &gap in &gaps_us {
            let rho = 4_300.0 / (workers as f64 * gap as f64);
            let scenario = config
                .base_scenario()
                .workers(workers)
                .replication_rate(0.3)
                .arrivals(ArrivalProcess::Poisson {
                    start: Time::ZERO,
                    mean_gap: Duration::from_micros(gap),
                });
            let driver = default_driver(workers, alg.clone());
            let p = run_point(&scenario, &driver, config.runs, config.seed_base);
            s.push((rho * 100.0).round() / 100.0, p.mean_hit_ratio());
        }
        series.push(s);
    }
    let sads_low = series[0].points().first().map(|&(_, y)| y).unwrap_or(0.0);
    notes.push(format!(
        "RT-SADS at rho~0.43: {sads_low:.4}; open load separates the schedulers far \
         less than the paper's burst (transient overload is the hard case)"
    ));
    FigureOutput {
        id: "ext-openload",
        table: Table::new(
            "Ext. G: open Poisson load (P=10, R=30%, SF=1); x = offered utilization",
            "rho",
            series,
        ),
        notes,
    }
}

/// **Ext. H (pruning)** — Section 3 claims that the pruning heuristics
/// dynamic schedulers need (limited backtracking, depth bounds) hurt the
/// sequence-oriented representation disproportionately. Sweep the backtrack
/// limit for both representations.
#[must_use]
pub fn pruning(config: &ExperimentConfig) -> FigureOutput {
    use sched_search::Pruning;

    let workers = 10;
    let limits: [(f64, Option<u64>); 4] = [
        (0.0, Some(0)),
        (10.0, Some(10)),
        (100.0, Some(100)),
        (1e6, None),
    ];
    let mut series = Vec::new();
    for alg in [Algorithm::rt_sads(), Algorithm::d_cols()] {
        let mut s = Series::new(alg.name());
        for &(x, limit) in &limits {
            let driver = default_driver(workers, alg.clone()).pruning(Pruning {
                depth_bound: None,
                backtrack_limit: limit,
            });
            let p = point(config, workers, 0.3, 2.0, driver);
            s.push(x, p.mean_hit_ratio());
        }
        series.push(s);
    }
    let sads_span = series[0].points().last().unwrap().1 - series[0].points()[0].1;
    let cols_span = series[1].points().last().unwrap().1 - series[1].points()[0].1;
    let notes = vec![
        format!(
            "effect of unlimited vs zero backtracking: RT-SADS {:+.4}, D-COLS {:+.4} \
             (x axis: backtrack limit, 1e6 = unlimited)",
            sads_span, cols_span
        ),
        "a NEGATIVE RT-SADS effect means aggressive pruning helps under burst \
         overload: cutting a phase at its first backtrack delivers early and \
         re-plans with fresh loads, while exhaustive backtracking re-arranges \
         tasks that are already doomed. D-COLS is insensitive: its expansions \
         exhaust the quantum before any backtrack limit can bind."
            .to_string(),
    ];
    FigureOutput {
        id: "ext-pruning",
        table: Table::new(
            "Ext. H: backtrack-limit pruning (P=10, R=30%, SF=1)",
            "backtrack-limit",
            series,
        ),
        notes,
    }
}

/// **Ext. I (mesh validation)** — the paper justifies its constant-`C`
/// communication model by the Paragon's cut-through routing. Re-run the
/// Figure-5 sweep with an *actual* 2D-mesh distance model (calibrated so
/// the mean pairwise cost matches `C = 2 ms`) and check that the
/// conclusions survive the abstraction.
#[must_use]
pub fn mesh(config: &ExperimentConfig) -> FigureOutput {
    use rt_task::{CommModel, MeshSpec};

    // Geometry per worker count: two rows, ceil(m/2) columns. Costs chosen
    // so the 5x2 (P=10) mean pairwise cost ~ 2 ms.
    let mesh_for = |m: usize| {
        let cols = m.div_ceil(2).max(1) as u16;
        let rows = if m > 1 { 2 } else { 1 };
        MeshSpec::new(cols, rows, 1_000, 430)
    };

    let mut series = Vec::new();
    let mut notes = Vec::new();
    for alg in [Algorithm::rt_sads(), Algorithm::d_cols()] {
        for mesh_mode in [false, true] {
            let label = format!(
                "{} ({})",
                alg.name(),
                if mesh_mode { "mesh" } else { "constant C" }
            );
            let mut s = Series::new(label);
            for &m in &PROCESSORS {
                let comm = if mesh_mode {
                    CommModel::mesh(mesh_for(m))
                } else {
                    comm_model()
                };
                let driver = DriverConfig::new(m, alg.clone())
                    .comm(comm)
                    .host(host_params());
                let p = point(config, m, 0.3, 1.0, driver);
                s.push(m as f64, p.mean_hit_ratio());
            }
            series.push(s);
        }
    }
    notes.push(format!(
        "mesh calibrated to a mean pairwise cost of {:.0} us at P=10 (constant C = {} us)",
        mesh_for(10).mean_pair_cost_micros(),
        comm_model().constant_cost().as_micros()
    ));
    let sads_gap: f64 = PROCESSORS
        .iter()
        .enumerate()
        .map(|(i, _)| (series[0].points()[i].1 - series[1].points()[i].1).abs())
        .fold(0.0, f64::max);
    notes.push(format!(
        "largest |constant - mesh| difference for RT-SADS across the sweep: {sads_gap:.4} \
         — the constant-C abstraction {} the paper's conclusions",
        if sads_gap < 0.05 {
            "preserves"
        } else {
            "MATERIALLY CHANGES"
        }
    ));
    FigureOutput {
        id: "ext-mesh",
        table: Table::new(
            "Ext. I: constant-C vs 2D-mesh interconnect (R=30%, SF=1)",
            "processors",
            series,
        ),
        notes,
    }
}

/// **Ext. J (resource contention)** — the task model of references \[3\]/\[6\]:
/// tasks hold shared/exclusive resources for their whole execution. Sweep
/// the fraction of transactions that lock one of five resources
/// (exclusively, half the time) and watch deadline compliance degrade.
#[must_use]
pub fn resources(config: &ExperimentConfig) -> FigureOutput {
    use paragon_des::SimRng;
    use rt_workload::ResourceProfile;
    use rtsads::Driver;

    let workers = 10;
    let participations = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut series = Vec::new();
    for alg in [
        Algorithm::rt_sads(),
        Algorithm::GreedyEdf,
        Algorithm::myopic(),
    ] {
        let mut s = Series::new(alg.name());
        for &participation in &participations {
            let profile = if participation == 0.0 {
                ResourceProfile::none()
            } else {
                ResourceProfile {
                    resources: 5,
                    participation,
                    exclusive: 0.5,
                    max_per_task: 2,
                }
            };
            let mut ratios = Vec::new();
            for run in 0..config.runs as u64 {
                let seed = config.seed_base + run;
                let built = config
                    .base_scenario()
                    .workers(workers)
                    .replication_rate(0.3)
                    .build(seed);
                let tasks = profile.decorate(&built.tasks, &mut SimRng::seed_from(seed ^ 0xABCD));
                let driver = default_driver(workers, alg.clone()).seed(seed);
                let report = Driver::new(driver).run(tasks);
                assert_eq!(report.executed_misses, 0, "theorem with resources");
                ratios.push(report.hit_ratio());
            }
            s.push(
                participation,
                ratios.iter().sum::<f64>() / ratios.len() as f64,
            );
        }
        series.push(s);
    }
    let sads_drop = series[0].points()[0].1 - series[0].points().last().unwrap().1;
    let notes = vec![format!(
        "RT-SADS loses {:.1} points going from independent tasks to full resource \
         participation; the deadline-guarantee theorem held in every run (resource \
         waits are part of the feasibility test)",
        sads_drop * 100.0
    )];
    FigureOutput {
        id: "ext-resources",
        table: Table::new(
            "Ext. J: resource contention (P=10, R=30%, SF=1; 5 resources, 50% exclusive)",
            "participation",
            series,
        ),
        notes,
    }
}

/// **Ext. K (faults)** — graceful degradation under fault injection: hit
/// ratio as the per-processor failure rate rises, for RT-SADS and D-COLS
/// at P=10. With `mttr_ms == 0` failures are fail-stop; otherwise
/// processors recover after an exponential repair time. Also reports the
/// fault-accounting tallies (orphaned, lost in flight) per rate.
#[must_use]
pub fn faults(config: &ExperimentConfig) -> FigureOutput {
    use rtsads::FaultConfig;

    let workers = 10;
    let rates = config.fault_rate_sweep();
    let mttr = config.mttr();
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for alg in [Algorithm::rt_sads(), Algorithm::d_cols()] {
        let mut s = Series::new(alg.name());
        let mut tallies = Vec::new();
        for &rate in &rates {
            let fc = match mttr {
                _ if rate <= 0.0 => FaultConfig::disabled(),
                None => FaultConfig::fail_stop(rate),
                Some(m) => FaultConfig::fail_recover(rate, m),
            };
            let driver = default_driver(workers, alg.clone()).faults(fc);
            let p = point(config, workers, 0.3, 2.0, driver);
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            tallies.push(format!(
                "rate {rate}: orphaned {:.1}, lost {:.1}, faults {:.1}",
                mean(&p.orphaned),
                mean(&p.lost_in_flight),
                mean(&p.faults_seen)
            ));
            s.push(rate, p.mean_hit_ratio());
        }
        notes.push(format!("{}: {}", alg.name(), tallies.join("; ")));
        series.push(s);
    }
    for s in &series {
        let first = s.points().first().map(|&(_, y)| y).unwrap_or(0.0);
        let last = s.points().last().map(|&(_, y)| y).unwrap_or(0.0);
        notes.push(format!(
            "{}: hit ratio {first:.4} fault-free -> {last:.4} at the highest rate \
             ({} degradation)",
            s.label(),
            if last <= first {
                "graceful"
            } else {
                "NON-MONOTONE"
            }
        ));
    }
    FigureOutput {
        id: "ext-faults",
        table: Table::new(
            "Ext. K: hit ratio vs processor failure rate (P=10, R=30%, SF=2)",
            "failures/proc/s",
            series,
        ),
        notes,
    }
}

/// **Ext. L (sharded cluster)** — scale the platform past the Paragon's
/// ten processors: P ∈ {64, 256, 1024} arranged as 64-processor nodes
/// (P/64 nodes, grouped four-per-rack once there are enough of them).
/// Compare the flat constant-`C` machine against the hierarchical model
/// (intra-node free, inter-node `C`, inter-rack `2C`) where the engine
/// screens whole shards before running the per-processor candidate loop.
/// P=64 is the degenerate single-node topology, which is bit-identical to
/// the flat model by construction — its two points must coincide.
#[must_use]
pub fn sharded(config: &ExperimentConfig) -> FigureOutput {
    use rt_task::{CommModel, TopologySpec};

    let procs = [64usize, 256, 1024];
    let topo_for = |m: usize| {
        let nodes = (m / 64).max(1) as u32;
        if nodes < 2 {
            // One node: the hierarchical model degenerates to the flat
            // constant-C machine, so mirror it exactly.
            return TopologySpec::flat(m as u32, comm_model().constant_cost());
        }
        let racks = (nodes / 4).max(1);
        TopologySpec::new(m as u32, nodes, racks, 0, 2_000, 4_000)
    };

    let mut series = Vec::new();
    let mut notes = Vec::new();
    let mut sched_at_top = [0.0f64; 2];
    for (idx, sharded_mode) in [false, true].into_iter().enumerate() {
        let label = format!(
            "RT-SADS ({})",
            if sharded_mode { "sharded" } else { "flat C" }
        );
        let mut s = Series::new(label);
        for &m in &procs {
            let comm = if sharded_mode {
                CommModel::hierarchical(topo_for(m))
            } else {
                comm_model()
            };
            let driver = DriverConfig::new(m, Algorithm::rt_sads())
                .comm(comm)
                .host(host_params());
            let p = point(config, m, 0.3, 1.0, driver);
            if m == *procs.last().unwrap() {
                sched_at_top[idx] =
                    p.sched_time_ms.iter().sum::<f64>() / p.sched_time_ms.len().max(1) as f64;
            }
            s.push(m as f64, p.mean_hit_ratio());
        }
        series.push(s);
    }
    let t = topo_for(1_024);
    notes.push(format!(
        "topology at P=1024: {} nodes x {} racks, intra-node {} us / inter-node {} us / \
         inter-rack {} us (flat C = {} us)",
        t.nodes(),
        t.racks(),
        t.intra_node_cost().as_micros(),
        t.inter_node_cost().as_micros(),
        t.inter_rack_cost().as_micros(),
        comm_model().constant_cost().as_micros()
    ));
    let p64_gap = (series[0].points()[0].1 - series[1].points()[0].1).abs();
    notes.push(format!(
        "P=64 is a single 64-processor node: |flat - sharded| = {p64_gap:.6} \
         ({})",
        if p64_gap == 0.0 {
            "bit-identical, as required"
        } else {
            "EXPECTED ZERO — degenerate-topology contract violated"
        }
    ));
    notes.push(format!(
        "mean scheduling time at P=1024: flat {:.2} ms vs sharded {:.2} ms — shard-first \
         screening {} the per-vertex candidate loop",
        sched_at_top[0],
        sched_at_top[1],
        if sched_at_top[1] <= sched_at_top[0] {
            "shortens"
        } else {
            "did NOT shorten"
        }
    ));
    FigureOutput {
        id: "ext-sharded",
        table: Table::new(
            "Ext. L: flat vs sharded hierarchical topology (R=30%, SF=1)",
            "processors",
            series,
        ),
        notes,
    }
}

fn mean_y(s: &Series) -> f64 {
    let pts = s.points();
    pts.iter().map(|&(_, y)| y).sum::<f64>() / pts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            runs: 1,
            transactions: 40,
            seed_base: 3,
            base: None,
            fault_rates: Vec::new(),
            mttr_ms: 0,
        }
    }

    #[test]
    fn quantum_ablation_structure() {
        let fig = quantum(&tiny());
        assert_eq!(fig.table.series().len(), 5);
        assert_eq!(fig.id, "ext-quantum");
    }

    #[test]
    fn cost_ablation_structure() {
        let fig = cost(&tiny());
        assert_eq!(fig.table.series().len(), 3);
        assert_eq!(fig.table.xs().len(), RATES.len());
    }

    #[test]
    fn deadends_and_overhead_structure() {
        let d = deadends(&tiny());
        assert_eq!(d.table.series().len(), 2);
        assert!(!d.notes.is_empty());
        let o = overhead(&tiny());
        assert_eq!(o.table.series().len(), 2);
        assert!(o.notes.iter().all(|n| n.contains("vertices")));
    }

    #[test]
    fn faults_figure_structure() {
        let mut cfg = tiny();
        cfg.fault_rates = vec![0.0, 4.0];
        cfg.mttr_ms = 100;
        let fig = faults(&cfg);
        assert_eq!(fig.id, "ext-faults");
        assert_eq!(fig.table.series().len(), 2);
        assert_eq!(fig.table.xs(), &[0.0, 4.0]);
        assert!(fig.notes.iter().any(|n| n.contains("orphaned")));
    }

    #[test]
    fn sharded_figure_structure() {
        let fig = sharded(&tiny());
        assert_eq!(fig.id, "ext-sharded");
        assert_eq!(fig.table.series().len(), 2);
        assert_eq!(fig.table.xs(), &[64.0, 256.0, 1024.0]);
        // P=64 is a single node: the hierarchical point must equal the flat one.
        let flat = fig.table.series()[0].points()[0].1;
        let hier = fig.table.series()[1].points()[0].1;
        assert_eq!(flat, hier, "1-node topology must match the flat model");
        assert!(fig.notes.iter().any(|n| n.contains("bit-identical")));
    }

    #[test]
    fn baselines_include_all_algorithms() {
        let fig = baselines(&tiny());
        assert_eq!(fig.table.series().len(), 7);
        for name in [
            "RT-SADS",
            "D-COLS",
            "D-COLS/skip",
            "D-COLS/fill-first",
            "Greedy-EDF",
            "Myopic",
            "Random",
        ] {
            assert!(fig.table.series_by_label(name).is_some(), "missing {name}");
        }
    }
}
