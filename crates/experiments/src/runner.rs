//! Replication runner: executes `(scenario, driver) × runs` jobs across
//! threads and aggregates the per-run reports into per-point statistics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use crossbeam::thread as cb_thread;
use rt_stats::{Summary, Table};
use rt_workload::Scenario;
use rtsads::{Driver, DriverConfig, RunReport};

/// Aggregated outcome of `runs` replications of one experiment point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Per-run deadline hit ratios, in run order.
    pub hit_ratios: Vec<f64>,
    /// Per-run total scheduling time (ms).
    pub sched_time_ms: Vec<f64>,
    /// Per-run vertices generated.
    pub vertices: Vec<f64>,
    /// Per-run backtracks.
    pub backtracks: Vec<f64>,
    /// Per-run dead-end phase counts.
    pub dead_ends: Vec<f64>,
    /// Per-run mean processors used per delivering phase.
    pub procs_used: Vec<f64>,
    /// Per-run scheduled-but-missed counts (the theorem says all zeros on a
    /// fault-free platform; fault injection may make these positive).
    pub executed_misses: Vec<f64>,
    /// Per-run orphaning events (tasks handed back to the host by faults).
    pub orphaned: Vec<f64>,
    /// Per-run tasks killed mid-execution by processor failures.
    pub lost_in_flight: Vec<f64>,
    /// Per-run processor failures applied.
    pub faults_seen: Vec<f64>,
}

impl PointResult {
    fn from_reports(reports: &[RunReport]) -> Self {
        PointResult {
            hit_ratios: reports.iter().map(RunReport::hit_ratio).collect(),
            sched_time_ms: reports
                .iter()
                .map(|r| r.total_scheduling_time().as_millis_f64())
                .collect(),
            vertices: reports.iter().map(|r| r.total_vertices() as f64).collect(),
            backtracks: reports
                .iter()
                .map(|r| r.total_backtracks() as f64)
                .collect(),
            dead_ends: reports.iter().map(|r| r.dead_end_phases() as f64).collect(),
            procs_used: reports
                .iter()
                .map(|r| r.mean_processors_used().unwrap_or(0.0))
                .collect(),
            executed_misses: reports.iter().map(|r| r.executed_misses as f64).collect(),
            orphaned: reports.iter().map(|r| r.orphaned as f64).collect(),
            lost_in_flight: reports.iter().map(|r| r.lost_in_flight as f64).collect(),
            faults_seen: reports.iter().map(|r| r.faults_seen as f64).collect(),
        }
    }

    /// Whether the point holds no replications (`run_point` with `runs == 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hit_ratios.is_empty()
    }

    /// Summary of the hit ratios.
    ///
    /// # Panics
    ///
    /// Panics with a clear message on an empty point — previously this
    /// surfaced as an inscrutable `Summary::from_slice` assertion.
    #[must_use]
    pub fn hit_summary(&self) -> Summary {
        assert!(
            !self.is_empty(),
            "cannot summarize a point with zero replications (runs == 0)"
        );
        Summary::from_slice(&self.hit_ratios)
    }

    /// Mean hit ratio — the quantity the paper plots.
    ///
    /// # Panics
    ///
    /// Panics on an empty point, like [`PointResult::hit_summary`].
    #[must_use]
    pub fn mean_hit_ratio(&self) -> f64 {
        self.hit_summary().mean()
    }
}

/// Runs one `(scenario, driver)` point `runs` times with seeds
/// `seed_base..seed_base+runs`, farming the replications out to worker
/// threads (sequentially on single-core machines).
#[must_use]
pub fn run_point(
    scenario: &Scenario,
    driver: &DriverConfig,
    runs: usize,
    seed_base: u64,
) -> PointResult {
    if runs == 0 {
        // Nothing to replicate: return an empty (but well-formed) point
        // instead of spawning a worker that panics summarizing no samples.
        return PointResult::from_reports(&[]);
    }
    // Seeds to run, claimed in chunks off a shared cursor. A chunk amortizes
    // the atomic over several replications while still balancing load when
    // run times differ (a slow seed only delays its own chunk).
    const CHUNK: usize = 8;
    crate::progress::begin_point(runs as u64);
    let seeds: Vec<u64> = (0..runs as u64).map(|r| seed_base + r).collect();
    let cursor = AtomicUsize::new(0);
    let threads = thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(runs.max(1));

    // Each worker accumulates into a thread-local vec and hands it back
    // through its join handle; nothing is shared but the seed cursor, so
    // workers never contend on a results lock.
    let mut collected: Vec<(u64, RunReport)> = Vec::with_capacity(runs);
    cb_thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut local: Vec<(u64, RunReport)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= seeds.len() {
                            break;
                        }
                        let end = (start + CHUNK).min(seeds.len());
                        for &seed in &seeds[start..end] {
                            let built = scenario.build(seed);
                            let report = Driver::new(driver.clone().seed(seed)).run(built.tasks);
                            crate::progress::record_run(report.phases.len() as u64);
                            local.push((seed, report));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            collected.extend(h.join().expect("experiment worker panicked"));
        }
    })
    .expect("experiment worker panicked");

    collected.sort_by_key(|(seed, _)| *seed);
    let reports: Vec<RunReport> = collected.into_iter().map(|(_, r)| r).collect();
    PointResult::from_reports(&reports)
}

/// A scheduling-oblivious reference point: the hit ratio an *oracle* EDF
/// list scheduler achieves with zero scheduling overhead and zero
/// communication cost (every task treated as locally runnable everywhere).
/// Not a strict upper bound for arbitrary instances, but a tight capacity
/// reference for the paper's burst workloads — it shows how much headroom
/// the deadline formula itself leaves.
#[must_use]
pub fn oracle_capacity(tasks: &[rt_task::Task], workers: usize) -> f64 {
    use paragon_des::Time;
    if tasks.is_empty() {
        return 0.0;
    }
    let mut order: Vec<&rt_task::Task> = tasks.iter().collect();
    order.sort_by_key(|t| (t.deadline(), t.id()));
    let mut free_at = vec![Time::ZERO; workers];
    let mut hits = 0usize;
    for t in order {
        // earliest-available worker
        let k = (0..workers)
            .min_by_key(|&k| free_at[k])
            .expect("at least one worker");
        let start = free_at[k].max(t.arrival());
        let done = start + t.processing_time();
        if t.meets_deadline(done) {
            free_at[k] = done;
            hits += 1;
        }
        // infeasible tasks are simply skipped (no capacity consumed)
    }
    hits as f64 / tasks.len() as f64
}

/// One regenerated figure/table: the data plus human-readable notes
/// (significance tests, diagnostics, shape checks).
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Short id, e.g. `fig5`.
    pub id: &'static str,
    /// The rendered table (series over the swept x-axis).
    pub table: Table,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl FigureOutput {
    /// Renders the table and notes as printable text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = self.table.render_ascii();
        for n in &self.notes {
            out.push_str("  note: ");
            out.push_str(n);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{comm_model, host_params};
    use rtsads::Algorithm;

    #[test]
    fn run_point_is_deterministic_and_ordered() {
        let scenario = Scenario::small().transactions(40);
        let driver = DriverConfig::new(4, Algorithm::rt_sads())
            .comm(comm_model())
            .host(host_params());
        let a = run_point(&scenario, &driver, 3, 100);
        let b = run_point(&scenario, &driver, 3, 100);
        assert_eq!(a.hit_ratios, b.hit_ratios);
        assert_eq!(a.hit_ratios.len(), 3);
        // theorem check across every replication
        assert!(a.executed_misses.iter().all(|&m| m == 0.0));
    }

    #[test]
    fn different_seeds_vary_the_ratio() {
        let scenario = Scenario::small().transactions(60);
        let driver = DriverConfig::new(4, Algorithm::rt_sads())
            .comm(comm_model())
            .host(host_params());
        let p = run_point(&scenario, &driver, 4, 7);
        let first = p.hit_ratios[0];
        assert!(
            p.hit_ratios.iter().any(|&h| (h - first).abs() > 1e-9),
            "expected run-to-run variation, got {:?}",
            p.hit_ratios
        );
        let s = p.hit_summary();
        assert_eq!(s.n(), 4);
        assert!((p.mean_hit_ratio() - s.mean()).abs() < 1e-12);
    }

    #[test]
    fn zero_runs_returns_an_empty_point_without_panicking() {
        let scenario = Scenario::small().transactions(10);
        let driver = DriverConfig::new(2, Algorithm::rt_sads())
            .comm(comm_model())
            .host(host_params());
        let p = run_point(&scenario, &driver, 0, 1);
        assert!(p.is_empty());
        assert!(p.hit_ratios.is_empty());
        assert!(p.faults_seen.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero replications")]
    fn summarizing_an_empty_point_panics_clearly() {
        let scenario = Scenario::small().transactions(10);
        let driver = DriverConfig::new(2, Algorithm::rt_sads())
            .comm(comm_model())
            .host(host_params());
        let _ = run_point(&scenario, &driver, 0, 1).hit_summary();
    }

    #[test]
    fn figure_output_renders_notes() {
        let mut series = rt_stats::Series::new("X");
        series.push(1.0, 0.5);
        let fig = FigureOutput {
            id: "demo",
            table: Table::new("t", "x", vec![series]),
            notes: vec!["hello".into()],
        };
        let text = fig.render();
        assert!(text.contains("note: hello"));
    }
}
