//! **Figure 5** — deadline scalability: hit ratio vs. number of processors
//! (2–10) at replication rate `R = 30%` and slack factor `SF = 1`,
//! RT-SADS vs. D-COLS.
//!
//! Paper's claims: RT-SADS keeps increasing its deadline compliance as
//! processors are added while D-COLS flattens out; the gap reaches ~60%.

use rt_stats::{welch_t_test, Series, Table};
use rtsads::{Algorithm, DriverConfig};

use crate::config::{comm_model, host_params, ExperimentConfig};
use crate::runner::{run_point, FigureOutput, PointResult};

/// The processor counts the paper sweeps.
pub const PROCESSORS: [usize; 5] = [2, 4, 6, 8, 10];

/// Runs the sweep for one algorithm, returning one `PointResult` per
/// processor count.
#[must_use]
pub fn sweep(config: &ExperimentConfig, algorithm: &Algorithm) -> Vec<PointResult> {
    PROCESSORS
        .iter()
        .map(|&m| {
            let scenario = config.base_scenario().workers(m).replication_rate(0.3);
            let driver = DriverConfig::new(m, algorithm.clone())
                .comm(comm_model())
                .host(host_params());
            run_point(&scenario, &driver, config.runs, config.seed_base)
        })
        .collect()
}

/// Regenerates Figure 5.
#[must_use]
pub fn run(config: &ExperimentConfig) -> FigureOutput {
    let algorithms = [Algorithm::rt_sads(), Algorithm::d_cols()];
    let mut series = Vec::new();
    let mut results = Vec::new();
    for alg in &algorithms {
        let points = sweep(config, alg);
        let mut s = Series::new(alg.name());
        for (&m, p) in PROCESSORS.iter().zip(&points) {
            s.push(m as f64, p.mean_hit_ratio());
        }
        series.push(s);
        results.push(points);
    }

    let mut notes = Vec::new();
    // Significance: per-point Welch two-tailed difference-of-means test at
    // the paper's 0.01 level.
    for (i, &m) in PROCESSORS.iter().enumerate() {
        let t = welch_t_test(&results[0][i].hit_ratios, &results[1][i].hit_ratios);
        notes.push(format!(
            "P={m}: RT-SADS {:.4} vs D-COLS {:.4}, diff {:+.4}, p={:.4}{}",
            results[0][i].mean_hit_ratio(),
            results[1][i].mean_hit_ratio(),
            t.mean_diff,
            t.p_value,
            if t.significant_at(0.01) {
                " (significant at 0.01)"
            } else {
                ""
            }
        ));
    }
    // Shape checks mirroring the paper's prose.
    let sads_first = series[0].points().first().map(|&(_, y)| y).unwrap_or(0.0);
    let sads_last = series[0].points().last().map(|&(_, y)| y).unwrap_or(0.0);
    let cols_last = series[1].points().last().map(|&(_, y)| y).unwrap_or(0.0);
    notes.push(format!(
        "scalability: RT-SADS grows {sads_first:.4} -> {sads_last:.4} ({}); \
         final advantage over D-COLS: {:+.1}%",
        if series[0].is_non_decreasing(0.02) {
            "monotone within 2pp"
        } else {
            "NOT monotone"
        },
        (sads_last - cols_last) * 100.0
    ));
    // capacity reference: how much the deadline formula itself allows
    let oracle: Vec<f64> = PROCESSORS
        .iter()
        .map(|&m| {
            let built = config
                .base_scenario()
                .workers(m)
                .replication_rate(0.3)
                .build(config.seed_base);
            crate::runner::oracle_capacity(&built.tasks, m)
        })
        .collect();
    notes.push(format!(
        "zero-overhead oracle capacity across the sweep: {:?} — RT-SADS \
         reaches {:.0}% of it at P=10",
        oracle
            .iter()
            .map(|o| (o * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        100.0 * sads_last / oracle.last().copied().unwrap_or(1.0)
    ));
    // theorem audit across all runs of both sweeps
    let misses: f64 = results
        .iter()
        .flatten()
        .flat_map(|p| &p.executed_misses)
        .sum();
    notes.push(format!(
        "deadline-guarantee theorem: {misses} scheduled tasks missed (must be 0)"
    ));

    FigureOutput {
        id: "fig5",
        table: Table::new(
            "Figure 5: deadline scalability (R=30%, SF=1)",
            "processors",
            series,
        ),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A heavily scaled-down end-to-end regeneration; the full-scale shape
    /// assertions live in the integration suite and EXPERIMENTS.md.
    #[test]
    fn quick_fig5_has_expected_structure() {
        let config = ExperimentConfig {
            runs: 2,
            transactions: 60,
            seed_base: 5,
            base: None,
            fault_rates: Vec::new(),
            mttr_ms: 0,
        };
        let fig = run(&config);
        assert_eq!(fig.id, "fig5");
        assert_eq!(fig.table.series().len(), 2);
        assert_eq!(fig.table.xs(), vec![2.0, 4.0, 6.0, 8.0, 10.0]);
        assert!(fig.table.series_by_label("RT-SADS").is_some());
        assert!(fig.table.series_by_label("D-COLS").is_some());
        assert!(fig
            .notes
            .iter()
            .any(|n| n.contains("deadline-guarantee theorem: 0")));
        for s in fig.table.series() {
            for &(_, y) in s.points() {
                assert!((0.0..=1.0).contains(&y), "hit ratio out of range: {y}");
            }
        }
    }
}
