//! Shared experiment configuration and the calibrated platform constants.

use paragon_des::Duration;
use paragon_platform::HostParams;
use rt_task::CommModel;
use rt_workload::Scenario;
use serde::{Deserialize, Serialize};

/// Harness-wide knobs (scale, replication count, output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Independent runs per point (the paper uses 10).
    pub runs: usize,
    /// Transactions per run (the paper uses 1000).
    pub transactions: usize,
    /// Base seed; run `r` of a point uses `seed_base + r`.
    pub seed_base: u64,
    /// Optional scenario override loaded from a JSON file (`--scenario`);
    /// each experiment still applies its own sweeps (workers, replication
    /// rate, slack factor) on top.
    #[serde(default)]
    pub base: Option<Scenario>,
    /// Processor failure rates (failures/processor/second) the `ext-faults`
    /// experiment sweeps (`--fault-rate`). Empty means the default sweep.
    #[serde(default)]
    pub fault_rates: Vec<f64>,
    /// Mean time to repair in milliseconds for `ext-faults` (`--mttr`).
    /// Zero means fail-stop: failed processors never return.
    #[serde(default)]
    pub mttr_ms: u64,
}

impl ExperimentConfig {
    /// The paper's scale: 10 runs × 1000 transactions.
    #[must_use]
    pub fn paper() -> Self {
        ExperimentConfig {
            runs: 10,
            transactions: 1_000,
            seed_base: 1_998, // the venue year; any constant works
            base: None,
            fault_rates: Vec::new(),
            mttr_ms: 0,
        }
    }

    /// A fast configuration for smoke tests and CI: 3 runs × 200
    /// transactions.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            runs: 3,
            transactions: 200,
            seed_base: 1_998,
            base: None,
            fault_rates: Vec::new(),
            mttr_ms: 0,
        }
    }

    /// The failure-rate sweep `ext-faults` runs: the configured list, or a
    /// default covering fault-free through heavily degraded.
    #[must_use]
    pub fn fault_rate_sweep(&self) -> Vec<f64> {
        if self.fault_rates.is_empty() {
            vec![0.0, 2.0, 4.0, 8.0, 16.0]
        } else {
            self.fault_rates.clone()
        }
    }

    /// The configured repair time, `None` for fail-stop.
    #[must_use]
    pub fn mttr(&self) -> Option<Duration> {
        (self.mttr_ms > 0).then(|| Duration::from_millis(self.mttr_ms))
    }

    /// The base scenario all experiments derive from: the `--scenario`
    /// override if one was loaded, else the paper's Section 5.1 parameters —
    /// either way at this config's transaction scale.
    #[must_use]
    pub fn base_scenario(&self) -> Scenario {
        let mut s = self.base.clone().unwrap_or_else(Scenario::paper_defaults);
        s.transactions = self.transactions;
        s
    }

    /// Loads a scenario override from JSON text (see `--scenario`).
    ///
    /// # Errors
    ///
    /// Returns the serde error message on malformed JSON.
    pub fn with_scenario_json(mut self, json: &str) -> Result<Self, String> {
        let scenario: Scenario = serde_json::from_str(json).map_err(|e| e.to_string())?;
        self.base = Some(scenario);
        Ok(self)
    }

    /// Serializes the effective base scenario as pretty JSON (see
    /// `--dump-scenario`).
    #[must_use]
    pub fn scenario_json(&self) -> String {
        serde_json::to_string_pretty(&self.base_scenario()).expect("scenario serializes infallibly")
    }
}

/// Calibrated interconnect constant `C` (2 ms): fetching a remote
/// sub-database costs a fifth of scanning it. Large enough that a keyed
/// (index-priced, tight-deadline) transaction *cannot* afford a non-affine
/// processor — which is what makes low replication rates stress processor
/// selection, the effect Figures 5 and 6 measure.
#[must_use]
pub fn comm_model() -> CommModel {
    CommModel::constant(Duration::from_millis(2))
}

/// Calibrated host cost: 1 µs of scheduling time per generated search
/// vertex — an order of magnitude below the 10 µs checking iteration, the
/// regime in which the self-adjusting quantum admits useful search depth.
#[must_use]
pub fn host_params() -> HostParams {
    HostParams::new(Duration::from_micros(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_the_text() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.runs, 10);
        assert_eq!(c.transactions, 1_000);
        assert_eq!(c.base_scenario().transactions, 1_000);
        assert_eq!(c.base_scenario().partitions, 10);
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = ExperimentConfig::quick();
        assert!(q.runs < ExperimentConfig::paper().runs);
        assert!(q.transactions < ExperimentConfig::paper().transactions);
    }

    #[test]
    fn scenario_json_round_trips() {
        let config = ExperimentConfig::quick();
        let json = config.scenario_json();
        let loaded = ExperimentConfig::quick().with_scenario_json(&json).unwrap();
        assert_eq!(loaded.base_scenario(), config.base_scenario());
        // overrides survive: change a field in the JSON and see it land
        let tweaked = json.replace("\"partitions\": 10", "\"partitions\": 5");
        let loaded = ExperimentConfig::quick()
            .with_scenario_json(&tweaked)
            .unwrap();
        assert_eq!(loaded.base_scenario().partitions, 5);
        assert!(ExperimentConfig::quick()
            .with_scenario_json("not json")
            .is_err());
    }

    #[test]
    fn fault_sweep_defaults_and_overrides() {
        let c = ExperimentConfig::quick();
        assert_eq!(c.fault_rate_sweep(), vec![0.0, 2.0, 4.0, 8.0, 16.0]);
        assert_eq!(c.mttr(), None, "zero mttr means fail-stop");
        let mut c = c;
        c.fault_rates = vec![1.5];
        c.mttr_ms = 250;
        assert_eq!(c.fault_rate_sweep(), vec![1.5]);
        assert_eq!(c.mttr(), Some(Duration::from_millis(250)));
    }

    #[test]
    fn calibration_constants() {
        assert_eq!(comm_model().constant_cost(), Duration::from_millis(2));
        assert_eq!(host_params().vertex_eval_cost, Duration::from_micros(1));
    }
}
