//! Experiment harness: regenerates every figure of the paper's evaluation
//! (Figures 5 and 6) plus the extension/ablation experiments indexed in
//! `DESIGN.md`.
//!
//! Each experiment module exposes a `run(&ExperimentConfig) -> FigureOutput`
//! returning the same rows/series the paper reports (deadline hit ratios
//! over a swept parameter) together with the significance tests and
//! diagnostics the text cites. The `experiments` binary prints them as
//! aligned tables and writes CSV files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod ext;
pub mod fig5;
pub mod fig6;
pub mod progress;
pub mod runner;

pub use config::ExperimentConfig;
pub use runner::{FigureOutput, PointResult};
