//! Live progress for long experiment sweeps: a stderr ticker showing
//! replication and phase throughput plus an ETA for the current point.
//!
//! The runner's replication loop is hot and multi-threaded, so the hooks
//! ([`begin_point`], [`record_run`]) are plain relaxed atomics — a no-op
//! branch unless [`enable`] was called. A single [`ProgressTicker`] thread
//! repaints one `\r`-terminated stderr line a couple of times per second;
//! figures print their tables to stdout, so redirecting stdout keeps the
//! CSV pipeline clean while the ticker stays visible.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Mutex;
use std::time::Duration;

use rt_telemetry::MonotonicInstant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RUNS_DONE: AtomicU64 = AtomicU64::new(0);
static PHASES_DONE: AtomicU64 = AtomicU64::new(0);
static POINT_RUNS: AtomicU64 = AtomicU64::new(0);
static POINT_DONE: AtomicU64 = AtomicU64::new(0);
static LABEL: Mutex<String> = Mutex::new(String::new());

/// Turns the progress hooks on for this process (the `--progress` flag).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether [`enable`] was called.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Names the work in flight (e.g. the figure id) on the ticker line.
pub fn set_label(label: &str) {
    if is_enabled() {
        label.clone_into(&mut LABEL.lock().expect("progress label lock"));
    }
}

/// Marks the start of one experiment point with `runs` replications; the
/// ticker's `point` counter and ETA reset to it.
pub fn begin_point(runs: u64) {
    if is_enabled() {
        POINT_RUNS.store(runs, Ordering::Relaxed);
        POINT_DONE.store(0, Ordering::Relaxed);
    }
}

/// Records one finished replication that ran `phases` scheduling phases.
pub fn record_run(phases: u64) {
    if is_enabled() {
        RUNS_DONE.fetch_add(1, Ordering::Relaxed);
        PHASES_DONE.fetch_add(phases, Ordering::Relaxed);
        POINT_DONE.fetch_add(1, Ordering::Relaxed);
    }
}

/// Renders the ticker line from the counters and the elapsed wall time.
fn line(elapsed: Duration) -> String {
    render_line(
        &LABEL.lock().expect("progress label lock"),
        RUNS_DONE.load(Ordering::Relaxed),
        PHASES_DONE.load(Ordering::Relaxed),
        POINT_RUNS.load(Ordering::Relaxed),
        POINT_DONE.load(Ordering::Relaxed),
        elapsed,
    )
}

fn render_line(
    label: &str,
    runs: u64,
    phases: u64,
    point_runs: u64,
    point_done: u64,
    elapsed: Duration,
) -> String {
    let point_done = point_done.min(point_runs);
    let secs = elapsed.as_secs_f64().max(1e-9);
    let run_rate = runs as f64 / secs;
    let mut out = format!(
        "# {label}: {runs} runs ({run_rate:.1}/s), {:.0} phases/s",
        phases as f64 / secs
    );
    if point_runs > 0 {
        out.push_str(&format!(", point {point_done}/{point_runs}"));
        if run_rate > 0.0 && point_done < point_runs {
            let eta = (point_runs - point_done) as f64 / run_rate;
            out.push_str(&format!(", ETA {eta:.0}s"));
        }
    }
    out
}

/// The repainting thread: one stderr status line, refreshed until dropped.
///
/// Does nothing (spawns no thread) unless [`enable`] was called first.
#[derive(Debug)]
pub struct ProgressTicker {
    stop: Option<mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressTicker {
    /// Starts the repainting thread (a no-op ticker when disabled).
    #[must_use]
    pub fn start() -> Self {
        if !is_enabled() {
            return ProgressTicker {
                stop: None,
                handle: None,
            };
        }
        let (tx, rx) = mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            // The workspace's shared monotonic clock: same anchor type the
            // stage profiler uses, compile-time separated from virtual time.
            let started = MonotonicInstant::now();
            let mut painted = 0usize;
            loop {
                let stopped = match rx.recv_timeout(Duration::from_millis(500)) {
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => true,
                    Err(RecvTimeoutError::Timeout) => false,
                };
                let text = line(started.elapsed());
                // Pad over the previous paint so a shrinking line leaves no
                // tail, then park the cursor at the start for the next one.
                let pad = painted.saturating_sub(text.len());
                painted = text.len();
                eprint!("\r{text}{}", " ".repeat(pad));
                let _ = std::io::stderr().flush();
                if stopped {
                    eprintln!();
                    break;
                }
            }
        });
        ProgressTicker {
            stop: Some(tx),
            handle: Some(handle),
        }
    }

    /// Stops the thread, leaving the final status line on its own row.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(stop) = self.stop.take() {
            let _ = stop.send(());
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressTicker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_line_reports_rates_point_position_and_eta() {
        let two = Duration::from_secs(2);
        let text = render_line("fig5", 2, 42, 3, 2, two);
        assert_eq!(
            text,
            "# fig5: 2 runs (1.0/s), 21 phases/s, point 2/3, ETA 1s"
        );
        // A finished point drops the ETA; an unknown point size drops both.
        assert_eq!(
            render_line("x", 4, 10, 4, 4, two),
            "# x: 4 runs (2.0/s), 5 phases/s, point 4/4"
        );
        assert_eq!(
            render_line("x", 4, 10, 0, 0, two),
            "# x: 4 runs (2.0/s), 5 phases/s"
        );
        // point_done is clamped so a stale counter cannot overflow the bar.
        assert!(render_line("x", 9, 9, 3, 7, two).contains("point 3/3"));
    }

    // The statics are process-wide and other tests in this process call the
    // hooks once enabled, so global-counter assertions are delta-based.
    #[test]
    fn hooks_count_and_ticker_lifecycle_is_clean() {
        // Disabled (only this test ever enables): hooks are no-ops and the
        // ticker spawns nothing.
        record_run(10);
        assert_eq!(RUNS_DONE.load(Ordering::Relaxed), 0);
        ProgressTicker::start().finish();

        enable();
        set_label("fig5");
        let runs_before = RUNS_DONE.load(Ordering::Relaxed);
        let phases_before = PHASES_DONE.load(Ordering::Relaxed);
        record_run(10);
        assert!(RUNS_DONE.load(Ordering::Relaxed) > runs_before);
        assert!(PHASES_DONE.load(Ordering::Relaxed) >= phases_before + 10);
        begin_point(3);
        assert!(line(Duration::from_secs(2)).contains("fig5"));

        let ticker = ProgressTicker::start();
        std::thread::sleep(Duration::from_millis(30));
        ticker.finish();
    }
}
