//! Sample summaries and t-based confidence intervals.

use serde::{Deserialize, Serialize};

use crate::special::t_critical;

/// Summary statistics of one sample (e.g. the 10 runs of one experiment
/// point).
///
/// # Example
///
/// ```
/// use rt_stats::Summary;
///
/// let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.std_dev() - 2.138089935).abs() < 1e-6);
/// let (lo, hi) = s.confidence_interval(0.95);
/// assert!(lo < 5.0 && 5.0 < hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: usize,
    mean: f64,
    variance: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a non-finite value.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sample contains a non-finite value"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        // Sample (n-1) variance via the two-pass algorithm for stability.
        let variance = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            variance,
            min,
            max,
        }
    }

    /// Sample size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (zero for singleton samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Smallest observation.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Two-sided t confidence interval for the mean at the given confidence
    /// level (e.g. `0.99` for the paper's 99%).
    ///
    /// For singleton samples the interval degenerates to the point estimate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> (f64, f64) {
        // Validate before the singleton early-return, so a bogus level is
        // rejected regardless of sample size.
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence level must lie in (0, 1), got {confidence}"
        );
        if self.n < 2 {
            return (self.mean, self.mean);
        }
        let df = (self.n - 1) as f64;
        let half_width = t_critical(confidence, df) * self.std_error();
        (self.mean - half_width, self.mean + half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
        assert!((s.std_dev() - 2.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn singleton_sample() {
        let s = Summary::from_slice(&[7.5]);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.confidence_interval(0.99), (7.5, 7.5));
    }

    #[test]
    fn singleton_interval_degenerates_at_every_level() {
        let s = Summary::from_slice(&[3.25]);
        for conf in [0.5, 0.9, 0.95, 0.99, 0.999] {
            assert_eq!(s.confidence_interval(conf), (3.25, 3.25), "conf {conf}");
        }
        assert_eq!(s.n(), 1);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn bogus_confidence_rejected_even_for_singletons() {
        let _ = Summary::from_slice(&[1.0]).confidence_interval(1.0);
    }

    #[test]
    fn constant_sample_has_zero_variance() {
        let s = Summary::from_slice(&[4.0; 10]);
        assert_eq!(s.variance(), 0.0);
        let (lo, hi) = s.confidence_interval(0.99);
        assert_eq!((lo, hi), (4.0, 4.0));
    }

    #[test]
    fn confidence_interval_known_width() {
        // n=10, sd=1 => se = 1/sqrt(10); t_{0.975,9} ≈ 2.262
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let s = Summary::from_slice(&values);
        let (lo, hi) = s.confidence_interval(0.95);
        let half = (hi - lo) / 2.0;
        let expect = 2.262 * s.std_error();
        assert!((half - expect).abs() < 1e-2, "half={half} expect={expect}");
        assert!((s.mean() - (lo + hi) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn wider_confidence_wider_interval() {
        let values: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let s = Summary::from_slice(&values);
        let (l95, h95) = s.confidence_interval(0.95);
        let (l99, h99) = s.confidence_interval(0.99);
        assert!(h99 - l99 > h95 - l95);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::from_slice(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_panics() {
        let _ = Summary::from_slice(&[1.0, f64::NAN]);
    }
}
