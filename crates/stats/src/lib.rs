//! Statistics for the RT-SADS reproduction.
//!
//! The paper reports, for every experiment, the mean of 10 runs and states
//! that "two-tailed difference-of-means tests indicated a confidence interval
//! of 99% at a 0.01 significance level". This crate provides exactly that
//! machinery, implemented from first principles so the workspace needs no
//! external statistics dependency:
//!
//! * [`Summary`] — sample summaries (mean, sample variance, extrema) and
//!   t-based confidence intervals,
//! * [`welch_t_test`] — Welch's two-tailed difference-of-means test with the
//!   Welch–Satterthwaite degrees of freedom,
//! * [`special`] — log-gamma, the regularized incomplete beta function and
//!   the Student-t CDF underlying the test,
//! * [`Series`]/[`Table`] — figure/table assembly and rendering (aligned
//!   ASCII and CSV) for the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod summary;
mod table;
mod ttest;

pub mod special;

pub use summary::Summary;
pub use table::{Series, Table};
pub use ttest::{welch_t_test, TTestResult};
