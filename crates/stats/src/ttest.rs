//! Welch's two-tailed difference-of-means test — the significance test the
//! paper applies to every reported result.

use serde::{Deserialize, Serialize};

use crate::special::t_two_tailed_p;
use crate::summary::Summary;

/// Outcome of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-tailed p-value.
    pub p_value: f64,
    /// Difference of sample means (`a − b`).
    pub mean_diff: f64,
}

impl TTestResult {
    /// Whether the difference is significant at level `alpha` (the paper uses
    /// `alpha = 0.01`).
    #[must_use]
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Welch's unequal-variance two-tailed t-test between samples `a` and `b`.
///
/// Degenerate case: when both samples have zero variance, the p-value is
/// defined as `1.0` if the means are equal and `0.0` otherwise (the samples
/// are deterministic, so any difference is "infinitely" significant).
///
/// # Panics
///
/// Panics if either sample has fewer than two observations while variances
/// are non-zero comparison is requested, or if a sample is empty.
///
/// # Example
///
/// ```
/// use rt_stats::welch_t_test;
///
/// let fast = [0.90, 0.92, 0.91, 0.89, 0.93];
/// let slow = [0.60, 0.62, 0.58, 0.61, 0.59];
/// let r = welch_t_test(&fast, &slow);
/// assert!(r.significant_at(0.01));
/// assert!(r.mean_diff > 0.25);
/// ```
#[must_use]
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TTestResult {
    let sa = Summary::from_slice(a);
    let sb = Summary::from_slice(b);
    let mean_diff = sa.mean() - sb.mean();

    let va = sa.variance() / sa.n() as f64;
    let vb = sb.variance() / sb.n() as f64;
    let pooled = va + vb;

    if pooled == 0.0 {
        // Deterministic samples: equal means are indistinguishable, unequal
        // means differ with certainty.
        let p = if mean_diff == 0.0 { 1.0 } else { 0.0 };
        return TTestResult {
            t: if mean_diff == 0.0 { 0.0 } else { f64::INFINITY },
            df: (sa.n() + sb.n()) as f64 - 2.0,
            p_value: p,
            mean_diff,
        };
    }
    assert!(
        sa.n() >= 2 && sb.n() >= 2,
        "Welch's test needs at least two observations per sample"
    );

    let t = mean_diff / pooled.sqrt();
    // Welch–Satterthwaite approximation.
    let df =
        pooled.powi(2) / (va.powi(2) / (sa.n() as f64 - 1.0) + vb.powi(2) / (sb.n() as f64 - 1.0));
    let p_value = t_two_tailed_p(t, df);
    TTestResult {
        t,
        df,
        p_value,
        mean_diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_samples_fall_back_to_deterministic_comparison() {
        let same = welch_t_test(&[1.0], &[1.0]);
        assert_eq!(same.p_value, 1.0);
        assert_eq!(same.t, 0.0);
        let diff = welch_t_test(&[2.0], &[1.0]);
        assert_eq!(diff.p_value, 0.0);
        assert!(diff.t.is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least two observations")]
    fn singleton_against_varying_sample_panics_clearly() {
        let _ = welch_t_test(&[1.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&a, &a);
        assert_eq!(r.t, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert!(!r.significant_at(0.05));
        assert_eq!(r.mean_diff, 0.0);
    }

    #[test]
    fn clearly_different_samples_significant() {
        let a = [10.0, 10.1, 9.9, 10.05, 9.95, 10.0, 10.1, 9.9, 10.0, 10.0];
        let b = [5.0, 5.1, 4.9, 5.05, 4.95, 5.0, 5.1, 4.9, 5.0, 5.0];
        let r = welch_t_test(&a, &b);
        assert!(r.significant_at(0.01));
        assert!((r.mean_diff - 5.0).abs() < 1e-9);
        assert!(r.t > 10.0);
    }

    #[test]
    fn reference_value_equal_variances() {
        // Classic textbook case: equal n, equal variance Welch reduces to
        // pooled t. a = [1..5], b = [2..6]: mean diff = -1,
        // var = 2.5 each, se = sqrt(2.5/5*2) = 1, t = -1, df = 8.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 3.0, 4.0, 5.0, 6.0];
        let r = welch_t_test(&a, &b);
        assert!((r.t + 1.0).abs() < 1e-12);
        assert!((r.df - 8.0).abs() < 1e-9);
        // two-tailed p for t=1, df=8 ≈ 0.3466
        assert!((r.p_value - 0.3466).abs() < 1e-3, "p={}", r.p_value);
    }

    #[test]
    fn welch_df_unequal_variances() {
        // Larger variance in one sample pulls df below n1+n2-2.
        let a = [1.0, 5.0, 9.0, 13.0, 17.0]; // high variance
        let b = [3.0, 3.1, 2.9, 3.05, 2.95]; // tiny variance
        let r = welch_t_test(&a, &b);
        assert!(r.df < 8.0);
        assert!(r.df > 3.0);
    }

    #[test]
    fn deterministic_samples_edge_case() {
        let r = welch_t_test(&[2.0, 2.0], &[2.0, 2.0]);
        assert_eq!(r.p_value, 1.0);
        let r = welch_t_test(&[2.0, 2.0], &[3.0, 3.0]);
        assert_eq!(r.p_value, 0.0);
        assert!(r.significant_at(0.01));
    }

    #[test]
    fn symmetry_of_p_value() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.5, 3.5, 4.5, 5.5];
        let r1 = welch_t_test(&a, &b);
        let r2 = welch_t_test(&b, &a);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
        assert!((r1.t + r2.t).abs() < 1e-12);
        assert!((r1.mean_diff + r2.mean_diff).abs() < 1e-12);
    }
}
