//! Special functions needed by the t-distribution: log-gamma, the
//! regularized incomplete beta function, and the Student-t CDF.
//!
//! Implementations follow the classic Lanczos approximation and the
//! Lentz continued-fraction evaluation of the incomplete beta function
//! (as in *Numerical Recipes*), accurate to well beyond the 4-5 significant
//! digits the difference-of-means tests need.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0` (Lanczos
/// approximation, g=7, n=9).
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Example
///
/// ```
/// use rt_stats::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The regularized incomplete beta function `I_x(a, b)`.
///
/// # Panics
///
/// Panics unless `a > 0`, `b > 0` and `0 <= x <= 1`.
///
/// # Example
///
/// ```
/// use rt_stats::special::reg_inc_beta;
/// // I_x(1,1) = x
/// assert!((reg_inc_beta(0.3, 1.0, 1.0) - 0.3).abs() < 1e-12);
/// ```
#[must_use]
pub fn reg_inc_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_inc_beta requires a,b > 0");
    assert!(
        (0.0..=1.0).contains(&x),
        "reg_inc_beta requires 0 <= x <= 1"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction in its rapidly-converging region.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(x, a, b) / a
    } else {
        1.0 - front * beta_cf(1.0 - x, b, a) / b
    }
}

/// Continued-fraction evaluation for the incomplete beta (modified Lentz).
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // even step
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    h // converged to working precision for all realistic (a, b)
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// # Panics
///
/// Panics unless `df > 0` and `t` is finite.
///
/// # Example
///
/// ```
/// use rt_stats::special::t_cdf;
/// assert!((t_cdf(0.0, 10.0) - 0.5).abs() < 1e-12);
/// assert!(t_cdf(3.0, 10.0) > 0.99);
/// ```
#[must_use]
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_cdf requires positive degrees of freedom");
    assert!(t.is_finite(), "t_cdf requires a finite statistic");
    let x = df / (df + t * t);
    let p = 0.5 * reg_inc_beta(x, 0.5 * df, 0.5);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-tailed p-value for a t statistic with `df` degrees of freedom.
#[must_use]
pub fn t_two_tailed_p(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    reg_inc_beta(x, 0.5 * df, 0.5)
}

/// Critical value `t*` such that `P(|T| <= t*) = confidence` for Student's t
/// with `df` degrees of freedom — found by bisection on the CDF.
///
/// # Panics
///
/// Panics unless `0 < confidence < 1` and `df > 0`.
#[must_use]
pub fn t_critical(confidence: f64, df: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence must be in (0,1), got {confidence}"
    );
    assert!(df > 0.0, "t_critical requires positive degrees of freedom");
    let target = 1.0 - (1.0 - confidence) / 2.0; // upper-tail quantile
    let (mut lo, mut hi) = (0.0f64, 1e3f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "ln_gamma({n})"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        // Γ(3/2) = sqrt(pi)/2
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-10);
    }

    #[test]
    fn inc_beta_boundaries_and_identity() {
        assert_eq!(reg_inc_beta(0.0, 2.0, 3.0), 0.0);
        assert_eq!(reg_inc_beta(1.0, 2.0, 3.0), 1.0);
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert!((reg_inc_beta(x, 1.0, 1.0) - x).abs() < 1e-12);
            // symmetry: I_x(a,b) = 1 - I_{1-x}(b,a)
            let lhs = reg_inc_beta(x, 2.5, 4.0);
            let rhs = 1.0 - reg_inc_beta(1.0 - x, 4.0, 2.5);
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry
        assert!((reg_inc_beta(0.5, 2.0, 2.0) - 0.5).abs() < 1e-12);
        // I_{0.25}(2, 2) = 3x^2 - 2x^3 at x=0.25 -> 0.15625
        assert!((reg_inc_beta(0.25, 2.0, 2.0) - 0.15625).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_reference_values() {
        // With df=1 (Cauchy): CDF(1) = 3/4
        assert!((t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
        // Symmetry
        for &t in &[0.5, 1.3, 2.7] {
            let s = t_cdf(t, 7.0) + t_cdf(-t, 7.0);
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Known two-tailed critical point: t_{0.975, 10} ≈ 2.228
        assert!((t_two_tailed_p(2.228, 10.0) - 0.05).abs() < 5e-4);
        // t_{0.995, 18} ≈ 2.878 (99% two-tailed, the paper's setting)
        assert!((t_two_tailed_p(2.878, 18.0) - 0.01).abs() < 5e-4);
    }

    #[test]
    fn t_critical_inverts_cdf() {
        for &(conf, df, expect) in &[(0.95, 10.0, 2.228), (0.99, 18.0, 2.878), (0.99, 9.0, 3.250)] {
            let t = t_critical(conf, df);
            assert!((t - expect).abs() < 2e-3, "t_critical({conf},{df}) = {t}");
        }
    }

    #[test]
    fn t_cdf_large_df_approaches_normal() {
        // For df -> inf, CDF(1.96) -> 0.975
        let p = t_cdf(1.96, 100_000.0);
        assert!((p - 0.975).abs() < 1e-3, "p={p}");
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "0 <= x <= 1")]
    fn inc_beta_rejects_bad_x() {
        let _ = reg_inc_beta(1.5, 1.0, 1.0);
    }
}
