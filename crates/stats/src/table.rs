//! Figure/table assembly: labeled series over a shared x-axis, rendered as
//! aligned ASCII (what the harness prints) or CSV (what it writes to disk).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// One labeled data series, e.g. "RT-SADS" hit ratios over processor counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends an `(x, y)` point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The points in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The y value at a given x, if present (exact match).
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    /// Whether y is non-decreasing in x (scalability check helper).
    ///
    /// `tolerance` allows small dips (e.g. 0.02 = two percentage points).
    #[must_use]
    pub fn is_non_decreasing(&self, tolerance: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - tolerance)
    }
}

/// A table of series sharing an x-axis — one paper figure.
///
/// # Example
///
/// ```
/// use rt_stats::{Series, Table};
///
/// let mut sads = Series::new("RT-SADS");
/// sads.push(2.0, 0.30);
/// sads.push(4.0, 0.45);
/// let mut cols = Series::new("D-COLS");
/// cols.push(2.0, 0.28);
/// cols.push(4.0, 0.31);
/// let table = Table::new("Fig 5", "processors", vec![sads, cols]);
/// let text = table.render_ascii();
/// assert!(text.contains("RT-SADS"));
/// let csv = table.to_csv();
/// assert!(csv.starts_with("processors,RT-SADS,D-COLS"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    x_label: String,
    series: Vec<Series>,
}

impl Table {
    /// Builds a table from series.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or the series disagree on their x-axes.
    #[must_use]
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, series: Vec<Series>) -> Self {
        assert!(!series.is_empty(), "a table needs at least one series");
        let xs: Vec<f64> = series[0].points.iter().map(|(x, _)| *x).collect();
        for s in &series[1..] {
            let other: Vec<f64> = s.points.iter().map(|(x, _)| *x).collect();
            assert_eq!(
                xs, other,
                "series '{}' has a different x-axis than '{}'",
                s.label, series[0].label
            );
        }
        Table {
            title: title.into(),
            x_label: x_label.into(),
            series,
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The shared x values.
    #[must_use]
    pub fn xs(&self) -> Vec<f64> {
        self.series[0].points.iter().map(|(x, _)| *x).collect()
    }

    /// The contained series.
    #[must_use]
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// A series by label.
    #[must_use]
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders an aligned ASCII table, e.g.
    ///
    /// ```text
    /// Fig 5
    /// processors   RT-SADS    D-COLS
    ///          2    0.3000    0.2800
    /// ```
    #[must_use]
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let width = self
            .series
            .iter()
            .map(|s| s.label.len())
            .chain([self.x_label.len(), 10])
            .max()
            .unwrap_or(10)
            + 2;
        let _ = write!(out, "{:>w$}", self.x_label, w = width);
        for s in &self.series {
            let _ = write!(out, "{:>w$}", s.label, w = width);
        }
        let _ = writeln!(out);
        for (i, x) in self.xs().iter().enumerate() {
            let _ = write!(out, "{:>w$}", trim_num(*x), w = width);
            for s in &self.series {
                let _ = write!(out, "{:>w$.4}", s.points[i].1, w = width);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serializes to CSV with a header row (`x_label,series...`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{}", s.label);
        }
        let _ = writeln!(out);
        for (i, x) in self.xs().iter().enumerate() {
            let _ = write!(out, "{}", trim_num(*x));
            for s in &self.series {
                let _ = write!(out, ",{}", s.points[i].1);
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Formats an x value without a trailing `.0` when it is integral.
fn trim_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut a = Series::new("A");
        a.push(1.0, 0.5);
        a.push(2.0, 0.75);
        let mut b = Series::new("B");
        b.push(1.0, 0.4);
        b.push(2.0, 0.35);
        Table::new("demo", "x", vec![a, b])
    }

    #[test]
    fn series_basics() {
        let mut s = Series::new("s");
        assert_eq!(s.label(), "s");
        s.push(1.0, 2.0);
        s.push(3.0, 4.0);
        assert_eq!(s.points(), &[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(s.y_at(3.0), Some(4.0));
        assert_eq!(s.y_at(9.0), None);
    }

    #[test]
    fn non_decreasing_check() {
        let mut s = Series::new("s");
        for (x, y) in [(1.0, 0.1), (2.0, 0.3), (3.0, 0.29), (4.0, 0.5)] {
            s.push(x, y);
        }
        assert!(s.is_non_decreasing(0.02), "dip of 0.01 within tolerance");
        assert!(!s.is_non_decreasing(0.0));
    }

    #[test]
    fn table_accessors() {
        let t = sample_table();
        assert_eq!(t.title(), "demo");
        assert_eq!(t.xs(), vec![1.0, 2.0]);
        assert_eq!(t.series().len(), 2);
        assert_eq!(t.series_by_label("B").unwrap().y_at(2.0), Some(0.35));
        assert!(t.series_by_label("C").is_none());
    }

    #[test]
    fn ascii_rendering_contains_all_cells() {
        let text = sample_table().render_ascii();
        for needle in ["demo", "A", "B", "0.5000", "0.3500", "1", "2"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,A,B");
        assert_eq!(lines[1], "1,0.5,0.4");
        assert_eq!(lines[2], "2,0.75,0.35");
    }

    #[test]
    #[should_panic(expected = "different x-axis")]
    fn mismatched_axes_panic() {
        let mut a = Series::new("A");
        a.push(1.0, 0.0);
        let mut b = Series::new("B");
        b.push(2.0, 0.0);
        let _ = Table::new("bad", "x", vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_table_panics() {
        let _ = Table::new("bad", "x", vec![]);
    }

    #[test]
    fn trim_num_formats() {
        assert_eq!(trim_num(2.0), "2");
        assert_eq!(trim_num(0.3), "0.3");
    }
}
