//! The scheduling algorithms: RT-SADS, D-COLS, and sanity baselines.

use paragon_des::{SimRng, Time};
use paragon_platform::SchedulingMeter;
use rt_task::{CommModel, ProcessorId, ResourceEats, Task};
use sched_search::{
    search_schedule_parallel, search_schedule_with, Assignment, ChildOrder, ParallelScratch,
    PathState, PhaseProvenance, PlacementAlternative, PlacementEvidence, ProcessorOrder, Pruning,
    Representation, SearchOutcome, SearchParams, SearchScratch, SearchStats, TaskOrder,
    Termination,
};
use serde::{Deserialize, Serialize};

/// Reusable working storage for the phase loop: the search engine's
/// [`SearchScratch`] plus the buffers the one-pass baselines and the myopic
/// scheduler need. One lives per driver run; every scheduling phase clears
/// and refills it (clear-don't-drop), so steady-state phases perform no heap
/// allocation. Behavior is identical whether the scratch is fresh or reused
/// — pinned by the replay-oracle differential suite.
#[derive(Debug, Default)]
pub struct PhaseScratch {
    /// The tree-search engine's per-phase buffers.
    pub search: SearchScratch,
    /// Per-subtree scratch pool for the parallel search engine (unused —
    /// and never allocated — when phases run serially).
    pub par: ParallelScratch,
    /// Path state for the non-search schedulers, reset per phase.
    pub(crate) state: Option<PathState>,
    /// Task-order index buffer.
    pub(crate) order: Vec<usize>,
    /// Feasible (processor, completion) candidates of one task.
    pub(crate) feasible: Vec<(usize, Time)>,
}

impl PhaseScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a consumed [`SearchOutcome::assignments`] vector to the pool
    /// so the next phase reuses its capacity.
    pub fn recycle(&mut self, assignments: Vec<Assignment>) {
        self.search.recycle(assignments);
    }
}

/// Which scheduler runs the phases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// The paper's contribution: assignment-oriented search (Figure 2) with
    /// a per-level task ordering and heuristic successor ordering.
    RtSads {
        /// Which task each tree level considers.
        task_order: TaskOrder,
        /// Successor ordering (the load-balancing cost function by default).
        child_order: ChildOrder,
    },
    /// The sequence-oriented baseline (Figure 1), Distributed Continuous
    /// On-Line Scheduling, reconstructed from the paper's description: same
    /// quantum formula and feasibility test, different representation.
    DCols {
        /// Which processor each tree level serves.
        processor_order: ProcessorOrder,
        /// Successor ordering (EDF over the remaining tasks by default).
        child_order: ChildOrder,
        /// Whether a blocked level may advance to the next processor
        /// (ablation variant; the paper's D-COLS dead-ends instead).
        skip_processors: bool,
    },
    /// Greedy earliest-deadline-first list scheduling without backtracking:
    /// each task goes to the feasible processor with the earliest
    /// completion. A classical non-search baseline.
    GreedyEdf,
    /// The myopic algorithm of Ramamritham, Stankovic and Zhao (the paper's
    /// references \[3\]/\[6\]): feasibility window, integrating heuristic
    /// `H = d + W·EST`, limited backtracking. See [`Algorithm::myopic`].
    Myopic {
        /// Feasibility-window size `K`.
        window: usize,
        /// Heuristic weight `W`, in percent (100 = 1.0).
        weight_pct: u32,
        /// Backtracks allowed per phase.
        max_backtracks: u32,
    },
    /// Each task goes to a uniformly random *feasible* processor. The floor
    /// any informed scheduler must beat.
    RandomAssign,
}

impl Algorithm {
    /// Canonical RT-SADS: EDF task order, load-balancing cost function.
    #[must_use]
    pub fn rt_sads() -> Self {
        Algorithm::RtSads {
            task_order: TaskOrder::EarliestDeadline,
            child_order: ChildOrder::LoadBalance,
        }
    }

    /// Canonical D-COLS: round-robin processors, EDF successor ordering, no
    /// processor skipping.
    #[must_use]
    pub fn d_cols() -> Self {
        Algorithm::DCols {
            processor_order: ProcessorOrder::RoundRobin,
            child_order: ChildOrder::EarliestDeadline,
            skip_processors: false,
        }
    }

    /// The D-COLS ablation variant that may advance past a blocked
    /// processor instead of dead-ending.
    #[must_use]
    pub fn d_cols_skipping() -> Self {
        Algorithm::DCols {
            processor_order: ProcessorOrder::RoundRobin,
            child_order: ChildOrder::EarliestDeadline,
            skip_processors: true,
        }
    }

    /// The classical myopic configuration: window of 7 tasks, unit
    /// heuristic weight, 8 backtracks per phase.
    #[must_use]
    pub fn myopic() -> Self {
        Algorithm::Myopic {
            window: 7,
            weight_pct: 100,
            max_backtracks: 8,
        }
    }

    /// A short human-readable name for tables and figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::RtSads { child_order, .. } => match child_order {
                ChildOrder::LoadBalance => "RT-SADS",
                ChildOrder::EarliestCompletion => "RT-SADS/greedy-order",
                ChildOrder::EarliestDeadline => "RT-SADS/edf-order",
                ChildOrder::None => "RT-SADS/no-cost",
            },
            Algorithm::DCols {
                processor_order,
                skip_processors,
                ..
            } => match (processor_order, skip_processors) {
                (ProcessorOrder::RoundRobin, false) => "D-COLS",
                (ProcessorOrder::RoundRobin, true) => "D-COLS/skip",
                (ProcessorOrder::FillFirst, false) => "D-COLS/fill-first",
                (ProcessorOrder::FillFirst, true) => "D-COLS/fill-first-skip",
            },
            Algorithm::GreedyEdf => "Greedy-EDF",
            Algorithm::Myopic { .. } => "Myopic",
            Algorithm::RandomAssign => "Random",
        }
    }

    /// Runs one scheduling phase over `tasks` and returns the (partial)
    /// schedule. `initial_finish[k]` is `max(busy_until_k, t_s + Q_s(j))`;
    /// `meter` charges and bounds the scheduling time; `pruning` applies the
    /// Section-3 bounds to the search-based algorithms (the one-pass
    /// baselines ignore it); `rng` is only used by
    /// [`Algorithm::RandomAssign`]; `provenance` asks for decision evidence
    /// ([`SearchOutcome::provenance`] — record-only, never alters the
    /// schedule; the myopic baseline does not produce any). `scratch` holds
    /// the reusable working buffers — pass a fresh one for a one-off call, or
    /// carry one across phases to keep the hot path allocation-free.
    ///
    /// `threads` selects the search execution mode for RT-SADS and D-COLS
    /// (the one-pass baselines ignore it): `<= 1` runs the serial engine;
    /// `>= 2` runs the deterministic parallel engine, whose results are
    /// independent of the exact thread count (the split is per root
    /// subtree, not per thread — see `sched_search::search_schedule_parallel`).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn schedule_phase(
        &self,
        tasks: &[Task],
        comm: &CommModel,
        initial_finish: &[Time],
        now: Time,
        vertex_cap: Option<u64>,
        pruning: Pruning,
        resources: &ResourceEats,
        provenance: bool,
        threads: usize,
        meter: &mut SchedulingMeter,
        rng: &mut SimRng,
        scratch: &mut PhaseScratch,
    ) -> SearchOutcome {
        match self {
            Algorithm::RtSads {
                task_order,
                child_order,
            } => {
                let repr = Representation::AssignmentOriented {
                    task_order: *task_order,
                };
                let params = SearchParams {
                    tasks,
                    comm,
                    initial_finish,
                    representation: &repr,
                    child_order: *child_order,
                    now,
                    vertex_cap,
                    pruning,
                    resources: resources.clone(),
                    provenance,
                };
                if threads >= 2 {
                    search_schedule_parallel(
                        &params,
                        threads,
                        meter,
                        &mut scratch.search,
                        &mut scratch.par,
                    )
                } else {
                    search_schedule_with(&params, meter, &mut scratch.search)
                }
            }
            Algorithm::DCols {
                processor_order,
                child_order,
                skip_processors,
            } => {
                let repr = Representation::SequenceOriented {
                    processor_order: *processor_order,
                    skip_processors: *skip_processors,
                };
                let params = SearchParams {
                    tasks,
                    comm,
                    initial_finish,
                    representation: &repr,
                    child_order: *child_order,
                    now,
                    vertex_cap,
                    pruning,
                    resources: resources.clone(),
                    provenance,
                };
                if threads >= 2 {
                    search_schedule_parallel(
                        &params,
                        threads,
                        meter,
                        &mut scratch.search,
                        &mut scratch.par,
                    )
                } else {
                    search_schedule_with(&params, meter, &mut scratch.search)
                }
            }
            Algorithm::GreedyEdf => greedy_edf(
                tasks,
                comm,
                initial_finish,
                now,
                resources,
                provenance,
                meter,
                scratch,
            ),
            Algorithm::Myopic {
                window,
                weight_pct,
                max_backtracks,
            } => crate::myopic::myopic_phase(
                tasks,
                comm,
                initial_finish,
                now,
                resources,
                *window,
                *weight_pct,
                *max_backtracks,
                meter,
                scratch,
            ),
            Algorithm::RandomAssign => random_assign(
                tasks,
                comm,
                initial_finish,
                resources,
                provenance,
                meter,
                rng,
                scratch,
            ),
        }
    }
}

/// List scheduling: EDF order, each task to its feasible
/// earliest-completion processor, never undone.
#[allow(clippy::too_many_arguments)]
fn greedy_edf(
    tasks: &[Task],
    comm: &CommModel,
    initial_finish: &[Time],
    now: Time,
    resources: &ResourceEats,
    provenance: bool,
    meter: &mut SchedulingMeter,
    scratch: &mut PhaseScratch,
) -> SearchOutcome {
    TaskOrder::EarliestDeadline.order_into(tasks, now, &mut scratch.order);
    one_pass(
        tasks,
        comm,
        initial_finish,
        resources,
        provenance,
        meter,
        scratch,
        |cands| {
            cands
                .iter()
                .min_by_key(|&&(_, completion)| completion)
                .copied()
        },
    )
}

/// Each task to a uniformly random feasible processor.
#[allow(clippy::too_many_arguments)]
fn random_assign(
    tasks: &[Task],
    comm: &CommModel,
    initial_finish: &[Time],
    resources: &ResourceEats,
    provenance: bool,
    meter: &mut SchedulingMeter,
    rng: &mut SimRng,
    scratch: &mut PhaseScratch,
) -> SearchOutcome {
    scratch.order.clear();
    scratch.order.extend(0..tasks.len());
    one_pass(
        tasks,
        comm,
        initial_finish,
        resources,
        provenance,
        meter,
        scratch,
        |cands| {
            if cands.is_empty() {
                None
            } else {
                Some(*rng.choose(cands))
            }
        },
    )
}

/// Shared single-pass (no-backtracking) scheduler skeleton for the two
/// baselines; the caller has filled `scratch.order` with the task order, and
/// `pick` chooses among the feasible `(processor, completion)` candidates of
/// one task.
#[allow(clippy::too_many_arguments)]
fn one_pass(
    tasks: &[Task],
    comm: &CommModel,
    initial_finish: &[Time],
    resources: &ResourceEats,
    provenance: bool,
    meter: &mut SchedulingMeter,
    scratch: &mut PhaseScratch,
    mut pick: impl FnMut(&[(usize, Time)]) -> Option<(usize, Time)>,
) -> SearchOutcome {
    let PhaseScratch {
        search,
        state: state_slot,
        order,
        feasible,
        ..
    } = scratch;
    match state_slot.as_mut() {
        Some(s) => s.reset(initial_finish, tasks.len(), resources),
        None => {
            *state_slot = Some(PathState::with_resources(
                initial_finish.to_vec(),
                tasks.len(),
                resources.clone(),
            ));
        }
    }
    let state = state_slot.as_mut().expect("state initialized above");
    let mut stats = SearchStats::default();
    let mut skipped_any = false;
    let mut exhausted = false;
    let mut decisions: Vec<PlacementEvidence> = Vec::new();

    'outer: for &t in order.iter() {
        stats.expansions += 1;
        feasible.clear();
        for p in ProcessorId::all(state.processors()) {
            // Same accounting contract as the search engine: a failed charge
            // still counts the vertex (stats equal `meter.vertices()`), and
            // only charged vertices are classified feasible/infeasible.
            if !meter.charge_vertex() {
                stats.vertices_generated += 1;
                exhausted = true;
                break 'outer;
            }
            stats.vertices_generated += 1;
            let completion = state.completion_if(tasks, comm, t, p);
            if tasks[t].meets_deadline(completion) {
                stats.feasible_children += 1;
                feasible.push((p.index(), completion));
            } else {
                stats.infeasible_children += 1;
            }
        }
        if let Some((p, completion)) = pick(feasible) {
            if provenance {
                // Record-only: cost ce_k is the makespan had the candidate
                // been chosen, computed against the pre-apply state for the
                // chosen and rejected placements alike.
                decisions.push(PlacementEvidence {
                    task: t,
                    processor: ProcessorId::new(p),
                    completion,
                    cost: state.makespan().max(completion),
                    rejected: feasible
                        .iter()
                        .filter(|&&(q, _)| q != p)
                        .map(|&(q, c)| PlacementAlternative {
                            processor: ProcessorId::new(q),
                            completion: c,
                            cost: state.makespan().max(c),
                        })
                        .collect(),
                });
            }
            state.apply(tasks, comm, t, ProcessorId::new(p));
            stats.deepest = state.depth();
        } else {
            skipped_any = true;
        }
    }

    let termination = if exhausted {
        Termination::QuantumExhausted
    } else if skipped_any {
        Termination::DeadEnd
    } else {
        Termination::Leaf
    };
    // One-pass baselines do not screen: the whole batch counts as viable,
    // so `Leaf` only when every batch task was placed.
    let makespan = state.makespan();
    // Copy into the pooled buffer (the state stays in the scratch for the
    // next phase); the driver recycles the vector after consuming it.
    let mut assignments = search.take_assignment_buffer();
    assignments.extend_from_slice(state.assignments());
    SearchOutcome {
        assignments,
        termination,
        n_viable: tasks.len(),
        makespan,
        stats,
        // One-pass baselines do not screen, so provenance carries decisions
        // only; tasks without a feasible processor simply stay in the batch.
        provenance: provenance.then(|| PhaseProvenance {
            screened: Vec::new(),
            decisions,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;
    use paragon_platform::HostParams;
    use rt_task::{AffinitySet, TaskId};

    fn mk_task(id: u64, p_us: u64, d_us: u64, aff_all: usize) -> Task {
        Task::builder(TaskId::new(id))
            .processing_time(Duration::from_micros(p_us))
            .deadline(Time::from_micros(d_us))
            .affinity(AffinitySet::all(aff_all))
            .build()
    }

    fn free_meter() -> SchedulingMeter {
        SchedulingMeter::new(HostParams::free(), Duration::ZERO)
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Algorithm::rt_sads().name(),
            Algorithm::d_cols().name(),
            Algorithm::GreedyEdf.name(),
            Algorithm::RandomAssign.name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
        assert_eq!(Algorithm::rt_sads().name(), "RT-SADS");
        assert_eq!(Algorithm::d_cols().name(), "D-COLS");
    }

    #[test]
    fn rt_sads_balances_equal_tasks() {
        let tasks: Vec<Task> = (0..4).map(|i| mk_task(i, 100, 100_000, 2)).collect();
        let comm = CommModel::free();
        let initial = [Time::ZERO; 2];
        let mut rng = SimRng::seed_from(0);
        let out = Algorithm::rt_sads().schedule_phase(
            &tasks,
            &comm,
            &initial,
            Time::ZERO,
            Some(10_000),
            Pruning::default(),
            &ResourceEats::new(),
            false,
            1,
            &mut free_meter(),
            &mut rng,
            &mut PhaseScratch::new(),
        );
        assert_eq!(out.termination, Termination::Leaf);
        assert_eq!(out.processors_used(), 2);
        // perfectly balanced: two tasks per processor, makespan 200
        let makespan = out.assignments.iter().map(|a| a.completion).max().unwrap();
        assert_eq!(makespan, Time::from_micros(200));
    }

    #[test]
    fn greedy_edf_schedules_in_deadline_order() {
        let tasks = vec![
            mk_task(0, 100, 100_000, 1),
            mk_task(1, 100, 50_000, 1),
            mk_task(2, 100, 200_000, 1),
        ];
        let comm = CommModel::free();
        let initial = [Time::ZERO];
        let mut rng = SimRng::seed_from(0);
        let out = Algorithm::GreedyEdf.schedule_phase(
            &tasks,
            &comm,
            &initial,
            Time::ZERO,
            None,
            Pruning::default(),
            &ResourceEats::new(),
            false,
            1,
            &mut free_meter(),
            &mut rng,
            &mut PhaseScratch::new(),
        );
        assert_eq!(out.termination, Termination::Leaf);
        let order: Vec<usize> = out.assignments.iter().map(|a| a.task).collect();
        assert_eq!(order, vec![1, 0, 2], "EDF picks task 1 first");
    }

    #[test]
    fn greedy_edf_skips_infeasible_and_reports_dead_end() {
        let tasks = vec![mk_task(0, 100, 50, 1), mk_task(1, 100, 100_000, 1)];
        let comm = CommModel::free();
        let initial = [Time::ZERO];
        let mut rng = SimRng::seed_from(0);
        let out = Algorithm::GreedyEdf.schedule_phase(
            &tasks,
            &comm,
            &initial,
            Time::ZERO,
            None,
            Pruning::default(),
            &ResourceEats::new(),
            false,
            1,
            &mut free_meter(),
            &mut rng,
            &mut PhaseScratch::new(),
        );
        assert_eq!(out.termination, Termination::DeadEnd);
        assert_eq!(out.assignments.len(), 1);
        assert_eq!(out.assignments[0].task, 1);
    }

    #[test]
    fn random_assign_is_deterministic_per_seed_and_feasible() {
        let tasks: Vec<Task> = (0..8).map(|i| mk_task(i, 100, 100_000, 3)).collect();
        let comm = CommModel::free();
        let initial = [Time::ZERO; 3];
        let run = |seed: u64| {
            let mut rng = SimRng::seed_from(seed);
            Algorithm::RandomAssign.schedule_phase(
                &tasks,
                &comm,
                &initial,
                Time::ZERO,
                None,
                Pruning::default(),
                &ResourceEats::new(),
                false,
                1,
                &mut free_meter(),
                &mut rng,
                &mut PhaseScratch::new(),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.assignments, b.assignments);
        for asg in &a.assignments {
            assert!(tasks[asg.task].meets_deadline(asg.completion));
        }
        assert_eq!(a.termination, Termination::Leaf);
        // different seeds usually differ
        let c = run(8);
        assert!(
            a.assignments != c.assignments || a.assignments.len() == c.assignments.len(),
            "sanity"
        );
    }

    #[test]
    fn baselines_respect_the_meter() {
        let tasks: Vec<Task> = (0..100).map(|i| mk_task(i, 100, 1_000_000, 2)).collect();
        let comm = CommModel::free();
        let initial = [Time::ZERO; 2];
        let mut meter = SchedulingMeter::new(
            HostParams::new(Duration::from_micros(1)),
            Duration::from_micros(9),
        );
        let mut rng = SimRng::seed_from(0);
        let out = Algorithm::GreedyEdf.schedule_phase(
            &tasks,
            &comm,
            &initial,
            Time::ZERO,
            None,
            Pruning::default(),
            &ResourceEats::new(),
            false,
            1,
            &mut meter,
            &mut rng,
            &mut PhaseScratch::new(),
        );
        assert_eq!(out.termination, Termination::QuantumExhausted);
        // 9 vertex charges = 4 tasks fully evaluated (2 procs each) + 1 cut
        assert!(out.assignments.len() <= 5);
        assert!(!out.assignments.is_empty());
        // Accounting contract (matches the search engine): the failed charge
        // is counted but not classified.
        assert_eq!(out.stats.vertices_generated, meter.vertices());
        assert_eq!(
            out.stats.feasible_children + out.stats.infeasible_children,
            out.stats.vertices_generated - 1,
            "exactly the uncharged vertex goes unclassified"
        );
    }

    #[test]
    fn reused_phase_scratch_matches_fresh_runs() {
        // One scratch carried across every algorithm must reproduce each
        // fresh-scratch outcome exactly, including stats and provenance.
        let tasks: Vec<Task> = (0..8)
            .map(|i| mk_task(i, 100 + (i % 3) * 40, 100_000, 2))
            .collect();
        let comm = CommModel::constant(Duration::from_micros(20));
        let initial = [Time::ZERO, Time::from_micros(150)];
        let algorithms = [
            Algorithm::rt_sads(),
            Algorithm::d_cols(),
            Algorithm::GreedyEdf,
            Algorithm::myopic(),
            Algorithm::RandomAssign,
        ];
        let mut scratch = PhaseScratch::new();
        for algorithm in &algorithms {
            let run = |scratch: &mut PhaseScratch| {
                let mut rng = SimRng::seed_from(11);
                algorithm.schedule_phase(
                    &tasks,
                    &comm,
                    &initial,
                    Time::ZERO,
                    Some(10_000),
                    Pruning::default(),
                    &ResourceEats::new(),
                    true,
                    1,
                    &mut free_meter(),
                    &mut rng,
                    scratch,
                )
            };
            let fresh = run(&mut PhaseScratch::new());
            let reused = run(&mut scratch);
            assert_eq!(fresh.assignments, reused.assignments);
            assert_eq!(fresh.termination, reused.termination);
            assert_eq!(fresh.makespan, reused.makespan);
            assert_eq!(fresh.stats, reused.stats);
            assert_eq!(fresh.provenance, reused.provenance);
            scratch.recycle(reused.assignments);
        }
    }

    #[test]
    fn d_cols_uses_sequence_representation() {
        let tasks: Vec<Task> = (0..4).map(|i| mk_task(i, 100, 100_000, 2)).collect();
        let comm = CommModel::free();
        let initial = [Time::ZERO; 2];
        let mut rng = SimRng::seed_from(0);
        let out = Algorithm::d_cols().schedule_phase(
            &tasks,
            &comm,
            &initial,
            Time::ZERO,
            Some(10_000),
            Pruning::default(),
            &ResourceEats::new(),
            false,
            1,
            &mut free_meter(),
            &mut rng,
            &mut PhaseScratch::new(),
        );
        assert_eq!(out.termination, Termination::Leaf);
        assert_eq!(out.processors_used(), 2, "round-robin spreads the tasks");
    }
}
