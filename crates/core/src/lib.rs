//! **RT-SADS** — Real-Time Self-Adjusting Dynamic Scheduling — and its
//! baselines, reproducing Atif & Hamidzadeh, *A Scalable Scheduling Algorithm
//! for Real-Time Distributed Systems* (ICDCS 1998).
//!
//! # The algorithm
//!
//! RT-SADS dynamically schedules aperiodic, non-preemptable, independent
//! real-time tasks on a distributed-memory multiprocessor. A dedicated host
//! processor runs *scheduling phases* concurrently with task execution on the
//! working processors:
//!
//! 1. **Batching** — phase `j` consumes `Batch(j)`: the unscheduled survivors
//!    of the previous batch plus the tasks that arrived during phase `j−1`,
//!    minus tasks whose deadlines can no longer be met.
//! 2. **Self-adjusting scheduling time** (Section 4.2) — the phase gets the
//!    quantum `Q_s(j) = max(Min_Slack, Min_Load)`: generous when slacks are
//!    large or workers are loaded (more optimization time), tight when
//!    deadlines loom or workers sit idle ([`QuantumPolicy`]).
//! 3. **Search** (Section 4.1) — an assignment-oriented depth-first search
//!    with a feasibility test that charges the remaining scheduling time
//!    `RQ_s(j)` against every candidate, so that — per the paper's theorem —
//!    *every task the scheduler commits meets its deadline at execution time*
//!    (re-proved here as a property test).
//! 4. **Load balancing** (Section 4.4) — successors are ordered by the
//!    resulting total execution time `CE = max_k ce_k`, trading off balance
//!    against the non-uniform communication costs `c_lk`.
//!
//! The crate also implements the paper's comparison baseline **D-COLS**
//! (sequence-oriented search, same quantum formula), the classical
//! **myopic** scheduler of the paper's references \[3\]/\[6\], and two
//! sanity baselines (greedy EDF, random feasible assignment), all behind
//! one [`Algorithm`] enum, plus the [`Driver`] that binds scheduler, batch
//! manager and the simulated [`Machine`](paragon_platform::Machine) into an
//! end-to-end run. Tasks may carry shared/exclusive resource constraints
//! ([`rt_task::ResourceRequest`]); resource waits enter both the
//! feasibility test and execution, so the deadline guarantee survives.
//!
//! # Example
//!
//! ```
//! use paragon_des::{Duration, Time};
//! use rt_task::{AffinitySet, CommModel, Task, TaskId};
//! use rtsads::{Algorithm, Driver, DriverConfig, QuantumPolicy};
//!
//! // Ten independent tasks, all local everywhere, arriving at t=0.
//! let tasks: Vec<Task> = (0..10)
//!     .map(|i| {
//!         Task::builder(TaskId::new(i))
//!             .processing_time(Duration::from_millis(2))
//!             .deadline(Time::from_millis(40))
//!             .affinity(AffinitySet::all(4))
//!             .build()
//!     })
//!     .collect();
//! let config = DriverConfig::new(4, Algorithm::rt_sads())
//!     .comm(CommModel::constant(Duration::from_millis(1)));
//! let report = Driver::new(config).run(tasks);
//! assert_eq!(report.total_tasks, 10);
//! assert!(report.hit_ratio() > 0.9);
//! assert_eq!(report.executed_misses, 0); // the paper's theorem
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod driver;
pub mod faults;
mod myopic;
mod quantum;
mod report;

pub use algorithm::{Algorithm, PhaseScratch};
pub use driver::{Driver, DriverConfig};
pub use faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, InFlightPolicy};
pub use quantum::QuantumPolicy;
pub use report::{PhaseRecord, RunReport};
