//! Allocation of scheduling time — the paper's Figure 3 criterion.

use paragon_des::{Duration, Time};
use paragon_platform::Machine;
use rt_task::Batch;
use serde::{Deserialize, Serialize};

/// How much scheduling time a phase is allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantumPolicy {
    /// The paper's self-adjusting criterion:
    /// `Q_s(j) = max(Min_Slack, Min_Load)` where `Min_Slack` is the minimum
    /// slack over the batch and `Min_Load` the minimum backlog over the
    /// working processors. Optionally clamped from above (the paper leaves
    /// the quantum unclamped; a clamp is useful in sensitivity studies).
    SelfAdjusting {
        /// Optional upper clamp on the quantum.
        max: Option<Duration>,
    },
    /// A fixed quantum per phase — the ablation baseline showing why
    /// self-adjustment matters.
    Fixed(Duration),
}

impl QuantumPolicy {
    /// The paper's policy, unclamped.
    #[must_use]
    pub const fn self_adjusting() -> Self {
        QuantumPolicy::SelfAdjusting { max: None }
    }

    /// Computes `Q_s(j)` for the given batch and machine state at phase
    /// start `now`.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty — the driver never opens a phase on an
    /// empty batch.
    #[must_use]
    pub fn allocate(&self, batch: &Batch, now: Time, machine: &Machine) -> Duration {
        match self {
            QuantumPolicy::SelfAdjusting { max } => {
                let min_slack = batch
                    .min_slack(now)
                    .expect("quantum allocation on an empty batch");
                let min_load = machine.min_load(now);
                let q = min_slack.max(min_load);
                match max {
                    Some(cap) => q.min(*cap),
                    None => q,
                }
            }
            QuantumPolicy::Fixed(q) => *q,
        }
    }
}

impl Default for QuantumPolicy {
    fn default() -> Self {
        QuantumPolicy::self_adjusting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_platform::{Dispatch, MachineConfig};
    use rt_task::{CommModel, ProcessorId, Task, TaskId};

    fn machine(workers: usize) -> Machine {
        Machine::new(MachineConfig {
            workers,
            comm: CommModel::free(),
        })
    }

    fn batch_with(slacks_ms: &[u64], now: Time) -> Batch {
        let mut b = Batch::new(0);
        for (i, &s) in slacks_ms.iter().enumerate() {
            // slack = d - now - p; fix p = 1ms, d = now + p + slack
            b.push(
                Task::builder(TaskId::new(i as u64))
                    .processing_time(Duration::from_millis(1))
                    .arrival(now)
                    .deadline(now + Duration::from_millis(1) + Duration::from_millis(s))
                    .build(),
            );
        }
        b
    }

    #[test]
    fn idle_machine_uses_min_slack() {
        let m = machine(3);
        let now = Time::from_millis(5);
        let b = batch_with(&[10, 4, 30], now);
        let q = QuantumPolicy::self_adjusting().allocate(&b, now, &m);
        assert_eq!(q, Duration::from_millis(4));
    }

    #[test]
    fn loaded_machine_extends_quantum_to_min_load() {
        let mut m = machine(2);
        // both workers busy for 50ms
        for p in 0..2 {
            m.deliver(
                vec![Dispatch {
                    task: Task::builder(TaskId::new(90 + p as u64))
                        .processing_time(Duration::from_millis(50))
                        .deadline(Time::from_millis(1_000))
                        .build(),
                    processor: ProcessorId::new(p),
                }],
                Time::ZERO,
            );
        }
        let now = Time::ZERO;
        let b = batch_with(&[4], now);
        // Min_Slack = 4ms but Min_Load = 50ms: scheduling can afford 50ms
        let q = QuantumPolicy::self_adjusting().allocate(&b, now, &m);
        assert_eq!(q, Duration::from_millis(50));
    }

    #[test]
    fn one_idle_worker_caps_min_load() {
        let mut m = machine(2);
        m.deliver(
            vec![Dispatch {
                task: Task::builder(TaskId::new(99))
                    .processing_time(Duration::from_millis(50))
                    .deadline(Time::from_millis(1_000))
                    .build(),
                processor: ProcessorId::new(0),
            }],
            Time::ZERO,
        );
        let b = batch_with(&[4], Time::ZERO);
        // P1 idle -> Min_Load = 0 -> quantum falls back to Min_Slack
        let q = QuantumPolicy::self_adjusting().allocate(&b, Time::ZERO, &m);
        assert_eq!(q, Duration::from_millis(4));
    }

    #[test]
    fn clamp_applies() {
        let m = machine(1);
        let b = batch_with(&[1_000], Time::ZERO);
        let q = QuantumPolicy::SelfAdjusting {
            max: Some(Duration::from_millis(20)),
        }
        .allocate(&b, Time::ZERO, &m);
        assert_eq!(q, Duration::from_millis(20));
    }

    #[test]
    fn fixed_policy_ignores_state() {
        let m = machine(1);
        let b = batch_with(&[1], Time::ZERO);
        let q = QuantumPolicy::Fixed(Duration::from_millis(7)).allocate(&b, Time::ZERO, &m);
        assert_eq!(q, Duration::from_millis(7));
    }

    #[test]
    fn zero_slack_idle_machine_gives_zero_quantum() {
        let m = machine(1);
        let b = batch_with(&[0], Time::ZERO);
        let q = QuantumPolicy::self_adjusting().allocate(&b, Time::ZERO, &m);
        assert_eq!(q, Duration::ZERO, "the driver's floor handles this case");
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let m = machine(1);
        let b = Batch::new(0);
        let _ = QuantumPolicy::self_adjusting().allocate(&b, Time::ZERO, &m);
    }
}
