//! Deterministic, seeded fault injection.
//!
//! Real Paragon-class machines lose nodes and delay or drop messages; the
//! paper's feasibility test `t_c + RQ_s(j) + se_lk ≤ d_l` only earns its
//! keep if the schedule degrades gracefully when the platform misbehaves.
//! This module describes *what goes wrong and when*:
//!
//! * [`FaultConfig`] — a generative description (per-processor failure
//!   rate, mean time to repair, communication-spike parameters) carried by
//!   the driver configuration and serializable alongside it.
//! * [`FaultPlan`] — the concrete, sorted event list one run executes,
//!   sampled reproducibly from `(config, workers, seed)`. The same seed
//!   always yields the same plan; a disabled config yields an empty plan
//!   and the run is bit-identical to a fault-free one.
//!
//! The fault streams are derived from the run seed through dedicated
//! [`SimRng::child`] indices, so sampling a plan never perturbs the
//! scheduling algorithm's own random stream — that is what makes the
//! zero-event differential test exact rather than merely statistical.

use paragon_des::{Duration, SimRng, Time};
use rt_task::ProcessorId;
use serde::{Deserialize, Serialize};

/// Child index (off the run seed) reserved for fault sampling. Scenario
/// generation uses children `0..4` of the *scenario* seed and the driver
/// seeds the algorithm RNG directly, so any constant works; this one is
/// merely recognizable.
const FAULT_STREAM: u64 = 0xFA17;

/// What happens to the task executing on a processor at the instant it
/// fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InFlightPolicy {
    /// The task is killed mid-execution and cannot be recovered: its
    /// completion record is retracted and it counts as `lost_in_flight`.
    #[default]
    Lost,
    /// The task's execution survives the failure (e.g. the result had
    /// already been shipped); only queued work is orphaned.
    Completes,
}

/// Generative description of platform misbehavior for one run.
///
/// All rates are *per second of virtual time*. The default is fully
/// disabled; [`FaultConfig::is_disabled`] runs sample an empty
/// [`FaultPlan`] and behave bit-identically to fault-free runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Expected failures per processor per second of virtual time
    /// (exponential inter-failure gaps). Zero disables processor faults.
    pub failure_rate: f64,
    /// Mean time to repair: failed processors come back after an
    /// exponentially distributed repair time with this mean. `None` makes
    /// every failure fail-stop (the processor never returns).
    pub mttr: Option<Duration>,
    /// What happens to the task executing at the failure instant.
    pub in_flight: InFlightPolicy,
    /// Expected communication-delay spike windows per second of virtual
    /// time. Zero disables spikes.
    pub spike_rate: f64,
    /// Mean length of one spike window (exponentially distributed).
    pub spike_mean_len: Duration,
    /// Extra delivery delay every schedule message pays while a spike
    /// window is open.
    pub spike_delay: Duration,
    /// Probability that an individual dispatch message is lost while a
    /// spike window is open; lost dispatches are orphaned back to the host
    /// and re-batched.
    pub spike_loss: f64,
    /// Sampling horizon: no fault event is generated at or beyond this
    /// instant of virtual time.
    pub horizon: Duration,
    /// Expected failures per *node* per second of virtual time under a
    /// hierarchical topology: a node failure downs every processor of the
    /// node at the same instant (the shard fault domain). Zero disables
    /// node faults; without a topology the stream samples nothing. Absent
    /// in pre-topology configs, so it deserializes to the disabled default.
    #[serde(default)]
    pub node_failure_rate: f64,
    /// Mean time to repair a failed node (exponentially distributed).
    /// `None` makes node failures fail-stop.
    #[serde(default)]
    pub node_mttr: Option<Duration>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            failure_rate: 0.0,
            mttr: None,
            in_flight: InFlightPolicy::Lost,
            spike_rate: 0.0,
            spike_mean_len: Duration::ZERO,
            spike_delay: Duration::ZERO,
            spike_loss: 0.0,
            horizon: Duration::from_secs(60),
            node_failure_rate: 0.0,
            node_mttr: None,
        }
    }
}

impl FaultConfig {
    /// The disabled configuration: no events are ever sampled.
    #[must_use]
    pub fn disabled() -> Self {
        FaultConfig::default()
    }

    /// Fail-stop processor failures at `rate` failures/processor/second.
    #[must_use]
    pub fn fail_stop(rate: f64) -> Self {
        FaultConfig {
            failure_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// Fail-recover processor failures: `rate` failures/processor/second,
    /// exponentially distributed repairs with mean `mttr`.
    #[must_use]
    pub fn fail_recover(rate: f64, mttr: Duration) -> Self {
        FaultConfig {
            failure_rate: rate,
            mttr: Some(mttr),
            ..FaultConfig::default()
        }
    }

    /// Sets the in-flight policy.
    #[must_use]
    pub fn in_flight(mut self, policy: InFlightPolicy) -> Self {
        self.in_flight = policy;
        self
    }

    /// Adds communication spikes: `rate` windows/second of mean length
    /// `mean_len`, each delaying deliveries by `delay` and losing
    /// individual dispatch messages with probability `loss`.
    #[must_use]
    pub fn spikes(mut self, rate: f64, mean_len: Duration, delay: Duration, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss probability {loss}");
        self.spike_rate = rate;
        self.spike_mean_len = mean_len;
        self.spike_delay = delay;
        self.spike_loss = loss;
        self
    }

    /// Sets the sampling horizon.
    #[must_use]
    pub fn horizon(mut self, horizon: Duration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Adds node-level failures (shard fault domains): `rate` failures per
    /// node per second, repaired after an exponential time with mean `mttr`
    /// (`None` = fail-stop). Takes effect only on runs with a hierarchical
    /// topology ([`FaultConfig::sample_plan_topo`]).
    #[must_use]
    pub fn node_faults(mut self, rate: f64, mttr: Option<Duration>) -> Self {
        self.node_failure_rate = rate;
        self.node_mttr = mttr;
        self
    }

    /// Whether this configuration can never produce an event.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.failure_rate <= 0.0 && self.spike_rate <= 0.0 && self.node_failure_rate <= 0.0
    }

    /// Samples the concrete plan a run with `workers` processors and the
    /// given seed executes, on a flat (topology-less) platform. Node faults
    /// need shard boundaries, so this is [`FaultConfig::sample_plan_topo`]
    /// with no topology. Deterministic in `(self, workers, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if a rate is negative or not finite.
    #[must_use]
    pub fn sample_plan(&self, workers: usize, seed: u64) -> FaultPlan {
        self.sample_plan_topo(workers, None, seed)
    }

    /// Samples the concrete plan for a run on a (possibly hierarchical)
    /// platform. Per-processor failures sample exactly as on the flat
    /// machine; with a topology and `node_failure_rate > 0`, each node also
    /// gets an independent failure stream whose Down/Up events expand to one
    /// event per member processor at the same instant — a node crash is the
    /// shard fault domain. Deterministic in `(self, workers, topo, seed)`,
    /// and the per-processor streams are unchanged by adding a topology.
    ///
    /// # Panics
    ///
    /// Panics if a rate is negative or not finite, or if the topology's
    /// worker count disagrees with `workers`.
    #[must_use]
    pub fn sample_plan_topo(
        &self,
        workers: usize,
        topo: Option<&rt_task::TopologySpec>,
        seed: u64,
    ) -> FaultPlan {
        assert!(
            self.failure_rate.is_finite() && self.failure_rate >= 0.0,
            "failure rate {}",
            self.failure_rate
        );
        assert!(
            self.spike_rate.is_finite() && self.spike_rate >= 0.0,
            "spike rate {}",
            self.spike_rate
        );
        assert!(
            self.node_failure_rate.is_finite() && self.node_failure_rate >= 0.0,
            "node failure rate {}",
            self.node_failure_rate
        );
        if let Some(topo) = topo {
            assert_eq!(
                topo.workers(),
                workers,
                "topology worker count must match the machine"
            );
        }
        let mut plan = FaultPlan {
            events: Vec::new(),
            spikes: Vec::new(),
            in_flight: self.in_flight,
            spike_delay: self.spike_delay,
            spike_loss: self.spike_loss,
        };
        if self.is_disabled() {
            return plan;
        }
        let root = SimRng::seed_from(seed).child(FAULT_STREAM);
        let horizon = Time::ZERO + self.horizon;
        if self.failure_rate > 0.0 {
            let mean_up_us = 1e6 / self.failure_rate;
            for k in 0..workers {
                let processor = ProcessorId::new(k);
                let mut rng = root.child(1 + k as u64);
                let mut t = Time::ZERO;
                loop {
                    let gap = rng.exponential(mean_up_us).max(1.0);
                    t += Duration::from_micros(gap as u64);
                    if t >= horizon {
                        break;
                    }
                    match self.mttr {
                        None => {
                            plan.events.push(FaultEvent {
                                at: t,
                                processor,
                                kind: FaultKind::Down { fail_stop: true },
                            });
                            break;
                        }
                        Some(mttr) => {
                            let repair = rng.exponential(mttr.as_micros() as f64).max(1.0);
                            let up = t + Duration::from_micros(repair as u64);
                            plan.events.push(FaultEvent {
                                at: t,
                                processor,
                                kind: FaultKind::Down { fail_stop: false },
                            });
                            plan.events.push(FaultEvent {
                                at: up,
                                processor,
                                kind: FaultKind::Up,
                            });
                            t = up;
                        }
                    }
                }
            }
        }
        if self.node_failure_rate > 0.0 {
            if let Some(topo) = topo {
                let mean_up_us = 1e6 / self.node_failure_rate;
                for node in 0..topo.nodes() {
                    // Streams `0..=workers + 1` off the fault stream are taken
                    // (spikes, per-processor, loss); node streams start after.
                    let mut rng = root.child(workers as u64 + 2 + node as u64);
                    let (lo, hi) = topo.node_range(node);
                    let mut t = Time::ZERO;
                    loop {
                        let gap = rng.exponential(mean_up_us).max(1.0);
                        t += Duration::from_micros(gap as u64);
                        if t >= horizon {
                            break;
                        }
                        match self.node_mttr {
                            None => {
                                for k in lo..hi {
                                    plan.events.push(FaultEvent {
                                        at: t,
                                        processor: ProcessorId::new(k),
                                        kind: FaultKind::Down { fail_stop: true },
                                    });
                                }
                                break;
                            }
                            Some(mttr) => {
                                let repair = rng.exponential(mttr.as_micros() as f64).max(1.0);
                                let up = t + Duration::from_micros(repair as u64);
                                for k in lo..hi {
                                    plan.events.push(FaultEvent {
                                        at: t,
                                        processor: ProcessorId::new(k),
                                        kind: FaultKind::Down { fail_stop: false },
                                    });
                                    plan.events.push(FaultEvent {
                                        at: up,
                                        processor: ProcessorId::new(k),
                                        kind: FaultKind::Up,
                                    });
                                }
                                t = up;
                            }
                        }
                    }
                }
            }
        }
        if self.spike_rate > 0.0 {
            assert!(
                !self.spike_mean_len.is_zero(),
                "spikes need a non-zero mean length"
            );
            let mean_gap_us = 1e6 / self.spike_rate;
            let mut rng = root.child(0);
            let mut t = Time::ZERO;
            loop {
                let gap = rng.exponential(mean_gap_us).max(1.0);
                let from = t + Duration::from_micros(gap as u64);
                if from >= horizon {
                    break;
                }
                let len = rng
                    .exponential(self.spike_mean_len.as_micros() as f64)
                    .max(1.0);
                let until = from + Duration::from_micros(len as u64);
                plan.spikes.push(SpikeWindow { from, until });
                t = until;
            }
        }
        plan.events
            .sort_by_key(|e| (e.at, e.processor.index(), matches!(e.kind, FaultKind::Up)));
        plan
    }
}

/// The RNG stream used for per-dispatch loss draws during a run. Kept
/// separate from both the algorithm RNG and the plan-sampling children
/// (indices `0..=workers` for spikes and per-processor streams, and
/// `workers + 2 + node` for per-node streams, off the fault stream).
#[must_use]
pub fn loss_stream(workers: usize, seed: u64) -> SimRng {
    SimRng::seed_from(seed)
        .child(FAULT_STREAM)
        .child(workers as u64 + 1)
}

/// What kind of processor event occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The processor fails at the event instant.
    Down {
        /// `true` if no matching [`FaultKind::Up`] will follow.
        fail_stop: bool,
    },
    /// The processor comes back up at the event instant.
    Up,
}

/// One processor fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the event takes effect.
    pub at: Time,
    /// The affected processor.
    pub processor: ProcessorId,
    /// Failure or recovery.
    pub kind: FaultKind,
}

/// A half-open window `[from, until)` of degraded communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeWindow {
    /// First degraded instant.
    pub from: Time,
    /// First instant past the window.
    pub until: Time,
}

impl SpikeWindow {
    /// Whether `t` falls inside the window.
    #[must_use]
    pub fn contains(&self, t: Time) -> bool {
        self.from <= t && t < self.until
    }
}

/// The concrete fault schedule one run executes: processor events sorted by
/// `(instant, processor, up-after-down)` plus non-overlapping communication
/// spike windows sorted by start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Processor failures and recoveries, sorted.
    pub events: Vec<FaultEvent>,
    /// Communication spike windows, sorted and disjoint.
    pub spikes: Vec<SpikeWindow>,
    /// What happens to in-flight tasks at a failure.
    pub in_flight: InFlightPolicy,
    /// Extra delivery delay inside a spike window.
    pub spike_delay: Duration,
    /// Per-dispatch message-loss probability inside a spike window.
    pub spike_loss: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::empty()
    }
}

impl FaultPlan {
    /// A plan with no events and no spikes: runs under it are bit-identical
    /// to fault-free runs.
    #[must_use]
    pub fn empty() -> Self {
        FaultPlan {
            events: Vec::new(),
            spikes: Vec::new(),
            in_flight: InFlightPolicy::Lost,
            spike_delay: Duration::ZERO,
            spike_loss: 0.0,
        }
    }

    /// Whether the plan contains neither events nor spikes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.spikes.is_empty()
    }

    /// Whether `t` lies inside a communication spike window.
    #[must_use]
    pub fn in_spike(&self, t: Time) -> bool {
        // Plans hold few windows; a linear scan beats bookkeeping.
        self.spikes.iter().any(|w| w.contains(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_samples_an_empty_plan() {
        let plan = FaultConfig::disabled().sample_plan(8, 1234);
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::empty());
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let cfg = FaultConfig::fail_recover(5.0, Duration::from_millis(200)).spikes(
            2.0,
            Duration::from_millis(50),
            Duration::from_millis(3),
            0.1,
        );
        let a = cfg.sample_plan(10, 77);
        let b = cfg.sample_plan(10, 77);
        assert_eq!(a, b);
        let c = cfg.sample_plan(10, 78);
        assert_ne!(a, c, "different seeds give different plans");
        assert!(!a.is_empty());
    }

    #[test]
    fn events_are_sorted_and_alternate_per_processor() {
        let cfg = FaultConfig::fail_recover(20.0, Duration::from_millis(100));
        let plan = cfg.sample_plan(4, 9);
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
        for k in 0..4 {
            let seq: Vec<&FaultEvent> = plan
                .events
                .iter()
                .filter(|e| e.processor == ProcessorId::new(k))
                .collect();
            // strictly alternating Down/Up starting with Down
            for (i, e) in seq.iter().enumerate() {
                let expect_down = i % 2 == 0;
                assert_eq!(
                    matches!(e.kind, FaultKind::Down { .. }),
                    expect_down,
                    "P{k} event {i} out of order"
                );
            }
        }
    }

    #[test]
    fn fail_stop_yields_at_most_one_failure_per_processor() {
        let plan = FaultConfig::fail_stop(50.0).sample_plan(6, 3);
        for k in 0..6 {
            let downs = plan
                .events
                .iter()
                .filter(|e| e.processor == ProcessorId::new(k))
                .count();
            assert!(downs <= 1, "P{k} has {downs} events");
        }
        assert!(plan
            .events
            .iter()
            .all(|e| matches!(e.kind, FaultKind::Down { fail_stop: true })));
    }

    #[test]
    fn horizon_bounds_every_event_and_spike() {
        let cfg = FaultConfig::fail_recover(100.0, Duration::from_millis(10))
            .spikes(
                50.0,
                Duration::from_millis(20),
                Duration::from_millis(1),
                0.5,
            )
            .horizon(Duration::from_secs(1));
        let plan = cfg.sample_plan(3, 5);
        let horizon = Time::ZERO + Duration::from_secs(1);
        // Down events respect the horizon; a matching Up may land past it
        // (repairs are not censored), and spikes *start* inside it.
        for e in &plan.events {
            if matches!(e.kind, FaultKind::Down { .. }) {
                assert!(e.at < horizon);
            }
        }
        assert!(plan.spikes.iter().all(|w| w.from < horizon));
        assert!(plan.spikes.windows(2).all(|w| w[0].until <= w[1].from));
    }

    #[test]
    fn spike_windows_answer_membership() {
        let w = SpikeWindow {
            from: Time::from_millis(10),
            until: Time::from_millis(20),
        };
        assert!(!w.contains(Time::from_millis(9)));
        assert!(w.contains(Time::from_millis(10)));
        assert!(w.contains(Time::from_millis(19)));
        assert!(!w.contains(Time::from_millis(20)));
        let plan = FaultPlan {
            spikes: vec![w],
            ..FaultPlan::empty()
        };
        assert!(plan.in_spike(Time::from_millis(15)));
        assert!(!plan.in_spike(Time::from_millis(25)));
    }

    #[test]
    fn loss_stream_is_decorrelated_from_plan_sampling() {
        let mut a = loss_stream(10, 42);
        let mut b = loss_stream(10, 42);
        assert_eq!(a.uniform_u64(0..u64::MAX), b.uniform_u64(0..u64::MAX));
        let mut c = loss_stream(10, 43);
        let mut a2 = loss_stream(10, 42);
        assert_ne!(a2.uniform_u64(0..u64::MAX), c.uniform_u64(0..u64::MAX));
    }

    #[test]
    fn config_serde_round_trips() {
        let cfg = FaultConfig::fail_recover(1.5, Duration::from_millis(250))
            .in_flight(InFlightPolicy::Completes)
            .spikes(
                0.5,
                Duration::from_millis(30),
                Duration::from_millis(2),
                0.05,
            )
            .node_faults(0.2, Some(Duration::from_millis(500)));
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn pre_topology_configs_deserialize_with_node_faults_disabled() {
        // A config serialized before the node-fault fields existed must
        // still load, with node faults defaulting to off. The node fields
        // are declared last, so stripping them from the tail of the JSON
        // reconstructs the legacy wire format exactly.
        let json = serde_json::to_string(&FaultConfig::fail_stop(1.0)).unwrap();
        let cut = json.find(",\"node_failure_rate\"").unwrap();
        let legacy = format!("{}}}", &json[..cut]);
        let back: FaultConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.node_failure_rate, 0.0);
        assert_eq!(back.node_mttr, None);
        assert_eq!(back, FaultConfig::fail_stop(1.0));
    }

    #[test]
    fn node_failures_expand_to_every_member_processor() {
        let topo = rt_task::TopologySpec::new(8, 4, 2, 0, 100, 200);
        let cfg = FaultConfig {
            node_failure_rate: 5.0,
            node_mttr: Some(Duration::from_millis(100)),
            horizon: Duration::from_secs(10),
            ..FaultConfig::default()
        };
        let plan = cfg.sample_plan_topo(8, Some(&topo), 11);
        assert!(!plan.events.is_empty());
        // Every event instant must cover an entire node: group by (at, kind)
        // and check each group is exactly one node's processor range.
        let mut groups: std::collections::BTreeMap<(Time, bool), Vec<usize>> =
            std::collections::BTreeMap::new();
        for e in &plan.events {
            groups
                .entry((e.at, matches!(e.kind, FaultKind::Up)))
                .or_default()
                .push(e.processor.index());
        }
        for ((_, _), mut procs) in groups {
            procs.sort_unstable();
            let node = topo.node_of(rt_task::ProcessorId::new(procs[0]));
            let (lo, hi) = topo.node_range(node);
            assert_eq!(procs, (lo..hi).collect::<Vec<_>>());
        }
    }

    #[test]
    fn node_fail_stop_downs_each_node_at_most_once() {
        let topo = rt_task::TopologySpec::new(6, 3, 1, 0, 100, 100);
        let cfg = FaultConfig {
            node_failure_rate: 50.0,
            horizon: Duration::from_secs(30),
            ..FaultConfig::default()
        };
        let plan = cfg.sample_plan_topo(6, Some(&topo), 3);
        let mut downs_per_proc = [0usize; 6];
        for e in &plan.events {
            assert_eq!(e.kind, FaultKind::Down { fail_stop: true });
            downs_per_proc[e.processor.index()] += 1;
        }
        assert!(downs_per_proc.iter().all(|&d| d <= 1));
        assert!(downs_per_proc.contains(&1));
    }

    #[test]
    fn adding_node_faults_leaves_processor_streams_unchanged() {
        let topo = rt_task::TopologySpec::new(8, 4, 2, 0, 100, 200);
        let base = FaultConfig::fail_recover(2.0, Duration::from_millis(50));
        let flat = base.sample_plan(8, 77);
        let with_nodes = base
            .node_faults(1.0, None)
            .sample_plan_topo(8, Some(&topo), 77);
        // Every flat per-processor event reappears verbatim in the sharded
        // plan (node events are interleaved but drawn from disjoint streams).
        for e in &flat.events {
            assert!(with_nodes.events.contains(e));
        }
        assert!(with_nodes.events.len() > flat.events.len());
    }
}
