//! The end-to-end scheduler/executor loop: batches, phases, dispatch.
//!
//! The driver realizes the concurrency structure of Section 4: while the
//! working processors execute the previously delivered schedule `S_j`, the
//! host processor runs scheduling phase `j+1` over `Batch(j+1)`. In virtual
//! time this becomes a sequential loop — compute phase `j` at `t_s`, charge
//! its scheduling time, deliver `S_j` at `t_e = t_s + consumed`, repeat —
//! which is exact because worker queues are FIFO, non-preemptive and
//! append-only.

use std::collections::HashSet;

use paragon_des::trace::{TraceEvent, TraceSink, Tracer};
use paragon_des::{Duration, SimRng, Time};
use paragon_platform::{Dispatch, HostParams, Machine, MachineConfig, SchedulingMeter};
use rt_task::{Batch, CommModel, Task, TaskId};

use sched_search::Pruning;

use crate::algorithm::Algorithm;
use crate::quantum::QuantumPolicy;
use crate::report::{PhaseRecord, RunReport};

/// Configuration of one simulation run.
///
/// Construct with [`DriverConfig::new`] and chain the setters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    workers: usize,
    comm: CommModel,
    host: HostParams,
    quantum: QuantumPolicy,
    algorithm: Algorithm,
    vertex_cap: Option<u64>,
    pruning: Pruning,
    seed: u64,
}

impl DriverConfig {
    /// A configuration with `workers` working processors running
    /// `algorithm`, free communication, default host cost, the paper's
    /// self-adjusting quantum and a defensive vertex cap.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn new(workers: usize, algorithm: Algorithm) -> Self {
        assert!(workers > 0, "at least one working processor required");
        DriverConfig {
            workers,
            comm: CommModel::free(),
            host: HostParams::default(),
            quantum: QuantumPolicy::self_adjusting(),
            algorithm,
            vertex_cap: Some(2_000_000),
            pruning: Pruning::default(),
            seed: 0,
        }
    }

    /// Sets the interconnect cost model.
    #[must_use]
    pub fn comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Sets the host (scheduling) cost parameters.
    #[must_use]
    pub fn host(mut self, host: HostParams) -> Self {
        self.host = host;
        self
    }

    /// Sets the scheduling-time allocation policy.
    #[must_use]
    pub fn quantum(mut self, quantum: QuantumPolicy) -> Self {
        self.quantum = quantum;
        self
    }

    /// Sets (or disables) the per-phase vertex cap that guards unbounded
    /// searches when the host's vertex cost is zero.
    #[must_use]
    pub fn vertex_cap(mut self, cap: Option<u64>) -> Self {
        self.vertex_cap = cap;
        self
    }

    /// Applies Section-3 pruning bounds (depth bound, backtrack limit) to
    /// the search-based algorithms.
    #[must_use]
    pub fn pruning(mut self, pruning: Pruning) -> Self {
        self.pruning = pruning;
        self
    }

    /// Sets the seed for algorithms that randomize (and only those).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured number of working processors.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured algorithm.
    #[must_use]
    pub fn algorithm(&self) -> &Algorithm {
        &self.algorithm
    }
}

/// Runs a task set to completion under one configuration.
#[derive(Debug, Clone)]
pub struct Driver {
    config: DriverConfig,
}

impl Driver {
    /// Creates a driver.
    #[must_use]
    pub fn new(config: DriverConfig) -> Self {
        Driver { config }
    }

    /// Simulates the full lifetime of `tasks`: every task is eventually
    /// either executed (and, by the paper's theorem, meets its deadline) or
    /// dropped once its deadline can no longer be met.
    ///
    /// Deterministic: identical inputs and seed produce identical reports.
    #[must_use]
    pub fn run(&self, tasks: Vec<Task>) -> RunReport {
        self.run_traced(tasks, &mut Tracer::disabled())
    }

    /// Like [`Driver::run`], but emits [`TraceEvent`]s to `tracer` as the
    /// simulation progresses: phase boundaries, drops, and task
    /// start/completion (completion events are emitted at delivery time,
    /// timestamped with their — possibly later — execution instants).
    #[must_use]
    pub fn run_traced(&self, mut tasks: Vec<Task>, tracer: &mut impl TraceSink) -> RunReport {
        let cfg = &self.config;
        let mut machine = Machine::new(MachineConfig {
            workers: cfg.workers,
            comm: cfg.comm,
        });
        let mut rng = SimRng::seed_from(cfg.seed);
        tasks.sort_by_key(|t| (t.arrival(), t.id()));
        let total_tasks = tasks.len();

        // The quantum floor guarantees progress: at least one full expansion
        // (workers + 1 vertex evaluations) fits in every phase, and time
        // advances by at least `min_step` per phase.
        let min_quantum = cfg.host.vertex_eval_cost * (cfg.workers as u64 + 1);
        let min_step = Duration::from_micros(1).max(cfg.host.vertex_eval_cost);

        let mut cursor = 0;
        let mut batch = Batch::new(0);
        let mut now = Time::ZERO;
        let mut phases: Vec<PhaseRecord> = Vec::new();
        let mut dropped_total = 0usize;

        loop {
            // Ingest everything that has arrived by `now`.
            while cursor < tasks.len() && tasks[cursor].arrival() <= now {
                batch.push(tasks[cursor].clone());
                cursor += 1;
            }
            if batch.is_empty() {
                if cursor >= tasks.len() {
                    break;
                }
                // Idle until the next arrival.
                now = tasks[cursor].arrival();
                continue;
            }

            // Phase j starts at t_s = now.
            let phase_no = batch.phase();
            let started = now;
            let dropped = batch.drop_expired(started);
            dropped_total += dropped.len();
            if tracer.enabled() {
                for t in &dropped.dropped {
                    tracer.emit(
                        started,
                        TraceEvent::TaskDropped {
                            task: t.id().as_u64(),
                        },
                    );
                }
            }
            if batch.is_empty() {
                // Everything expired; loop back (arrivals or exit).
                continue;
            }

            let quantum = cfg
                .quantum
                .allocate(&batch, started, &machine)
                .max(min_quantum);
            if tracer.enabled() {
                tracer.emit(
                    started,
                    TraceEvent::PhaseStarted {
                        phase: phase_no,
                        batch_len: batch.len(),
                        quantum,
                    },
                );
            }
            let mut meter = SchedulingMeter::new(cfg.host, quantum);
            let exec_bound = started + quantum;
            let initial_finish: Vec<Time> = machine
                .iter_workers()
                .map(|w| w.busy_until().max(exec_bound))
                .collect();

            let outcome = cfg.algorithm.schedule_phase(
                batch.tasks(),
                &cfg.comm,
                &initial_finish,
                started,
                cfg.vertex_cap,
                cfg.pruning,
                &machine.resource_eats().clone(),
                &mut meter,
                &mut rng,
            );

            let consumed = meter.consumed().max(min_step);
            let ended = started + consumed;

            let dispatches: Vec<Dispatch> = outcome
                .assignments
                .iter()
                .map(|a| Dispatch {
                    task: batch.tasks()[a.task].clone(),
                    processor: a.processor,
                })
                .collect();
            let scheduled_ids: HashSet<TaskId> = dispatches.iter().map(|d| d.task.id()).collect();
            let scheduled = dispatches.len();
            let processing_times: Vec<Duration> = dispatches
                .iter()
                .map(|d| d.task.processing_time())
                .collect();
            let records = machine.deliver(dispatches, ended);
            batch.remove_scheduled(&scheduled_ids);
            // Tasks whose deadline lapsed *while* the phase was computing:
            // they stay in the batch (and are dropped — and counted — at the
            // next phase start), but the telemetry layer wants to see the
            // expiry at the instant it became unavoidable.
            let expired_mid_phase = batch.iter().filter(|t| t.is_expired(ended)).count();
            if tracer.enabled() {
                tracer.emit(
                    ended,
                    TraceEvent::PhaseEnded {
                        phase: phase_no,
                        scheduled,
                        consumed,
                        vertices: outcome.stats.vertices_generated,
                        backtracks: outcome.stats.backtracks,
                        undos: outcome.stats.undos,
                        replay_avoided: outcome.stats.replay_avoided,
                    },
                );
                for t in batch.iter().filter(|t| t.is_expired(ended)) {
                    tracer.emit(
                        ended,
                        TraceEvent::TaskExpiredMidPhase {
                            task: t.id().as_u64(),
                            phase: phase_no,
                        },
                    );
                }
                for (r, p) in records.iter().zip(&processing_times) {
                    let slack_us = r.deadline.as_micros() as i64 - r.start.as_micros() as i64;
                    tracer.emit(
                        ended,
                        TraceEvent::TaskDispatched {
                            task: r.task.as_u64(),
                            processor: r.processor.index(),
                            slack_us,
                        },
                    );
                    let comm_delay = r.service.saturating_sub(*p);
                    if !comm_delay.is_zero() {
                        tracer.emit(
                            r.start,
                            TraceEvent::CommDelay {
                                task: r.task.as_u64(),
                                processor: r.processor.index(),
                                delay_us: comm_delay.as_micros(),
                            },
                        );
                    }
                    tracer.emit(
                        r.start,
                        TraceEvent::TaskStarted {
                            task: r.task.as_u64(),
                            processor: r.processor.index(),
                        },
                    );
                    let lateness_us =
                        r.completion.as_micros() as i64 - r.deadline.as_micros() as i64;
                    tracer.emit(
                        r.completion,
                        TraceEvent::TaskCompleted {
                            task: r.task.as_u64(),
                            processor: r.processor.index(),
                            met_deadline: r.met_deadline,
                            lateness_us,
                        },
                    );
                }
            }

            phases.push(PhaseRecord {
                phase: phase_no,
                started,
                batch_len: batch.len() + scheduled,
                dropped: dropped.len(),
                expired_mid_phase,
                quantum,
                consumed,
                vertices: outcome.stats.vertices_generated,
                backtracks: outcome.stats.backtracks,
                undos: outcome.stats.undos,
                replay_avoided: outcome.stats.replay_avoided,
                deepest: outcome.stats.deepest,
                scheduled,
                processors_used: outcome.processors_used(),
                termination: outcome.termination,
            });

            batch = batch.into_next(Vec::new());
            now = ended;

            // Fast-forward through provably idle stretches. If the phase
            // scheduled nothing, the next phase faces an identical problem:
            // between arrivals and batch expiries, the planned execution
            // start `t_s + Q_s(j)` is constant (`Q_s` terms are
            // `min(d_l − t − p_l)` and `min(busy_k − t)`, so `t + Q_s` is
            // `max(min(d_l − p_l), min busy_k)`), hence the deterministic
            // search repeats its outcome exactly. Jump to the next event
            // that changes the problem: an arrival or a *future* task
            // expiry. Tasks already expired at `now` (they lapsed mid-phase
            // and will be dropped at the next phase start) must not anchor
            // the jump, or the target lands at or before `now` and the
            // driver grinds through a no-op phase instead of skipping ahead.
            if scheduled == 0 {
                let next_arrival = tasks.get(cursor).map(|t| t.arrival());
                let next_expiry = batch
                    .iter()
                    .map(|t| (t.deadline() - t.processing_time()) + Duration::from_micros(1))
                    .filter(|&e| e > now)
                    .min();
                let jump = match (next_arrival, next_expiry) {
                    (Some(a), Some(e)) => Some(a.min(e)),
                    (Some(a), None) => Some(a),
                    (None, Some(e)) => Some(e),
                    (None, None) => None,
                };
                if let Some(target) = jump {
                    now = now.max(target);
                }
            }
        }

        let hits = machine.deadline_hits();
        let completions = machine.completions().to_vec();
        let executed_misses = completions.len() - hits;
        let finished_at = completions
            .iter()
            .map(|c| c.completion)
            .max()
            .unwrap_or(now);
        RunReport {
            algorithm: cfg.algorithm.name().to_string(),
            total_tasks,
            hits,
            dropped: dropped_total,
            executed_misses,
            completions,
            phases,
            workers_used: machine.workers_used(),
            worker_busy: machine.iter_workers().map(|w| w.busy_time()).collect(),
            finished_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_task::{AffinitySet, ProcessorId};

    fn mk_task(id: u64, p_ms: u64, a_ms: u64, d_ms: u64, workers: usize) -> Task {
        Task::builder(TaskId::new(id))
            .processing_time(Duration::from_millis(p_ms))
            .arrival(Time::from_millis(a_ms))
            .deadline(Time::from_millis(d_ms))
            .affinity(AffinitySet::all(workers))
            .build()
    }

    #[test]
    fn empty_task_set_runs_to_empty_report() {
        let report = Driver::new(DriverConfig::new(2, Algorithm::rt_sads())).run(vec![]);
        assert_eq!(report.total_tasks, 0);
        assert_eq!(report.hits, 0);
        assert!(report.phases.is_empty());
        assert!(report.is_consistent());
    }

    #[test]
    fn all_feasible_tasks_hit_their_deadlines() {
        let tasks: Vec<Task> = (0..20).map(|i| mk_task(i, 1, 0, 200, 4)).collect();
        let report = Driver::new(DriverConfig::new(4, Algorithm::rt_sads())).run(tasks);
        assert_eq!(report.hits, 20);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.executed_misses, 0);
        assert!(report.is_consistent());
        assert!((report.hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theorem_no_scheduled_task_misses() {
        // Overloaded: 50 tasks x 5ms on 2 workers with 30ms deadlines.
        // Many will be dropped, but none that executes may miss.
        let tasks: Vec<Task> = (0..50).map(|i| mk_task(i, 5, 0, 30, 2)).collect();
        for algorithm in [Algorithm::rt_sads(), Algorithm::d_cols()] {
            let report = Driver::new(DriverConfig::new(2, algorithm)).run(tasks.clone());
            assert_eq!(report.executed_misses, 0, "theorem violated");
            assert!(report.dropped > 0, "overload must drop something");
            assert!(report.is_consistent());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let tasks: Vec<Task> = (0..30).map(|i| mk_task(i, 2, i % 7, 60 + i, 3)).collect();
        let run =
            || Driver::new(DriverConfig::new(3, Algorithm::rt_sads()).seed(42)).run(tasks.clone());
        let a = run();
        let b = run();
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.phases.len(), b.phases.len());
    }

    #[test]
    fn later_arrivals_enter_later_batches() {
        let mut tasks = vec![mk_task(0, 2, 0, 100, 2)];
        tasks.push(mk_task(1, 2, 50, 150, 2));
        let report = Driver::new(DriverConfig::new(2, Algorithm::rt_sads())).run(tasks);
        assert_eq!(report.hits, 2);
        assert!(report.phases.len() >= 2, "idle gap forces a second phase");
        let c1 = report
            .completions
            .iter()
            .find(|c| c.task == TaskId::new(1))
            .unwrap();
        assert!(c1.start >= Time::from_millis(50));
    }

    #[test]
    fn time_always_advances_under_zero_slack() {
        // Tasks with zero slack and an idle machine give Q_s = 0; the
        // driver's floor must still make progress and expire them.
        let tasks: Vec<Task> = (0..5).map(|i| mk_task(i, 10, 0, 10, 1)).collect();
        let report = Driver::new(DriverConfig::new(1, Algorithm::rt_sads())).run(tasks);
        assert!(report.is_consistent());
        // With the quantum floor, at most one can be scheduled in time.
        assert!(report.hits <= 1);
        assert!(report.dropped >= 4);
    }

    #[test]
    fn affinity_restricts_placement_under_tight_deadlines() {
        // Tasks affine to P1 only; deadline too tight to pay C elsewhere.
        let tasks: Vec<Task> = (0..3)
            .map(|i| {
                Task::builder(TaskId::new(i))
                    .processing_time(Duration::from_millis(1))
                    .deadline(Time::from_millis(20))
                    .affinity(AffinitySet::from_iter([ProcessorId::new(1)]))
                    .build()
            })
            .collect();
        let config = DriverConfig::new(3, Algorithm::rt_sads())
            .comm(CommModel::constant(Duration::from_millis(100)));
        let report = Driver::new(config).run(tasks);
        assert_eq!(report.hits, 3);
        for c in &report.completions {
            assert_eq!(c.processor, ProcessorId::new(1));
        }
        assert_eq!(report.workers_used, 1);
    }

    #[test]
    fn greedy_and_random_also_account_consistently() {
        let tasks: Vec<Task> = (0..25).map(|i| mk_task(i, 3, 0, 40, 3)).collect();
        for algorithm in [Algorithm::GreedyEdf, Algorithm::RandomAssign] {
            let report = Driver::new(DriverConfig::new(3, algorithm).seed(9)).run(tasks.clone());
            assert!(report.is_consistent());
            assert_eq!(report.executed_misses, 0);
        }
    }

    #[test]
    fn rt_sads_beats_d_cols_under_low_affinity() {
        // A miniature Figure 5 point: low replication (each task affine to
        // exactly one worker), tight deadlines, constant C too large to pay.
        let workers = 4;
        let tasks: Vec<Task> = (0..40)
            .map(|i| {
                Task::builder(TaskId::new(i))
                    .processing_time(Duration::from_millis(2))
                    .deadline(Time::from_millis(30))
                    .affinity(AffinitySet::from_iter([ProcessorId::new(
                        (i % workers as u64) as usize,
                    )]))
                    .build()
            })
            .collect();
        let comm = CommModel::constant(Duration::from_millis(50));
        let sads = Driver::new(DriverConfig::new(workers, Algorithm::rt_sads()).comm(comm))
            .run(tasks.clone());
        let cols =
            Driver::new(DriverConfig::new(workers, Algorithm::d_cols()).comm(comm)).run(tasks);
        assert!(
            sads.hits >= cols.hits,
            "RT-SADS ({}) should not lose to D-COLS ({})",
            sads.hits,
            cols.hits
        );
    }

    #[test]
    #[should_panic(expected = "at least one working processor")]
    fn zero_workers_rejected() {
        let _ = DriverConfig::new(0, Algorithm::rt_sads());
    }

    #[test]
    fn idle_fast_forward_skips_past_mid_phase_expired_stragglers() {
        // One worker, 5ms per-vertex cost, so the quantum floor is 10ms and
        // the first phase's execution bound starts at 10ms: both early tasks
        // are screened and nothing is scheduled. Task 0 (start by 1ms)
        // lapses *during* that phase and stays in the batch; task 1 (start
        // by 7ms) expires later; task 2 arrives at 50ms and is easy.
        //
        // The fast-forward must anchor on task 1's future expiry, not task
        // 0's past one — with the stale anchor the jump target lies before
        // `now` and the driver runs a wasted no-op phase against {task 1}
        // before time can advance.
        let tasks = vec![
            mk_task(0, 1, 0, 2, 1),
            mk_task(1, 1, 0, 8, 1),
            mk_task(2, 1, 50, 200, 1),
        ];
        let config = DriverConfig::new(1, Algorithm::rt_sads())
            .host(HostParams::new(Duration::from_millis(5)));
        let report = Driver::new(config).run(tasks);
        assert!(report.is_consistent());
        assert_eq!(report.dropped, 2, "both early tasks expire");
        assert_eq!(report.hits, 1, "the late arrival is scheduled");
        assert_eq!(
            report.phases.len(),
            2,
            "one screened phase, one for the late arrival — no wasted \
             no-op phase between them"
        );
    }

    #[test]
    fn traced_runs_emit_a_consistent_event_stream() {
        use paragon_des::trace::{RecordingTracer, TraceEvent};
        let tasks: Vec<Task> = (0..12).map(|i| mk_task(i, 2, 0, 25, 2)).collect();
        let mut tracer = RecordingTracer::new();
        let report =
            Driver::new(DriverConfig::new(2, Algorithm::rt_sads())).run_traced(tasks, &mut tracer);

        let starts = tracer.count_matching(|e| matches!(e, TraceEvent::PhaseStarted { .. }));
        let ends = tracer.count_matching(|e| matches!(e, TraceEvent::PhaseEnded { .. }));
        assert_eq!(starts, report.phases.len());
        assert_eq!(ends, report.phases.len());
        let completed = tracer.count_matching(|e| matches!(e, TraceEvent::TaskCompleted { .. }));
        assert_eq!(completed, report.completions.len());
        let dropped = tracer.count_matching(|e| matches!(e, TraceEvent::TaskDropped { .. }));
        assert_eq!(dropped, report.dropped);
        // a traced run and an untraced run agree
        let plain = Driver::new(DriverConfig::new(2, Algorithm::rt_sads()))
            .run((0..12).map(|i| mk_task(i, 2, 0, 25, 2)).collect());
        assert_eq!(plain.hits, report.hits);
    }

    #[test]
    fn tracing_is_free_when_disabled() {
        use paragon_des::trace::Tracer;
        let tasks: Vec<Task> = (0..5).map(|i| mk_task(i, 1, 0, 50, 2)).collect();
        let a = Driver::new(DriverConfig::new(2, Algorithm::rt_sads()))
            .run_traced(tasks.clone(), &mut Tracer::disabled());
        let b = Driver::new(DriverConfig::new(2, Algorithm::rt_sads())).run(tasks);
        assert_eq!(a.completions, b.completions);
    }
}
