//! The end-to-end scheduler/executor loop: batches, phases, dispatch.
//!
//! The driver realizes the concurrency structure of Section 4: while the
//! working processors execute the previously delivered schedule `S_j`, the
//! host processor runs scheduling phase `j+1` over `Batch(j+1)`. In virtual
//! time this becomes a sequential loop — compute phase `j` at `t_s`, charge
//! its scheduling time, deliver `S_j` at `t_e = t_s + consumed`, repeat —
//! which is exact because worker queues are FIFO, non-preemptive and
//! append-only.

use std::collections::HashSet;

use paragon_des::trace::{PlacementProbe, ScreenProbe, TraceEvent, TraceSink, Tracer};
use paragon_des::{Duration, SimRng, Time};
use paragon_platform::{Dispatch, HostParams, Machine, MachineConfig, SchedulingMeter};
use rt_task::{Batch, CommModel, Task, TaskId};

use sched_search::Pruning;

use crate::algorithm::{Algorithm, PhaseScratch};
use crate::faults::{self, FaultConfig, FaultKind, FaultPlan, InFlightPolicy};
use crate::quantum::QuantumPolicy;
use crate::report::{PhaseRecord, RunReport};

/// Configuration of one simulation run.
///
/// Construct with [`DriverConfig::new`] and chain the setters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    workers: usize,
    comm: CommModel,
    host: HostParams,
    quantum: QuantumPolicy,
    algorithm: Algorithm,
    vertex_cap: Option<u64>,
    pruning: Pruning,
    seed: u64,
    faults: FaultConfig,
    fault_plan: Option<FaultPlan>,
    measure_overhead: bool,
    profile: bool,
    search_threads: usize,
}

impl DriverConfig {
    /// A configuration with `workers` working processors running
    /// `algorithm`, free communication, default host cost, the paper's
    /// self-adjusting quantum and a defensive vertex cap.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn new(workers: usize, algorithm: Algorithm) -> Self {
        assert!(workers > 0, "at least one working processor required");
        DriverConfig {
            workers,
            comm: CommModel::free(),
            host: HostParams::default(),
            quantum: QuantumPolicy::self_adjusting(),
            algorithm,
            vertex_cap: Some(2_000_000),
            pruning: Pruning::default(),
            seed: 0,
            faults: FaultConfig::disabled(),
            fault_plan: None,
            measure_overhead: false,
            profile: false,
            search_threads: 1,
        }
    }

    /// Sets the interconnect cost model.
    #[must_use]
    pub fn comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Sets the host (scheduling) cost parameters.
    #[must_use]
    pub fn host(mut self, host: HostParams) -> Self {
        self.host = host;
        self
    }

    /// Sets the scheduling-time allocation policy.
    #[must_use]
    pub fn quantum(mut self, quantum: QuantumPolicy) -> Self {
        self.quantum = quantum;
        self
    }

    /// Sets (or disables) the per-phase vertex cap that guards unbounded
    /// searches when the host's vertex cost is zero.
    #[must_use]
    pub fn vertex_cap(mut self, cap: Option<u64>) -> Self {
        self.vertex_cap = cap;
        self
    }

    /// Applies Section-3 pruning bounds (depth bound, backtrack limit) to
    /// the search-based algorithms.
    #[must_use]
    pub fn pruning(mut self, pruning: Pruning) -> Self {
        self.pruning = pruning;
        self
    }

    /// Sets the seed for algorithms that randomize, and for fault-plan
    /// sampling when a [`FaultConfig`] is set.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables fault injection: the concrete [`FaultPlan`] is sampled from
    /// the run seed at [`Driver::run`] time. The default is
    /// [`FaultConfig::disabled`], under which runs are bit-identical to a
    /// driver without fault support at all.
    #[must_use]
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides fault-plan sampling with an explicit plan — for tests and
    /// replay of a recorded plan. Takes precedence over
    /// [`DriverConfig::faults`].
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Measure the wall-clock time each scheduling phase actually takes and
    /// emit it as [`TraceEvent::SchedulerOverhead`] next to the allocated
    /// quantum. Off by default: wall time is nondeterministic, so enabling
    /// it makes traces differ byte-for-byte between repeat runs (the
    /// simulation outcome is unaffected either way).
    #[must_use]
    pub fn measure_overhead(mut self, measure: bool) -> Self {
        self.measure_overhead = measure;
        self
    }

    /// Enable the search engine's stage-scoped self-profiler and emit one
    /// [`TraceEvent::PhaseProfiled`] per search phase: wall nanoseconds
    /// attributed to each pipeline stage (screen, fill, cost, shard,
    /// apply, undo, merge) plus per-subtree-walk telemetry on split
    /// parallel phases. Off by default for the same reason as
    /// [`DriverConfig::measure_overhead`]: wall time is nondeterministic,
    /// so enabling it makes traces differ between repeat runs. The
    /// simulation outcome is bit-identical either way (pinned by the
    /// profiled differential suite), and like tracing itself the disabled
    /// profiler costs only a predictable branch per stage span.
    #[must_use]
    pub fn profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the number of worker threads the search-based algorithms may use
    /// inside one scheduling phase. `1` (the default) runs the serial engine;
    /// `>= 2` splits the root candidate set across that many OS threads with
    /// a deterministic reduction, so the outcome is bit-identical at any
    /// width. Baseline (non-search) algorithms ignore this setting.
    #[must_use]
    pub fn search_threads(mut self, threads: usize) -> Self {
        self.search_threads = threads.max(1);
        self
    }

    /// The configured fault model.
    #[must_use]
    pub fn fault_config(&self) -> &FaultConfig {
        &self.faults
    }

    /// The configured number of working processors.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured algorithm.
    #[must_use]
    pub fn algorithm(&self) -> &Algorithm {
        &self.algorithm
    }
}

/// Runs a task set to completion under one configuration.
#[derive(Debug, Clone)]
pub struct Driver {
    config: DriverConfig,
}

impl Driver {
    /// Creates a driver.
    #[must_use]
    pub fn new(config: DriverConfig) -> Self {
        Driver { config }
    }

    /// Simulates the full lifetime of `tasks`: every task is eventually
    /// either executed (and, by the paper's theorem, meets its deadline on a
    /// fault-free platform), dropped once its deadline can no longer be met,
    /// or — under fault injection — lost mid-execution to a processor
    /// failure.
    ///
    /// Deterministic: identical inputs and seed produce identical reports,
    /// fault plan included.
    #[must_use]
    pub fn run(&self, tasks: Vec<Task>) -> RunReport {
        self.run_traced(tasks, &mut Tracer::disabled())
    }

    /// Like [`Driver::run`], but emits [`TraceEvent`]s to `tracer` as the
    /// simulation progresses: phase boundaries, drops, and task
    /// start/completion (completion events are emitted at delivery time,
    /// timestamped with their — possibly later — execution instants).
    #[must_use]
    pub fn run_traced(&self, mut tasks: Vec<Task>, tracer: &mut impl TraceSink) -> RunReport {
        let cfg = &self.config;
        let mut machine = Machine::new(MachineConfig {
            workers: cfg.workers,
            comm: cfg.comm,
        });
        let mut rng = SimRng::seed_from(cfg.seed);
        tasks.sort_by_key(|t| (t.arrival(), t.id()));
        let total_tasks = tasks.len();

        // Fault injection. The plan is sampled from a dedicated child of the
        // run seed (and the loss stream from another), so the algorithm's
        // own RNG sequence is untouched: a disabled config is bit-identical
        // to a fault-free run, not merely statistically equivalent.
        let plan: FaultPlan = cfg.fault_plan.clone().unwrap_or_else(|| {
            cfg.faults
                .sample_plan_topo(cfg.workers, cfg.comm.topology(), cfg.seed)
        });
        let keep_in_flight = plan.in_flight == InFlightPolicy::Completes;
        let mut loss_rng = faults::loss_stream(cfg.workers, cfg.seed);
        let mut plan_cursor = 0usize;
        let mut faults_seen = 0usize;
        let mut orphaned_total = 0usize;
        let mut lost_total = 0usize;
        // Counters accumulated since the last phase boundary; folded into
        // the next PhaseRecord.
        let mut pending_orphaned = 0usize;
        let mut pending_lost = 0usize;
        let mut pending_faults = 0usize;

        // The quantum floor guarantees progress: at least one full expansion
        // (workers + 1 vertex evaluations) fits in every phase, and time
        // advances by at least `min_step` per phase.
        let min_quantum = cfg.host.vertex_eval_cost * (cfg.workers as u64 + 1);
        let min_step = Duration::from_micros(1).max(cfg.host.vertex_eval_cost);

        let mut cursor = 0;
        let mut batch = Batch::new(0);
        let mut now = Time::ZERO;
        let mut phases: Vec<PhaseRecord> = Vec::new();
        let mut dropped_total = 0usize;

        // One scratch for the whole run: after the first few phases every
        // buffer has reached its high-water capacity and scheduling phases
        // stop allocating entirely (see `PhaseScratch`).
        let mut scratch = PhaseScratch::new();
        // Profiling follows the tracer: without a sink there is nowhere to
        // put the record, and the search must stay clock-free.
        scratch
            .search
            .set_profiling(cfg.profile && tracer.enabled());
        let mut initial_finish: Vec<Time> = Vec::new();

        loop {
            // Apply fault events that have come due. The host observes the
            // platform at phase boundaries, and `Machine::fail` partitions a
            // worker's history exactly even when the event instant lies
            // before `now` (the worker keeps every slot it ever admitted),
            // so applying events lazily here is equivalent to applying them
            // the instant they happened. Orphaned tasks re-enter the batch
            // and face the next phase's expiry filter like any other task.
            // Note that a retroactive failure retracts completion records
            // whose `TaskCompleted`/`TaskStarted` trace events were already
            // emitted at delivery time; the `TaskOrphaned`/`TaskLost` events
            // emitted here supersede them.
            while let Some(&ev) = plan.events.get(plan_cursor) {
                if ev.at > now {
                    break;
                }
                plan_cursor += 1;
                match ev.kind {
                    FaultKind::Down { fail_stop } => {
                        // A node crash and an independent per-processor
                        // failure can target the same (already down)
                        // processor; the second hit is a no-op and is not
                        // counted as a fault. Likewise a recovery for a
                        // processor a later stream already revived.
                        if machine.is_down(ev.processor) {
                            continue;
                        }
                        let failed = machine.fail(ev.processor, ev.at, keep_in_flight);
                        let lost = usize::from(failed.lost.is_some());
                        faults_seen += 1;
                        pending_faults += 1;
                        orphaned_total += failed.orphaned.len();
                        pending_orphaned += failed.orphaned.len();
                        lost_total += lost;
                        pending_lost += lost;
                        if tracer.enabled() {
                            tracer.emit(
                                ev.at,
                                TraceEvent::ProcessorFailed {
                                    processor: ev.processor.index(),
                                    fail_stop,
                                    orphaned: failed.orphaned.len(),
                                    lost,
                                },
                            );
                            for (task, _) in &failed.orphaned {
                                tracer.emit(
                                    ev.at,
                                    TraceEvent::TaskOrphaned {
                                        task: task.id().as_u64(),
                                        processor: ev.processor.index(),
                                    },
                                );
                            }
                            if let Some((task, _)) = &failed.lost {
                                tracer.emit(
                                    ev.at,
                                    TraceEvent::TaskLost {
                                        task: task.id().as_u64(),
                                        processor: ev.processor.index(),
                                    },
                                );
                            }
                        }
                        for (task, _) in failed.orphaned {
                            batch.push(task);
                        }
                    }
                    FaultKind::Up => {
                        if !machine.is_down(ev.processor) {
                            continue;
                        }
                        machine.recover(ev.processor, ev.at);
                        if tracer.enabled() {
                            tracer.emit(
                                ev.at,
                                TraceEvent::ProcessorRecovered {
                                    processor: ev.processor.index(),
                                },
                            );
                        }
                    }
                }
            }

            // Ingest everything that has arrived by `now`.
            while cursor < tasks.len() && tasks[cursor].arrival() <= now {
                let t = &tasks[cursor];
                if tracer.enabled() {
                    // The first link of the task's decision chain: the
                    // parameters every later feasibility test uses.
                    tracer.emit(
                        now,
                        TraceEvent::TaskAdmitted {
                            task: t.id().as_u64(),
                            arrival_us: t.arrival().as_micros(),
                            deadline_us: t.deadline().as_micros(),
                            processing_us: t.processing_time().as_micros(),
                        },
                    );
                }
                batch.push(t.clone());
                cursor += 1;
            }
            if batch.is_empty() {
                // Idle until something changes the problem: the next arrival
                // or a pending fault event that can still touch queued or
                // running work (an event past every worker's busy horizon
                // can neither orphan nor lose anything, and with no arrivals
                // left a recovery is moot too).
                let next_arrival = tasks.get(cursor).map(|t| t.arrival());
                let busy_horizon = machine
                    .iter_workers()
                    .map(|w| w.busy_until())
                    .max()
                    .unwrap_or(Time::ZERO);
                let next_fault = plan
                    .events
                    .get(plan_cursor)
                    .map(|e| e.at)
                    .filter(|&f| f < busy_horizon);
                now = match (next_arrival, next_fault) {
                    (Some(a), Some(f)) => a.min(f),
                    (Some(a), None) => a,
                    (None, Some(f)) => f,
                    (None, None) => break,
                };
                continue;
            }

            // Phase j starts at t_s = now.
            let phase_no = batch.phase();
            let started = now;
            let dropped = batch.drop_expired(started);
            dropped_total += dropped.len();
            if tracer.enabled() {
                for t in &dropped.dropped {
                    tracer.emit(
                        started,
                        TraceEvent::TaskDropped {
                            task: t.id().as_u64(),
                        },
                    );
                }
            }
            if batch.is_empty() {
                // Everything expired; loop back (arrivals or exit).
                continue;
            }

            let quantum = cfg
                .quantum
                .allocate(&batch, started, &machine)
                .max(min_quantum);
            if tracer.enabled() {
                tracer.emit(
                    started,
                    TraceEvent::PhaseStarted {
                        phase: phase_no,
                        batch_len: batch.len(),
                        quantum,
                    },
                );
            }
            let mut meter = SchedulingMeter::new(cfg.host, quantum);
            let exec_bound = started + quantum;
            // Down workers report `UNAVAILABLE` here, so the feasibility
            // test screens them out of every placement.
            initial_finish.clear();
            initial_finish.extend(machine.iter_workers().map(|w| w.available_from(exec_bound)));

            let wall_start = (cfg.measure_overhead && tracer.enabled())
                .then(rt_telemetry::MonotonicInstant::now);
            let mut outcome = cfg.algorithm.schedule_phase(
                batch.tasks(),
                &cfg.comm,
                &initial_finish,
                started,
                cfg.vertex_cap,
                cfg.pruning,
                machine.resource_eats(),
                tracer.enabled(),
                cfg.search_threads,
                &mut meter,
                &mut rng,
                &mut scratch,
            );
            let wall_ns = wall_start.map(|t0| t0.elapsed_ns());

            let consumed = meter.consumed().max(min_step);
            let ended = started + consumed;

            // Decision provenance, emitted while the batch indices in the
            // outcome still resolve against this phase's batch.
            if tracer.enabled() {
                if let Some(prov) = &outcome.provenance {
                    for s in &prov.screened {
                        let t = &batch.tasks()[s.task];
                        tracer.emit(
                            ended,
                            TraceEvent::TaskScreened {
                                task: t.id().as_u64(),
                                phase: phase_no,
                                deadline_us: t.deadline().as_micros(),
                                probes: s
                                    .probes
                                    .iter()
                                    .map(|p| ScreenProbe {
                                        processor: p.processor.index(),
                                        available_us: p.available.as_micros(),
                                        demand_us: p.demand.as_micros(),
                                        completion_us: p.completion.as_micros(),
                                    })
                                    .collect(),
                            },
                        );
                    }
                    for d in &prov.decisions {
                        tracer.emit(
                            ended,
                            TraceEvent::PlacementDecided {
                                task: batch.tasks()[d.task].id().as_u64(),
                                phase: phase_no,
                                processor: d.processor.index(),
                                completion_us: d.completion.as_micros(),
                                cost_us: d.cost.as_micros(),
                                // Chosen shard: only meaningful on genuinely
                                // sharded platforms (a 1-node topology is
                                // the flat machine, as for shard_busy).
                                shard: cfg
                                    .comm
                                    .topology()
                                    .filter(|t| t.nodes() >= 2)
                                    .map(|t| t.node_of(d.processor)),
                                rejected: d
                                    .rejected
                                    .iter()
                                    .map(|r| PlacementProbe {
                                        processor: r.processor.index(),
                                        completion_us: r.completion.as_micros(),
                                        cost_us: r.cost.as_micros(),
                                        shard: cfg
                                            .comm
                                            .topology()
                                            .map_or(0, |t| t.node_of(r.processor)),
                                    })
                                    .collect(),
                            },
                        );
                    }
                }
                if let Some(wall_ns) = wall_ns {
                    tracer.emit(
                        ended,
                        TraceEvent::SchedulerOverhead {
                            phase: phase_no,
                            allocated_us: quantum.as_micros(),
                            wall_ns,
                        },
                    );
                }
                if cfg.profile {
                    // Drained every phase so stage times never leak across
                    // phases; baselines (which never enter the search
                    // engine) leave an all-zero record that is not emitted.
                    let profile = scratch.search.take_profile();
                    if profile.total_ns() > 0 || !profile.walks.is_empty() {
                        tracer.emit(
                            ended,
                            TraceEvent::PhaseProfiled {
                                phase: phase_no,
                                profile,
                            },
                        );
                    }
                }
            }

            let dispatches: Vec<Dispatch> = outcome
                .assignments
                .iter()
                .map(|a| Dispatch {
                    task: batch.tasks()[a.task].clone(),
                    processor: a.processor,
                })
                .collect();
            let planned = dispatches.len();

            // Communication spikes: while a window covers the delivery
            // instant, the schedule message pays `spike_delay` extra latency
            // and each dispatch is lost with probability `spike_loss`. A
            // lost dispatch never leaves the host — the task stays in the
            // batch and re-enters the next phase as an orphan.
            let in_spike = plan.in_spike(ended);
            let delivery_at = if in_spike {
                ended + plan.spike_delay
            } else {
                ended
            };
            let mut delivered: Vec<Dispatch> = Vec::with_capacity(dispatches.len());
            for d in dispatches {
                if in_spike && plan.spike_loss > 0.0 && loss_rng.bernoulli(plan.spike_loss) {
                    orphaned_total += 1;
                    pending_orphaned += 1;
                    if tracer.enabled() {
                        tracer.emit(
                            ended,
                            TraceEvent::TaskOrphaned {
                                task: d.task.id().as_u64(),
                                processor: d.processor.index(),
                            },
                        );
                    }
                } else {
                    delivered.push(d);
                }
            }
            let scheduled_ids: HashSet<TaskId> = delivered.iter().map(|d| d.task.id()).collect();
            let scheduled = delivered.len();
            let processing_times: Vec<Duration> =
                delivered.iter().map(|d| d.task.processing_time()).collect();
            let records = machine.deliver(delivered, delivery_at);
            batch.remove_scheduled(&scheduled_ids);
            // Tasks whose deadline lapsed *while* the phase was computing:
            // they stay in the batch (and are dropped — and counted — at the
            // next phase start), but the telemetry layer wants to see the
            // expiry at the instant it became unavoidable.
            let expired_mid_phase = batch.iter().filter(|t| t.is_expired(ended)).count();
            if tracer.enabled() {
                tracer.emit(
                    ended,
                    TraceEvent::PhaseEnded {
                        phase: phase_no,
                        scheduled,
                        consumed,
                        vertices: outcome.stats.vertices_generated,
                        backtracks: outcome.stats.backtracks,
                        undos: outcome.stats.undos,
                        replay_avoided: outcome.stats.replay_avoided,
                    },
                );
                for t in batch.iter().filter(|t| t.is_expired(ended)) {
                    tracer.emit(
                        ended,
                        TraceEvent::TaskExpiredMidPhase {
                            task: t.id().as_u64(),
                            phase: phase_no,
                        },
                    );
                }
                for (r, p) in records.iter().zip(&processing_times) {
                    let slack_us = r.deadline.as_micros() as i64 - r.start.as_micros() as i64;
                    tracer.emit(
                        ended,
                        TraceEvent::TaskDispatched {
                            task: r.task.as_u64(),
                            processor: r.processor.index(),
                            slack_us,
                        },
                    );
                    let comm_delay = r.service.saturating_sub(*p);
                    if !comm_delay.is_zero() {
                        tracer.emit(
                            r.start,
                            TraceEvent::CommDelay {
                                task: r.task.as_u64(),
                                processor: r.processor.index(),
                                delay_us: comm_delay.as_micros(),
                            },
                        );
                    }
                    tracer.emit(
                        r.start,
                        TraceEvent::TaskStarted {
                            task: r.task.as_u64(),
                            processor: r.processor.index(),
                        },
                    );
                    let lateness_us =
                        r.completion.as_micros() as i64 - r.deadline.as_micros() as i64;
                    tracer.emit(
                        r.completion,
                        TraceEvent::TaskCompleted {
                            task: r.task.as_u64(),
                            processor: r.processor.index(),
                            met_deadline: r.met_deadline,
                            lateness_us,
                        },
                    );
                }
            }

            phases.push(PhaseRecord {
                phase: phase_no,
                started,
                batch_len: batch.len() + scheduled,
                dropped: dropped.len(),
                expired_mid_phase,
                quantum,
                consumed,
                vertices: outcome.stats.vertices_generated,
                backtracks: outcome.stats.backtracks,
                undos: outcome.stats.undos,
                replay_avoided: outcome.stats.replay_avoided,
                deepest: outcome.stats.deepest,
                scheduled,
                processors_used: outcome.processors_used(),
                termination: outcome.termination,
                orphaned: pending_orphaned,
                lost_in_flight: pending_lost,
                faults: pending_faults,
            });
            // Return the assignment buffer to the pool so the next phase can
            // reuse its capacity instead of allocating a fresh one.
            scratch.recycle(std::mem::take(&mut outcome.assignments));
            pending_orphaned = 0;
            pending_lost = 0;
            pending_faults = 0;

            batch = batch.into_next(Vec::new());
            now = ended;

            // Fast-forward through provably idle stretches. If the phase
            // scheduled nothing, the next phase faces an identical problem:
            // between arrivals and batch expiries, the planned execution
            // start `t_s + Q_s(j)` is constant (`Q_s` terms are
            // `min(d_l − t − p_l)` and `min(busy_k − t)`, so `t + Q_s` is
            // `max(min(d_l − p_l), min busy_k)`), hence the deterministic
            // search repeats its outcome exactly. Jump to the next event
            // that changes the problem: an arrival or a *future* task
            // expiry. Tasks already expired at `now` (they lapsed mid-phase
            // and will be dropped at the next phase start) must not anchor
            // the jump, or the target lands at or before `now` and the
            // driver grinds through a no-op phase instead of skipping ahead.
            //
            // Under fault injection the gate is `planned == 0`, not
            // `scheduled == 0`: a phase whose dispatches were all lost to a
            // spike consumed loss draws, so the repeated problem is not
            // identical. And a jump must never cross a pending fault event —
            // a failure or recovery changes the processor set, which changes
            // the search's outcome.
            if planned == 0 {
                let next_arrival = tasks.get(cursor).map(|t| t.arrival());
                let next_expiry = batch
                    .iter()
                    .map(|t| (t.deadline() - t.processing_time()) + Duration::from_micros(1))
                    .filter(|&e| e > now)
                    .min();
                let jump = match (next_arrival, next_expiry) {
                    (Some(a), Some(e)) => Some(a.min(e)),
                    (Some(a), None) => Some(a),
                    (None, Some(e)) => Some(e),
                    (None, None) => None,
                };
                if let Some(target) = jump {
                    let target = plan
                        .events
                        .get(plan_cursor)
                        .map_or(target, |e| target.min(e.at));
                    now = now.max(target);
                }
            }
        }

        // Fault fallout observed after the last phase boundary (e.g. an
        // in-flight loss on an otherwise-empty machine) has no next phase to
        // report it; fold it into the final record so per-phase tallies sum
        // to the run totals.
        if pending_orphaned + pending_lost + pending_faults > 0 {
            if let Some(last) = phases.last_mut() {
                last.orphaned += pending_orphaned;
                last.lost_in_flight += pending_lost;
                last.faults += pending_faults;
            }
        }

        let hits = machine.deadline_hits();
        let completions = machine.completions().to_vec();
        let executed_misses = completions.len() - hits;
        let finished_at = completions
            .iter()
            .map(|c| c.completion)
            .max()
            .unwrap_or(now);
        RunReport {
            algorithm: cfg.algorithm.name().to_string(),
            total_tasks,
            hits,
            dropped: dropped_total,
            executed_misses,
            completions,
            phases,
            workers_used: machine.workers_used(),
            worker_busy: machine.iter_workers().map(|w| w.busy_time()).collect(),
            worker_idle: machine
                .iter_workers()
                .map(|w| w.idle_time(finished_at))
                .collect(),
            // Per-shard totals only exist on genuinely sharded platforms;
            // flat runs (including 1-node topologies) keep the field empty
            // so their reports stay bit-identical to pre-topology ones.
            shard_busy: cfg
                .comm
                .topology()
                .filter(|t| t.nodes() >= 2)
                .map_or_else(Vec::new, |t| {
                    (0..t.nodes())
                        .map(|n| {
                            let (lo, hi) = t.node_range(n);
                            (lo..hi)
                                .map(|p| machine.worker(rt_task::ProcessorId::new(p)).busy_time())
                                .sum()
                        })
                        .collect()
                }),
            finished_at,
            orphaned: orphaned_total,
            lost_in_flight: lost_total,
            faults_seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_task::{AffinitySet, ProcessorId};

    fn mk_task(id: u64, p_ms: u64, a_ms: u64, d_ms: u64, workers: usize) -> Task {
        Task::builder(TaskId::new(id))
            .processing_time(Duration::from_millis(p_ms))
            .arrival(Time::from_millis(a_ms))
            .deadline(Time::from_millis(d_ms))
            .affinity(AffinitySet::all(workers))
            .build()
    }

    #[test]
    fn empty_task_set_runs_to_empty_report() {
        let report = Driver::new(DriverConfig::new(2, Algorithm::rt_sads())).run(vec![]);
        assert_eq!(report.total_tasks, 0);
        assert_eq!(report.hits, 0);
        assert!(report.phases.is_empty());
        assert!(report.is_consistent());
    }

    #[test]
    fn all_feasible_tasks_hit_their_deadlines() {
        let tasks: Vec<Task> = (0..20).map(|i| mk_task(i, 1, 0, 200, 4)).collect();
        let report = Driver::new(DriverConfig::new(4, Algorithm::rt_sads())).run(tasks);
        assert_eq!(report.hits, 20);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.executed_misses, 0);
        assert!(report.is_consistent());
        assert!((report.hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theorem_no_scheduled_task_misses() {
        // Overloaded: 50 tasks x 5ms on 2 workers with 30ms deadlines.
        // Many will be dropped, but none that executes may miss.
        let tasks: Vec<Task> = (0..50).map(|i| mk_task(i, 5, 0, 30, 2)).collect();
        for algorithm in [Algorithm::rt_sads(), Algorithm::d_cols()] {
            let report = Driver::new(DriverConfig::new(2, algorithm)).run(tasks.clone());
            assert_eq!(report.executed_misses, 0, "theorem violated");
            assert!(report.dropped > 0, "overload must drop something");
            assert!(report.is_consistent());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let tasks: Vec<Task> = (0..30).map(|i| mk_task(i, 2, i % 7, 60 + i, 3)).collect();
        let run =
            || Driver::new(DriverConfig::new(3, Algorithm::rt_sads()).seed(42)).run(tasks.clone());
        let a = run();
        let b = run();
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.phases.len(), b.phases.len());
    }

    #[test]
    fn later_arrivals_enter_later_batches() {
        let mut tasks = vec![mk_task(0, 2, 0, 100, 2)];
        tasks.push(mk_task(1, 2, 50, 150, 2));
        let report = Driver::new(DriverConfig::new(2, Algorithm::rt_sads())).run(tasks);
        assert_eq!(report.hits, 2);
        assert!(report.phases.len() >= 2, "idle gap forces a second phase");
        let c1 = report
            .completions
            .iter()
            .find(|c| c.task == TaskId::new(1))
            .unwrap();
        assert!(c1.start >= Time::from_millis(50));
    }

    #[test]
    fn time_always_advances_under_zero_slack() {
        // Tasks with zero slack and an idle machine give Q_s = 0; the
        // driver's floor must still make progress and expire them.
        let tasks: Vec<Task> = (0..5).map(|i| mk_task(i, 10, 0, 10, 1)).collect();
        let report = Driver::new(DriverConfig::new(1, Algorithm::rt_sads())).run(tasks);
        assert!(report.is_consistent());
        // With the quantum floor, at most one can be scheduled in time.
        assert!(report.hits <= 1);
        assert!(report.dropped >= 4);
    }

    #[test]
    fn affinity_restricts_placement_under_tight_deadlines() {
        // Tasks affine to P1 only; deadline too tight to pay C elsewhere.
        let tasks: Vec<Task> = (0..3)
            .map(|i| {
                Task::builder(TaskId::new(i))
                    .processing_time(Duration::from_millis(1))
                    .deadline(Time::from_millis(20))
                    .affinity(AffinitySet::from_iter([ProcessorId::new(1)]))
                    .build()
            })
            .collect();
        let config = DriverConfig::new(3, Algorithm::rt_sads())
            .comm(CommModel::constant(Duration::from_millis(100)));
        let report = Driver::new(config).run(tasks);
        assert_eq!(report.hits, 3);
        for c in &report.completions {
            assert_eq!(c.processor, ProcessorId::new(1));
        }
        assert_eq!(report.workers_used, 1);
    }

    #[test]
    fn greedy_and_random_also_account_consistently() {
        let tasks: Vec<Task> = (0..25).map(|i| mk_task(i, 3, 0, 40, 3)).collect();
        for algorithm in [Algorithm::GreedyEdf, Algorithm::RandomAssign] {
            let report = Driver::new(DriverConfig::new(3, algorithm).seed(9)).run(tasks.clone());
            assert!(report.is_consistent());
            assert_eq!(report.executed_misses, 0);
        }
    }

    #[test]
    fn rt_sads_beats_d_cols_under_low_affinity() {
        // A miniature Figure 5 point: low replication (each task affine to
        // exactly one worker), tight deadlines, constant C too large to pay.
        let workers = 4;
        let tasks: Vec<Task> = (0..40)
            .map(|i| {
                Task::builder(TaskId::new(i))
                    .processing_time(Duration::from_millis(2))
                    .deadline(Time::from_millis(30))
                    .affinity(AffinitySet::from_iter([ProcessorId::new(
                        (i % workers as u64) as usize,
                    )]))
                    .build()
            })
            .collect();
        let comm = CommModel::constant(Duration::from_millis(50));
        let sads = Driver::new(DriverConfig::new(workers, Algorithm::rt_sads()).comm(comm))
            .run(tasks.clone());
        let cols =
            Driver::new(DriverConfig::new(workers, Algorithm::d_cols()).comm(comm)).run(tasks);
        assert!(
            sads.hits >= cols.hits,
            "RT-SADS ({}) should not lose to D-COLS ({})",
            sads.hits,
            cols.hits
        );
    }

    #[test]
    #[should_panic(expected = "at least one working processor")]
    fn zero_workers_rejected() {
        let _ = DriverConfig::new(0, Algorithm::rt_sads());
    }

    #[test]
    fn idle_fast_forward_skips_past_mid_phase_expired_stragglers() {
        // One worker, 5ms per-vertex cost, so the quantum floor is 10ms and
        // the first phase's execution bound starts at 10ms: both early tasks
        // are screened and nothing is scheduled. Task 0 (start by 1ms)
        // lapses *during* that phase and stays in the batch; task 1 (start
        // by 7ms) expires later; task 2 arrives at 50ms and is easy.
        //
        // The fast-forward must anchor on task 1's future expiry, not task
        // 0's past one — with the stale anchor the jump target lies before
        // `now` and the driver runs a wasted no-op phase against {task 1}
        // before time can advance.
        let tasks = vec![
            mk_task(0, 1, 0, 2, 1),
            mk_task(1, 1, 0, 8, 1),
            mk_task(2, 1, 50, 200, 1),
        ];
        let config = DriverConfig::new(1, Algorithm::rt_sads())
            .host(HostParams::new(Duration::from_millis(5)));
        let report = Driver::new(config).run(tasks);
        assert!(report.is_consistent());
        assert_eq!(report.dropped, 2, "both early tasks expire");
        assert_eq!(report.hits, 1, "the late arrival is scheduled");
        assert_eq!(
            report.phases.len(),
            2,
            "one screened phase, one for the late arrival — no wasted \
             no-op phase between them"
        );
    }

    #[test]
    fn traced_runs_emit_a_consistent_event_stream() {
        use paragon_des::trace::{RecordingTracer, TraceEvent};
        let tasks: Vec<Task> = (0..12).map(|i| mk_task(i, 2, 0, 25, 2)).collect();
        let mut tracer = RecordingTracer::new();
        let report =
            Driver::new(DriverConfig::new(2, Algorithm::rt_sads())).run_traced(tasks, &mut tracer);

        let starts = tracer.count_matching(|e| matches!(e, TraceEvent::PhaseStarted { .. }));
        let ends = tracer.count_matching(|e| matches!(e, TraceEvent::PhaseEnded { .. }));
        assert_eq!(starts, report.phases.len());
        assert_eq!(ends, report.phases.len());
        let completed = tracer.count_matching(|e| matches!(e, TraceEvent::TaskCompleted { .. }));
        assert_eq!(completed, report.completions.len());
        let dropped = tracer.count_matching(|e| matches!(e, TraceEvent::TaskDropped { .. }));
        assert_eq!(dropped, report.dropped);
        // a traced run and an untraced run agree
        let plain = Driver::new(DriverConfig::new(2, Algorithm::rt_sads()))
            .run((0..12).map(|i| mk_task(i, 2, 0, 25, 2)).collect());
        assert_eq!(plain.hits, report.hits);
    }

    #[test]
    fn tracing_is_free_when_disabled() {
        use paragon_des::trace::Tracer;
        let tasks: Vec<Task> = (0..5).map(|i| mk_task(i, 1, 0, 50, 2)).collect();
        let a = Driver::new(DriverConfig::new(2, Algorithm::rt_sads()))
            .run_traced(tasks.clone(), &mut Tracer::disabled());
        let b = Driver::new(DriverConfig::new(2, Algorithm::rt_sads())).run(tasks);
        assert_eq!(a.completions, b.completions);
    }

    // ---- fault injection ----

    use crate::faults::{FaultEvent, FaultKind, FaultPlan, InFlightPolicy};

    fn down(at_ms: u64, p: usize, fail_stop: bool) -> FaultEvent {
        FaultEvent {
            at: Time::from_millis(at_ms),
            processor: ProcessorId::new(p),
            kind: FaultKind::Down { fail_stop },
        }
    }

    fn plan(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan {
            events,
            ..FaultPlan::empty()
        }
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_fault_support() {
        let tasks: Vec<Task> = (0..30).map(|i| mk_task(i, 2, i % 5, 80, 3)).collect();
        let base =
            Driver::new(DriverConfig::new(3, Algorithm::rt_sads()).seed(7)).run(tasks.clone());
        let explicit = Driver::new(
            DriverConfig::new(3, Algorithm::rt_sads())
                .seed(7)
                .fault_plan(FaultPlan::empty()),
        )
        .run(tasks.clone());
        let disabled = Driver::new(
            DriverConfig::new(3, Algorithm::rt_sads())
                .seed(7)
                .faults(crate::faults::FaultConfig::disabled()),
        )
        .run(tasks);
        for other in [&explicit, &disabled] {
            assert_eq!(base.completions, other.completions);
            assert_eq!(base.phases, other.phases);
            assert_eq!(base.hits, other.hits);
            assert_eq!(other.faults_seen, 0);
            assert_eq!(other.orphaned, 0);
            assert_eq!(other.lost_in_flight, 0);
        }
    }

    #[test]
    fn fail_stop_orphans_queued_work_onto_the_survivor() {
        // 20 generous tasks on 2 workers; P0 dies at 10ms. Work queued on
        // P0 must migrate to P1 and still finish; nothing completes on P0
        // after the failure instant.
        let tasks: Vec<Task> = (0..20).map(|i| mk_task(i, 5, 0, 400, 2)).collect();
        let config =
            DriverConfig::new(2, Algorithm::rt_sads()).fault_plan(plan(vec![down(10, 0, true)]));
        let report = Driver::new(config).run(tasks);
        assert!(report.is_consistent());
        assert_eq!(report.faults_seen, 1);
        assert!(report.orphaned > 0, "P0's queue must orphan");
        assert_eq!(report.dropped, 0, "deadlines are generous");
        assert_eq!(
            report.hits + report.executed_misses + report.lost_in_flight,
            20
        );
        let fail_at = Time::from_millis(10);
        for c in &report.completions {
            if c.processor == ProcessorId::new(0) {
                assert!(c.completion <= fail_at, "no completion on a dead P0");
            }
        }
        assert_eq!(report.total_phase_orphaned(), report.orphaned);
    }

    #[test]
    fn losing_the_only_worker_drops_the_orphans() {
        let tasks: Vec<Task> = (0..3).map(|i| mk_task(i, 5, 0, 100, 1)).collect();
        let config = DriverConfig::new(1, Algorithm::rt_sads()).fault_plan(FaultPlan {
            events: vec![FaultEvent {
                at: Time::from_micros(1),
                processor: ProcessorId::new(0),
                kind: FaultKind::Down { fail_stop: true },
            }],
            ..FaultPlan::empty()
        });
        let report = Driver::new(config).run(tasks);
        assert!(report.is_consistent());
        assert_eq!(report.faults_seen, 1);
        assert_eq!(report.hits, 0);
        // The idle-machine quantum is the full slack, so the first phase's
        // execution bound admits only one dispatch before the failure; it
        // orphans, and everything ends up dropped.
        assert!(report.orphaned >= 1, "delivery postdates the failure");
        assert_eq!(report.dropped, 3, "no processor left to run them");
        assert_eq!(report.lost_in_flight, 0);
    }

    #[test]
    fn in_flight_policy_decides_loss_or_completion() {
        // One 50ms task; the worker dies at 20ms, mid-execution.
        let mk = |policy| {
            let tasks = vec![mk_task(0, 50, 0, 500, 1)];
            let config = DriverConfig::new(1, Algorithm::rt_sads()).fault_plan(FaultPlan {
                events: vec![down(20, 0, true)],
                in_flight: policy,
                ..FaultPlan::empty()
            });
            Driver::new(config).run(tasks)
        };
        let lost = mk(InFlightPolicy::Lost);
        assert!(lost.is_consistent());
        assert_eq!(lost.lost_in_flight, 1);
        assert_eq!(lost.hits, 0);
        assert!(lost.completions.is_empty());
        let kept = mk(InFlightPolicy::Completes);
        assert!(kept.is_consistent());
        assert_eq!(kept.lost_in_flight, 0);
        assert_eq!(kept.hits, 1);
    }

    #[test]
    fn recovery_restores_scheduling_capacity() {
        // P0 fails at 2ms and recovers at 10ms; a 20ms arrival must still
        // be scheduled (on the recovered processor — there is no other).
        let tasks = vec![mk_task(0, 1, 0, 50, 1), mk_task(1, 1, 20, 100, 1)];
        let config = DriverConfig::new(1, Algorithm::rt_sads()).fault_plan(FaultPlan {
            events: vec![
                down(2, 0, false),
                FaultEvent {
                    at: Time::from_millis(10),
                    processor: ProcessorId::new(0),
                    kind: FaultKind::Up,
                },
            ],
            ..FaultPlan::empty()
        });
        let report = Driver::new(config).run(tasks);
        assert!(report.is_consistent());
        assert_eq!(report.faults_seen, 1);
        assert_eq!(report.hits, 2);
    }

    #[test]
    fn spike_loss_orphans_dispatches_until_the_window_closes() {
        use crate::faults::SpikeWindow;
        let tasks: Vec<Task> = (0..5).map(|i| mk_task(i, 2, 0, 300, 2)).collect();
        let config = DriverConfig::new(2, Algorithm::rt_sads()).fault_plan(FaultPlan {
            spikes: vec![SpikeWindow {
                from: Time::ZERO,
                until: Time::from_micros(200),
            }],
            spike_loss: 1.0,
            ..FaultPlan::empty()
        });
        let report = Driver::new(config).run(tasks);
        assert!(report.is_consistent());
        assert!(report.orphaned > 0, "dispatches inside the window are lost");
        assert_eq!(report.hits, 5, "all complete once the window closes");
        assert_eq!(report.faults_seen, 0, "spikes are not processor faults");
    }

    #[test]
    fn spike_delay_defers_delivery() {
        use crate::faults::SpikeWindow;
        let tasks = vec![mk_task(0, 2, 0, 300, 1)];
        let config = DriverConfig::new(1, Algorithm::rt_sads()).fault_plan(FaultPlan {
            spikes: vec![SpikeWindow {
                from: Time::ZERO,
                until: Time::from_millis(10),
            }],
            spike_delay: Duration::from_millis(5),
            ..FaultPlan::empty()
        });
        let report = Driver::new(config).run(tasks);
        assert_eq!(report.hits, 1);
        assert!(
            report.completions[0].delivered >= Time::from_millis(5),
            "delivery pays the spike delay"
        );
    }

    #[test]
    fn traced_fault_run_emits_matching_events() {
        use paragon_des::trace::{RecordingTracer, TraceEvent};
        let tasks: Vec<Task> = (0..20).map(|i| mk_task(i, 5, 0, 400, 2)).collect();
        let config =
            DriverConfig::new(2, Algorithm::rt_sads()).fault_plan(plan(vec![down(10, 0, true)]));
        let mut tracer = RecordingTracer::new();
        let report = Driver::new(config).run_traced(tasks, &mut tracer);
        let failed = tracer.count_matching(|e| matches!(e, TraceEvent::ProcessorFailed { .. }));
        assert_eq!(failed, report.faults_seen);
        let orphans = tracer.count_matching(|e| matches!(e, TraceEvent::TaskOrphaned { .. }));
        assert_eq!(orphans, report.orphaned);
        let lost = tracer.count_matching(|e| matches!(e, TraceEvent::TaskLost { .. }));
        assert_eq!(lost, report.lost_in_flight);
    }

    #[test]
    fn sampled_fault_runs_stay_consistent_and_deterministic() {
        use crate::faults::FaultConfig;
        let tasks: Vec<Task> = (0..40).map(|i| mk_task(i, 3, i % 11, 120, 4)).collect();
        let cfg = || {
            DriverConfig::new(4, Algorithm::rt_sads())
                .seed(13)
                .faults(FaultConfig::fail_recover(8.0, Duration::from_millis(20)))
        };
        let a = Driver::new(cfg()).run(tasks.clone());
        let b = Driver::new(cfg()).run(tasks);
        assert!(a.is_consistent());
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.faults_seen, b.faults_seen);
        assert_eq!(a.orphaned, b.orphaned);
        assert_eq!(a.lost_in_flight, b.lost_in_flight);
    }

    #[test]
    fn sharded_run_reports_per_shard_busy_totals() {
        use rt_task::TopologySpec;
        let topo = TopologySpec::new(8, 4, 2, 0, 500, 1_000);
        let tasks: Vec<Task> = (0..24).map(|i| mk_task(i, 4, i % 7, 400, 8)).collect();
        let report = Driver::new(
            DriverConfig::new(8, Algorithm::rt_sads())
                .comm(CommModel::hierarchical(topo))
                .seed(5),
        )
        .run(tasks);
        assert!(report.is_consistent());
        assert_eq!(report.shard_busy.len(), 4);
        assert_eq!(
            report.shard_busy.iter().copied().sum::<Duration>(),
            report.worker_busy.iter().copied().sum::<Duration>(),
            "shard totals partition worker totals"
        );
        assert_eq!(report.shard_utilizations().len(), 4);
        // A 1-node topology is the flat machine: no shard breakdown, so its
        // report shape (and bytes) matches the pre-topology format.
        let flat = Driver::new(
            DriverConfig::new(8, Algorithm::rt_sads())
                .comm(CommModel::hierarchical(TopologySpec::flat(
                    8,
                    Duration::from_micros(500),
                )))
                .seed(5),
        )
        .run((0..24).map(|i| mk_task(i, 4, i % 7, 400, 8)).collect());
        assert!(flat.shard_busy.is_empty());
    }

    #[test]
    fn node_faults_down_whole_shards_and_stay_deterministic() {
        use crate::faults::FaultConfig;
        use rt_task::TopologySpec;
        let topo = TopologySpec::new(6, 3, 1, 0, 200, 200);
        let tasks: Vec<Task> = (0..40).map(|i| mk_task(i, 3, i % 11, 200, 6)).collect();
        let cfg = || {
            DriverConfig::new(6, Algorithm::rt_sads())
                .comm(CommModel::hierarchical(topo))
                .seed(29)
                .faults(
                    // Processor and node failures together so the
                    // already-down guard sees overlapping streams.
                    FaultConfig::fail_recover(6.0, Duration::from_millis(15))
                        .node_faults(4.0, Some(Duration::from_millis(25))),
                )
        };
        let a = Driver::new(cfg()).run(tasks.clone());
        let b = Driver::new(cfg()).run(tasks);
        assert!(a.is_consistent());
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.faults_seen, b.faults_seen);
        assert!(a.faults_seen > 0, "the node streams must actually fire");
    }
}
