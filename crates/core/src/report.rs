//! Per-phase records and the end-to-end run report.

use paragon_des::{Duration, Time};
use paragon_platform::CompletionRecord;
use sched_search::Termination;
use serde::{Deserialize, Serialize};

/// Diagnostics of one scheduling phase `j`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase index `j`.
    pub phase: u64,
    /// Phase start `t_s`.
    pub started: Time,
    /// Batch size after expiry filtering.
    pub batch_len: usize,
    /// Tasks dropped by the expiry filter at phase start.
    pub dropped: usize,
    /// Tasks still in the batch whose deadline lapsed while this phase was
    /// computing. They are *not* dropped yet — the next phase's expiry
    /// filter drops (and counts) them — so this never overlaps `dropped` of
    /// the same record, but each such task reappears in the next record's
    /// `dropped`.
    pub expired_mid_phase: usize,
    /// Allocated quantum `Q_s(j)` (after the driver's floor).
    pub quantum: Duration,
    /// Scheduling time actually consumed.
    pub consumed: Duration,
    /// Search vertices generated.
    pub vertices: u64,
    /// Backtracks performed.
    pub backtracks: u64,
    /// Assignments the incremental engine reverted while switching branches
    /// (O(1) each).
    pub undos: u64,
    /// Apply steps a per-pop root replay would have redone that the
    /// incremental engine skipped.
    pub replay_avoided: u64,
    /// Deepest feasible partial schedule reached.
    pub deepest: usize,
    /// Tasks scheduled (dispatched) by the phase.
    pub scheduled: usize,
    /// Distinct processors the phase's schedule used.
    pub processors_used: usize,
    /// How the phase's search ended.
    pub termination: Termination,
    /// Tasks handed back to the host by processor failures or lost dispatch
    /// messages since the previous phase boundary; they re-enter the next
    /// batch. A task may orphan more than once, so this is an event count.
    /// The run's final record also absorbs any fault fallout observed after
    /// the last phase, so these tallies sum to the run totals.
    pub orphaned: usize,
    /// Tasks killed mid-execution by a processor failure since the previous
    /// phase boundary (the final record also covers post-phase events).
    /// These are gone for good.
    pub lost_in_flight: usize,
    /// Processor failures the host observed since the previous phase
    /// boundary (the final record also covers post-phase events).
    pub faults: usize,
}

/// The outcome of one complete simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// The scheduling algorithm's display name.
    pub algorithm: String,
    /// Number of tasks submitted.
    pub total_tasks: usize,
    /// Tasks that completed by their deadline.
    pub hits: usize,
    /// Tasks dropped from batches because their deadline passed before they
    /// could be scheduled.
    pub dropped: usize,
    /// Tasks that were scheduled yet missed their deadline at execution time
    /// — the paper's theorem guarantees this is zero on a fault-free
    /// platform. Under fault injection the guarantee is conditional: a task
    /// queued behind a recovery, delayed by a communication spike, or
    /// re-batched after an orphaning may execute late, so this can be
    /// positive.
    pub executed_misses: usize,
    /// Every task execution, in delivery order.
    pub completions: Vec<CompletionRecord>,
    /// Per-phase diagnostics.
    pub phases: Vec<PhaseRecord>,
    /// Distinct workers that executed at least one task.
    pub workers_used: usize,
    /// Total busy (service) time per worker, indexed by processor.
    pub worker_busy: Vec<Duration>,
    /// Idle time per worker over `[0, finished_at]`, indexed by processor —
    /// the platform's own `Worker::idle_time` accounting, cross-checked
    /// against `worker_busy` in [`RunReport::is_consistent`]. Empty in
    /// report files written before this field existed (`serde(default)`).
    #[serde(default)]
    pub worker_idle: Vec<Duration>,
    /// Total busy time per node (shard) on a hierarchical platform, indexed
    /// by node: `shard_busy[n]` sums `worker_busy` over the node's
    /// processors. Empty on the flat machine and in report files written
    /// before topologies existed (`serde(default)`).
    #[serde(default)]
    pub shard_busy: Vec<Duration>,
    /// The instant the last completion finished (or the last phase ended).
    pub finished_at: Time,
    /// Orphaning events: tasks handed back to the host by failures or lost
    /// dispatch messages. A task may orphan more than once (dispatch, fail,
    /// re-dispatch, fail again), so this counts events, not tasks, and is
    /// *not* part of the [`RunReport::is_consistent`] partition — every
    /// orphaned task eventually lands in `hits`, `executed_misses`, or
    /// `dropped`.
    pub orphaned: usize,
    /// Tasks killed mid-execution by processor failures — a terminal
    /// outcome, disjoint from hits/misses/drops.
    pub lost_in_flight: usize,
    /// Processor failures applied during the run.
    pub faults_seen: usize,
}

impl RunReport {
    /// The paper's headline metric: fraction of tasks that completed by
    /// their deadline. An empty run (no tasks submitted) vacuously hit
    /// every deadline, so this returns `1.0` rather than `0/0 = NaN`.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.total_tasks == 0 {
            return 1.0;
        }
        self.hits as f64 / self.total_tasks as f64
    }

    /// Total scheduling time consumed across phases — the paper's
    /// "scheduling cost as the physical time required to run the scheduling
    /// algorithm".
    #[must_use]
    pub fn total_scheduling_time(&self) -> Duration {
        self.phases.iter().map(|p| p.consumed).sum()
    }

    /// Total vertices generated across phases.
    #[must_use]
    pub fn total_vertices(&self) -> u64 {
        self.phases.iter().map(|p| p.vertices).sum()
    }

    /// Total backtracks across phases.
    #[must_use]
    pub fn total_backtracks(&self) -> u64 {
        self.phases.iter().map(|p| p.backtracks).sum()
    }

    /// Total incremental-engine undo steps across phases.
    #[must_use]
    pub fn total_undos(&self) -> u64 {
        self.phases.iter().map(|p| p.undos).sum()
    }

    /// Total replay applies avoided by the incremental engine across phases.
    #[must_use]
    pub fn total_replay_avoided(&self) -> u64 {
        self.phases.iter().map(|p| p.replay_avoided).sum()
    }

    /// Total tasks observed expiring while a phase was computing, summed
    /// over phases. Each is also counted once in [`RunReport::dropped`]
    /// (when the next phase's filter removes it), so this is a breakdown,
    /// not an addition.
    #[must_use]
    pub fn total_expired_mid_phase(&self) -> usize {
        self.phases.iter().map(|p| p.expired_mid_phase).sum()
    }

    /// Number of phases that ended at a dead-end.
    #[must_use]
    pub fn dead_end_phases(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| p.termination == Termination::DeadEnd)
            .count()
    }

    /// Mean number of distinct processors used per non-empty schedule —
    /// the processor-coverage measure behind the paper's scalability
    /// conjecture. `None` if no phase scheduled anything.
    #[must_use]
    pub fn mean_processors_used(&self) -> Option<f64> {
        let used: Vec<usize> = self
            .phases
            .iter()
            .filter(|p| p.scheduled > 0)
            .map(|p| p.processors_used)
            .collect();
        if used.is_empty() {
            None
        } else {
            Some(used.iter().sum::<usize>() as f64 / used.len() as f64)
        }
    }

    /// Response time (completion − delivery-relevant arrival) of every
    /// executed task, in completion-record order. The arrival is not stored
    /// in the completion record, so this uses delivery as the baseline when
    /// `from_delivery` is `true`, and the start of the run otherwise — both
    /// useful: delivery-relative isolates queueing, absolute shows
    /// end-to-end latency for the paper's burst (where every arrival is 0).
    #[must_use]
    pub fn response_times(&self, from_delivery: bool) -> Vec<Duration> {
        self.completions
            .iter()
            .map(|c| {
                if from_delivery {
                    c.completion - c.delivered
                } else {
                    c.completion.saturating_since(Time::ZERO)
                }
            })
            .collect()
    }

    /// Mean response time of executed tasks (see
    /// [`RunReport::response_times`]); `None` if nothing executed.
    #[must_use]
    pub fn mean_response_time(&self, from_delivery: bool) -> Option<Duration> {
        let times = self.response_times(from_delivery);
        if times.is_empty() {
            return None;
        }
        let total: Duration = times.iter().copied().sum();
        Some(total / times.len() as u64)
    }

    /// Per-worker utilization over `[0, finished_at]`, in `[0, 1]`. Empty if
    /// the run finished instantly.
    #[must_use]
    pub fn worker_utilizations(&self) -> Vec<f64> {
        if self.finished_at == Time::ZERO {
            return vec![0.0; self.worker_busy.len()];
        }
        let horizon = self.finished_at.as_micros() as f64;
        self.worker_busy
            .iter()
            .map(|b| b.as_micros() as f64 / horizon)
            .collect()
    }

    /// Per-shard (node) utilization over `[0, finished_at]`, normalized by
    /// the shard's processor-seconds so a fully busy 4-processor node reads
    /// `1.0`, not `4.0`. Empty on flat runs, where [`RunReport::shard_busy`]
    /// is empty. Shard sizes come from re-partitioning `worker_busy.len()`
    /// processors over `shard_busy.len()` nodes, matching the contiguous
    /// balanced split of `rt_task::TopologySpec`.
    #[must_use]
    pub fn shard_utilizations(&self) -> Vec<f64> {
        if self.shard_busy.is_empty() {
            return Vec::new();
        }
        let horizon = self.finished_at.as_micros() as f64;
        let workers = self.worker_busy.len();
        let nodes = self.shard_busy.len();
        self.shard_busy
            .iter()
            .enumerate()
            .map(|(n, b)| {
                let base = workers / nodes;
                let size = base + usize::from(n < workers % nodes);
                let denom = horizon * size as f64;
                if denom == 0.0 {
                    0.0
                } else {
                    b.as_micros() as f64 / denom
                }
            })
            .collect()
    }

    /// Per-worker busy fractions `busy / (busy + idle)` from the platform's
    /// own busy/idle accounting, in `[0, 1]`. Falls back to the
    /// `finished_at` horizon only when `worker_idle` is absent entirely —
    /// a legacy report file written before the field existed — matching
    /// [`RunReport::worker_utilizations`].
    ///
    /// # Panics
    ///
    /// Panics when `worker_idle` is non-empty but its length disagrees with
    /// `worker_busy`: that is corrupt accounting ([`RunReport::is_consistent`]
    /// flags it), not a legacy file, and silently substituting the horizon
    /// estimate would mask it.
    #[must_use]
    pub fn busy_fractions(&self) -> Vec<f64> {
        if self.worker_idle.is_empty() {
            return self.worker_utilizations();
        }
        assert_eq!(
            self.worker_idle.len(),
            self.worker_busy.len(),
            "worker_idle/worker_busy length mismatch: corrupt report, not a legacy one"
        );
        self.worker_busy
            .iter()
            .zip(&self.worker_idle)
            .map(|(b, i)| {
                let total = b.as_micros() + i.as_micros();
                if total == 0 {
                    0.0
                } else {
                    b.as_micros() as f64 / total as f64
                }
            })
            .collect()
    }

    /// Min/mean/max of [`RunReport::busy_fractions`]; `None` when the run
    /// had no workers.
    #[must_use]
    pub fn utilization_summary(&self) -> Option<(f64, f64, f64)> {
        let fractions = self.busy_fractions();
        if fractions.is_empty() {
            return None;
        }
        let min = fractions.iter().copied().fold(f64::INFINITY, f64::min);
        let max = fractions.iter().copied().fold(0.0_f64, f64::max);
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        Some((min, mean, max))
    }

    /// Load-imbalance factor: busiest worker's busy time divided by the
    /// mean busy time. 1.0 = perfectly balanced; `None` if no work ran.
    #[must_use]
    pub fn load_imbalance(&self) -> Option<f64> {
        let total: u64 = self.worker_busy.iter().map(|b| b.as_micros()).sum();
        if total == 0 || self.worker_busy.is_empty() {
            return None;
        }
        let mean = total as f64 / self.worker_busy.len() as f64;
        let max = self
            .worker_busy
            .iter()
            .map(|b| b.as_micros())
            .max()
            .unwrap_or(0) as f64;
        Some(max / mean)
    }

    /// Internal consistency: every task is accounted for exactly once, the
    /// headline ratio is a well-defined probability (in particular not
    /// `NaN` for an empty run), and — when the per-worker idle times are
    /// present — busy and idle agree with the `[0, finished_at]` horizon
    /// worker by worker (`idle == horizon - busy`, saturating at zero for
    /// busy intervals a retroactive fault burned past the last surviving
    /// completion).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let ratio = self.hit_ratio();
        let horizon = self.finished_at.saturating_since(Time::ZERO);
        let idle_consistent = self.worker_idle.is_empty()
            || (self.worker_idle.len() == self.worker_busy.len()
                && self
                    .worker_busy
                    .iter()
                    .zip(&self.worker_idle)
                    .all(|(b, i)| *i == horizon.saturating_sub(*b)));
        // When per-shard totals are present they must partition the same
        // busy time the workers report, shard count bounded by workers.
        let shard_consistent = self.shard_busy.is_empty()
            || (self.shard_busy.len() <= self.worker_busy.len()
                && self.shard_busy.iter().copied().sum::<Duration>()
                    == self.worker_busy.iter().copied().sum::<Duration>());
        self.hits + self.executed_misses + self.dropped + self.lost_in_flight == self.total_tasks
            && self.completions.len() == self.hits + self.executed_misses
            && idle_consistent
            && shard_consistent
            && ratio.is_finite()
            && (0.0..=1.0).contains(&ratio)
    }

    /// Total orphaning events recorded at phase boundaries. Equals
    /// [`RunReport::orphaned`] when the run ended cleanly.
    #[must_use]
    pub fn total_phase_orphaned(&self) -> usize {
        self.phases.iter().map(|p| p.orphaned).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(termination: Termination, scheduled: usize, procs: usize) -> PhaseRecord {
        PhaseRecord {
            phase: 0,
            started: Time::ZERO,
            batch_len: 10,
            dropped: 0,
            expired_mid_phase: 1,
            quantum: Duration::from_micros(100),
            consumed: Duration::from_micros(60),
            vertices: 12,
            backtracks: 3,
            undos: 5,
            replay_avoided: 8,
            deepest: scheduled,
            scheduled,
            processors_used: procs,
            termination,
            orphaned: 0,
            lost_in_flight: 0,
            faults: 0,
        }
    }

    fn report(phases: Vec<PhaseRecord>) -> RunReport {
        RunReport {
            algorithm: "RT-SADS".into(),
            total_tasks: 10,
            hits: 7,
            dropped: 3,
            executed_misses: 0,
            completions: Vec::new(),
            phases,
            workers_used: 4,
            worker_busy: vec![
                Duration::from_millis(4),
                Duration::from_millis(2),
                Duration::from_millis(2),
                Duration::ZERO,
            ],
            shard_busy: Vec::new(),
            worker_idle: vec![
                Duration::from_millis(1),
                Duration::from_millis(3),
                Duration::from_millis(3),
                Duration::from_millis(5),
            ],
            finished_at: Time::from_millis(5),
            orphaned: 0,
            lost_in_flight: 0,
            faults_seen: 0,
        }
    }

    #[test]
    fn hit_ratio_and_aggregates() {
        let r = report(vec![
            record(Termination::QuantumExhausted, 4, 4),
            record(Termination::DeadEnd, 3, 2),
            record(Termination::DeadEnd, 0, 0),
        ]);
        assert!((r.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(r.total_scheduling_time(), Duration::from_micros(180));
        assert_eq!(r.total_vertices(), 36);
        assert_eq!(r.total_backtracks(), 9);
        assert_eq!(r.total_undos(), 15);
        assert_eq!(r.total_replay_avoided(), 24);
        assert_eq!(r.total_expired_mid_phase(), 3);
        assert_eq!(r.dead_end_phases(), 2);
        assert_eq!(r.mean_processors_used(), Some(3.0));
    }

    #[test]
    fn mean_processors_none_when_nothing_scheduled() {
        let r = report(vec![record(Termination::DeadEnd, 0, 0)]);
        assert_eq!(r.mean_processors_used(), None);
    }

    #[test]
    fn consistency_check() {
        let mut r = report(vec![]);
        // completions must match hits + executed misses; empty does not
        assert!(!r.is_consistent());
        r.hits = 0;
        r.dropped = 10;
        assert!(r.is_consistent());
    }

    #[test]
    fn response_times_from_completions() {
        use paragon_platform::CompletionRecord;
        use rt_task::{ProcessorId, TaskId};
        let mut r = report(vec![]);
        assert_eq!(r.mean_response_time(true), None);
        r.completions = vec![CompletionRecord {
            task: TaskId::new(0),
            processor: ProcessorId::new(0),
            delivered: Time::from_millis(1),
            start: Time::from_millis(2),
            completion: Time::from_millis(5),
            deadline: Time::from_millis(9),
            met_deadline: true,
            service: Duration::from_millis(3),
        }];
        assert_eq!(
            r.response_times(true),
            vec![Duration::from_millis(4)] // 5 - 1
        );
        assert_eq!(r.mean_response_time(false), Some(Duration::from_millis(5)));
    }

    #[test]
    fn utilization_and_imbalance() {
        let r = report(vec![]);
        let u = r.worker_utilizations();
        assert_eq!(u.len(), 4);
        assert!((u[0] - 0.8).abs() < 1e-12);
        assert_eq!(u[3], 0.0);
        // busiest 4ms, mean 2ms -> imbalance 2.0
        assert_eq!(r.load_imbalance(), Some(2.0));
        let mut idle = r.clone();
        idle.worker_busy = vec![Duration::ZERO; 4];
        assert_eq!(idle.load_imbalance(), None);
    }

    #[test]
    fn busy_fractions_from_platform_accounting() {
        let r = report(vec![]);
        let f = r.busy_fractions();
        assert_eq!(f.len(), 4);
        assert!((f[0] - 0.8).abs() < 1e-12, "4ms busy / 5ms horizon");
        assert_eq!(f[3], 0.0);
        let (min, mean, max) = r.utilization_summary().unwrap();
        assert_eq!(min, 0.0);
        assert!((max - 0.8).abs() < 1e-12);
        assert!((mean - 0.4).abs() < 1e-12);
        // Old report files have no worker_idle: fall back to the horizon.
        let mut old = r.clone();
        old.worker_idle.clear();
        assert_eq!(old.busy_fractions(), r.worker_utilizations());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn busy_fractions_rejects_a_non_legacy_length_mismatch() {
        // A truncated (but non-empty) idle vector is corrupt accounting,
        // not a legacy file: no silent fallback to the horizon estimate.
        let mut r = report(vec![]);
        r.worker_idle.pop();
        let _ = r.busy_fractions();
    }

    #[test]
    fn non_legacy_idle_length_mismatch_is_inconsistent() {
        let mut r = report(vec![]);
        r.hits = 0;
        r.dropped = 10;
        assert!(r.is_consistent());
        r.worker_idle.pop();
        assert!(
            !r.is_consistent(),
            "a non-empty worker_idle of the wrong length must be flagged"
        );
    }

    #[test]
    fn shard_busy_must_partition_worker_busy() {
        let mut r = report(vec![]);
        r.hits = 0;
        r.dropped = 10;
        // 4 workers on 2 nodes: (4+2)ms and (2+0)ms.
        r.shard_busy = vec![Duration::from_millis(6), Duration::from_millis(2)];
        assert!(r.is_consistent());
        let u = r.shard_utilizations();
        assert_eq!(u.len(), 2);
        // 6ms over 2 processors x 5ms horizon, 2ms over 2 x 5ms.
        assert!((u[0] - 0.6).abs() < 1e-12);
        assert!((u[1] - 0.2).abs() < 1e-12);
        r.shard_busy[1] = Duration::from_millis(3);
        assert!(!r.is_consistent(), "shard totals must sum to worker totals");
        r.shard_busy.clear();
        assert!(r.is_consistent(), "flat runs carry no shard totals");
        assert!(r.shard_utilizations().is_empty());
    }

    #[test]
    fn idle_accounting_must_agree_with_the_horizon() {
        let mut r = report(vec![]);
        r.hits = 0;
        r.dropped = 10;
        assert!(r.is_consistent());
        r.worker_idle[1] = Duration::from_millis(4); // 2ms busy + 4ms idle != 5ms
        assert!(!r.is_consistent(), "idle must equal horizon - busy");
        r.worker_idle.clear();
        assert!(r.is_consistent(), "absent idle vector is tolerated");
        // Busy time past the horizon (a fault burned the tail) saturates.
        r.worker_busy[0] = Duration::from_millis(7);
        r.worker_idle = vec![
            Duration::ZERO,
            Duration::from_millis(3),
            Duration::from_millis(3),
            Duration::from_millis(5),
        ];
        assert!(r.is_consistent());
    }

    #[test]
    fn lost_in_flight_joins_the_accounting_partition() {
        let mut r = report(vec![]);
        r.hits = 0;
        r.dropped = 9;
        r.lost_in_flight = 1;
        assert!(r.is_consistent(), "0 + 0 + 9 + 1 == 10");
        r.lost_in_flight = 2;
        assert!(!r.is_consistent(), "over-counted partition must fail");
    }

    #[test]
    fn phase_orphan_events_aggregate() {
        let mut a = record(Termination::QuantumExhausted, 2, 2);
        a.orphaned = 3;
        let mut b = record(Termination::DeadEnd, 0, 0);
        b.orphaned = 1;
        let r = report(vec![a, b]);
        assert_eq!(r.total_phase_orphaned(), 4);
    }

    #[test]
    fn hit_ratio_of_empty_run_is_vacuously_one() {
        let mut r = report(vec![]);
        r.total_tasks = 0;
        r.hits = 0;
        r.dropped = 0;
        let ratio = r.hit_ratio();
        assert!(ratio.is_finite(), "no NaN from 0/0");
        assert!((ratio - 1.0).abs() < 1e-12);
        assert!(r.is_consistent());
    }
}
