//! The myopic scheduling algorithm of Ramamritham, Stankovic and Zhao —
//! the classical dynamic real-time multiprocessor scheduler whose
//! techniques the paper says inspired D-COLS (references [3] and [6]).
//!
//! Myopic scheduling is a heuristic search with three signature mechanisms:
//!
//! 1. a **feasibility window**: only the `K` tightest-deadline remaining
//!    tasks are considered at each step (the search is "myopic"),
//! 2. an integrating **heuristic function** `H(T) = d_T + W · EST(T)`
//!    combining urgency (deadline) with resource availability (earliest
//!    start time),
//! 3. **limited backtracking**: when no task in the window fits, undo the
//!    most recent decision and try the next-best candidate, at most
//!    `max_backtracks` times per phase.
//!
//! This reproduction adapts it to the paper's phase/quantum regime: every
//! `(task, processor)` evaluation charges the scheduling meter, and a task
//! that ultimately cannot fit is left in the batch for a later phase rather
//! than aborting the schedule (the original algorithm's "reject" outcome
//! does not fit a soft real-time setting).

use crate::algorithm::PhaseScratch;
use paragon_des::Time;
use paragon_platform::SchedulingMeter;
use rt_task::{CommModel, ProcessorId, ResourceEats, Task};
use sched_search::{PathState, SearchOutcome, SearchStats, TaskOrder, Termination};

/// One scored candidate inside the feasibility window.
#[derive(Debug, Clone, Copy)]
struct Scored {
    task: usize,
    processor: usize,
    completion: Time,
    h: u64,
}

/// One committed decision, with the alternatives that were available at
/// that point (for backtracking).
#[derive(Debug, Clone)]
struct Decision {
    alternatives: Vec<Scored>,
    chosen: usize,
}

/// Runs one myopic scheduling phase. See the [module docs](self).
#[allow(clippy::too_many_arguments)]
pub(crate) fn myopic_phase(
    tasks: &[Task],
    comm: &CommModel,
    initial_finish: &[Time],
    now: Time,
    resources: &ResourceEats,
    window: usize,
    weight_pct: u32,
    max_backtracks: u32,
    meter: &mut SchedulingMeter,
    scratch: &mut PhaseScratch,
) -> SearchOutcome {
    let mut stats = SearchStats::default();
    if tasks.is_empty() {
        return SearchOutcome {
            assignments: Vec::new(),
            termination: Termination::Leaf,
            n_viable: 0,
            makespan: initial_finish.iter().copied().max().unwrap_or(Time::ZERO),
            stats,
            provenance: None,
        };
    }

    let PhaseScratch {
        search,
        state: state_slot,
        order,
        ..
    } = scratch;
    TaskOrder::EarliestDeadline.order_into(tasks, now, order);
    let order: &[usize] = order;
    let mut decisions: Vec<Decision> = Vec::new();
    let mut backtracks_left = max_backtracks;
    let mut skipped: Vec<bool> = vec![false; tasks.len()];
    let mut exhausted = false;

    // Rebuilds, in place, the path state implied by the current decision
    // stack (reset + replay — backtracks are rare and shallow here, so the
    // simple rebuild beats carrying an undo log through the window logic).
    let rebuild = |state: &mut PathState, decisions: &[Decision]| {
        state.reset(initial_finish, tasks.len(), resources);
        for d in decisions {
            let c = d.alternatives[d.chosen];
            state.apply(tasks, comm, c.task, ProcessorId::new(c.processor));
        }
    };

    match state_slot.as_mut() {
        Some(s) => s.reset(initial_finish, tasks.len(), resources),
        None => {
            *state_slot = Some(PathState::with_resources(
                initial_finish.to_vec(),
                tasks.len(),
                resources.clone(),
            ));
        }
    }
    let state = state_slot.as_mut().expect("state initialized above");
    let mut window_tasks: Vec<usize> = Vec::new();
    loop {
        // The feasibility window: the first `window` unassigned, unskipped
        // tasks in deadline order.
        window_tasks.clear();
        window_tasks.extend(
            order
                .iter()
                .copied()
                .filter(|&t| !state.is_assigned(t) && !skipped[t])
                .take(window.max(1)),
        );
        if window_tasks.is_empty() {
            break;
        }

        // Score every (task, best processor) pair in the window.
        let mut scored: Vec<Scored> = Vec::new();
        'outer: for &t in &window_tasks {
            let mut best: Option<(usize, Time)> = None;
            for p in ProcessorId::all(state.processors()) {
                if !meter.charge_vertex() {
                    stats.vertices_generated += 1;
                    exhausted = true;
                    break 'outer;
                }
                stats.vertices_generated += 1;
                let completion = state.completion_if(tasks, comm, t, p);
                if tasks[t].meets_deadline(completion) {
                    stats.feasible_children += 1;
                    if best.is_none_or(|(_, c)| completion < c) {
                        best = Some((p.index(), completion));
                    }
                } else {
                    stats.infeasible_children += 1;
                }
            }
            if let Some((p, completion)) = best {
                // H(T) = d + W * EST; EST expressed through the completion
                // (start + service) keeps the ordering and avoids a second
                // pass.
                let h = tasks[t].deadline().as_micros()
                    + u64::from(weight_pct) * completion.as_micros() / 100;
                scored.push(Scored {
                    task: t,
                    processor: p,
                    completion,
                    h,
                });
            }
        }
        if exhausted {
            break;
        }
        stats.expansions += 1;

        if scored.is_empty() {
            // Not strongly feasible: backtrack if allowed, otherwise give
            // up on the tightest window task (it stays in the batch).
            if backtracks_left > 0 && !decisions.is_empty() {
                backtracks_left -= 1;
                stats.backtracks += 1;
                // undo decisions until one has an untried alternative
                while let Some(mut last) = decisions.pop() {
                    if last.chosen + 1 < last.alternatives.len() {
                        last.chosen += 1;
                        decisions.push(last);
                        break;
                    }
                }
                rebuild(state, &decisions);
            } else {
                skipped[window_tasks[0]] = true;
                stats.level_skips += 1;
            }
            continue;
        }

        scored.sort_by_key(|s| (s.h, s.completion, s.task));
        let choice = scored[0];
        state.apply(tasks, comm, choice.task, ProcessorId::new(choice.processor));
        stats.deepest = state.depth();
        decisions.push(Decision {
            alternatives: scored,
            chosen: 0,
        });
    }

    let complete = state.depth() == tasks.len();
    let termination = if exhausted {
        Termination::QuantumExhausted
    } else if complete {
        Termination::Leaf
    } else {
        Termination::DeadEnd
    };
    // Myopic does not screen: every batch task counts as viable, so `Leaf`
    // here means the full batch is covered (see `SearchOutcome::n_viable`).
    let makespan = state.makespan();
    // Copy into the pooled buffer; the state stays in the scratch.
    let mut assignments = search.take_assignment_buffer();
    assignments.extend_from_slice(state.assignments());
    SearchOutcome {
        assignments,
        termination,
        n_viable: tasks.len(),
        makespan,
        stats,
        // The myopic baseline does not record decision evidence.
        provenance: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;
    use paragon_platform::HostParams;
    use rt_task::{AffinitySet, TaskId};

    fn mk_task(id: u64, p_us: u64, d_us: u64, aff: &[usize]) -> Task {
        let mut builder = Task::builder(TaskId::new(id))
            .processing_time(Duration::from_micros(p_us))
            .deadline(Time::from_micros(d_us));
        if !aff.is_empty() {
            builder = builder.affinity(
                aff.iter()
                    .map(|&k| ProcessorId::new(k))
                    .collect::<AffinitySet>(),
            );
        } else {
            builder = builder.affinity(AffinitySet::all(8));
        }
        builder.build()
    }

    fn free_meter() -> SchedulingMeter {
        SchedulingMeter::new(HostParams::free(), Duration::ZERO)
    }

    fn run(
        tasks: &[Task],
        comm: &CommModel,
        workers: usize,
        window: usize,
        backtracks: u32,
        meter: &mut SchedulingMeter,
    ) -> SearchOutcome {
        let initial = vec![Time::ZERO; workers];
        myopic_phase(
            tasks,
            comm,
            &initial,
            Time::ZERO,
            &ResourceEats::new(),
            window,
            100,
            backtracks,
            meter,
            &mut PhaseScratch::new(),
        )
    }

    #[test]
    fn empty_batch_is_leaf() {
        let out = run(&[], &CommModel::free(), 2, 7, 5, &mut free_meter());
        assert_eq!(out.termination, Termination::Leaf);
    }

    #[test]
    fn schedules_feasible_batch_completely() {
        let tasks: Vec<Task> = (0..10).map(|i| mk_task(i, 100, 100_000, &[])).collect();
        let out = run(&tasks, &CommModel::free(), 4, 7, 5, &mut free_meter());
        assert_eq!(out.termination, Termination::Leaf);
        assert_eq!(out.assignments.len(), 10);
        for a in &out.assignments {
            assert!(tasks[a.task].meets_deadline(a.completion));
        }
    }

    #[test]
    fn window_limits_consideration_but_not_correctness() {
        // Even with window 1 (fully myopic) all feasible tasks get placed.
        let tasks: Vec<Task> = (0..8).map(|i| mk_task(i, 100, 50_000, &[])).collect();
        let out = run(&tasks, &CommModel::free(), 2, 1, 0, &mut free_meter());
        assert_eq!(out.termination, Termination::Leaf);
        assert_eq!(out.assignments.len(), 8);
    }

    #[test]
    fn infeasible_tasks_are_skipped_not_fatal() {
        let tasks = vec![
            mk_task(0, 100, 50, &[]), // can never fit
            mk_task(1, 100, 100_000, &[]),
        ];
        let out = run(&tasks, &CommModel::free(), 1, 7, 2, &mut free_meter());
        assert_eq!(out.termination, Termination::DeadEnd);
        assert_eq!(out.assignments.len(), 1);
        assert_eq!(out.assignments[0].task, 1);
        assert!(out.stats.level_skips >= 1);
    }

    #[test]
    fn backtracking_recovers_from_a_greedy_trap() {
        // Task 0 (tightest deadline) fits anywhere; task 1 only fits on P0
        // and only first. Greedy min-H puts task 0 on P0 (identical
        // completion, lowest index); backtracking must flip it to P1.
        let comm = CommModel::constant(Duration::from_micros(10_000));
        let tasks = vec![mk_task(0, 100, 150, &[0, 1]), mk_task(1, 100, 150, &[0])];
        let initial = vec![Time::ZERO; 2];
        let out = myopic_phase(
            &tasks,
            &comm,
            &initial,
            Time::ZERO,
            &ResourceEats::new(),
            7,
            100,
            3,
            &mut free_meter(),
            &mut PhaseScratch::new(),
        );
        assert_eq!(out.termination, Termination::Leaf, "stats: {:?}", out.stats);
        assert!(out.stats.backtracks > 0);
        let a1 = out.assignments.iter().find(|a| a.task == 1).unwrap();
        assert_eq!(a1.processor.index(), 0);
    }

    #[test]
    fn zero_backtracks_degrades_gracefully() {
        let comm = CommModel::constant(Duration::from_micros(10_000));
        let tasks = vec![mk_task(0, 100, 150, &[0, 1]), mk_task(1, 100, 150, &[0])];
        let initial = vec![Time::ZERO; 2];
        let out = myopic_phase(
            &tasks,
            &comm,
            &initial,
            Time::ZERO,
            &ResourceEats::new(),
            7,
            100,
            0,
            &mut free_meter(),
            &mut PhaseScratch::new(),
        );
        // without backtracking, task 1 is lost but task 0 still runs
        assert_eq!(out.termination, Termination::DeadEnd);
        assert_eq!(out.assignments.len(), 1);
    }

    #[test]
    fn respects_the_meter() {
        let tasks: Vec<Task> = (0..50).map(|i| mk_task(i, 100, 1_000_000, &[])).collect();
        let mut meter = SchedulingMeter::new(
            HostParams::new(Duration::from_micros(1)),
            Duration::from_micros(13),
        );
        let out = run(&tasks, &CommModel::free(), 2, 7, 5, &mut meter);
        assert_eq!(out.termination, Termination::QuantumExhausted);
        assert!(out.assignments.len() < 50);
        assert_eq!(out.stats.vertices_generated, meter.vertices());
    }

    #[test]
    fn prefers_urgent_tasks_via_h() {
        // Two tasks, same cost: the tighter deadline must be placed first
        // (and thus get the earlier slot) even though it appears later in
        // the input.
        let tasks = vec![mk_task(0, 100, 100_000, &[]), mk_task(1, 100, 5_000, &[])];
        let out = run(&tasks, &CommModel::free(), 1, 7, 5, &mut free_meter());
        assert_eq!(out.assignments[0].task, 1);
        assert_eq!(out.assignments[1].task, 0);
    }
}
