//! Property tests for the JSONL trace format: every event round-trips
//! through serde, and a trace written in simulation-time order parses back
//! monotonically ordered.

use paragon_des::trace::{PlacementProbe, ScreenProbe, TraceEvent, TraceSink};
use paragon_des::{Duration, Time};
use proptest::prelude::*;
use rt_telemetry::jsonl::{parse_trace, JsonlTracer, TraceLine};

/// Builds one event from raw generated scalars; `kind` picks the variant.
fn build_event(kind: u8, a: u64, b: u64, signed: i64) -> TraceEvent {
    match kind % 13 {
        0 => TraceEvent::PhaseStarted {
            phase: a,
            batch_len: b as usize,
            quantum: Duration::from_micros(signed.unsigned_abs()),
        },
        1 => TraceEvent::PhaseEnded {
            phase: a,
            scheduled: b as usize,
            consumed: Duration::from_micros(signed.unsigned_abs()),
            vertices: a.wrapping_mul(3),
            backtracks: b,
            undos: a.wrapping_mul(5),
            replay_avoided: b.wrapping_mul(7),
        },
        2 => TraceEvent::TaskDispatched {
            task: a,
            processor: b as usize,
            slack_us: signed,
        },
        3 => TraceEvent::CommDelay {
            task: a,
            processor: b as usize,
            delay_us: signed.unsigned_abs(),
        },
        4 => TraceEvent::TaskStarted {
            task: a,
            processor: b as usize,
        },
        5 => TraceEvent::TaskCompleted {
            task: a,
            processor: b as usize,
            met_deadline: signed >= 0,
            lateness_us: signed,
        },
        6 => TraceEvent::TaskDropped { task: a },
        7 => TraceEvent::TaskExpiredMidPhase { task: a, phase: b },
        8 => TraceEvent::TaskAdmitted {
            task: a,
            arrival_us: b,
            deadline_us: a.wrapping_add(b),
            processing_us: signed.unsigned_abs(),
        },
        9 => TraceEvent::TaskScreened {
            task: a,
            phase: b,
            deadline_us: signed.unsigned_abs(),
            probes: vec![ScreenProbe {
                processor: b as usize,
                available_us: a,
                demand_us: signed.unsigned_abs(),
                completion_us: a.wrapping_add(signed.unsigned_abs()),
            }],
        },
        10 => TraceEvent::PlacementDecided {
            task: a,
            phase: b,
            processor: b as usize,
            completion_us: a,
            cost_us: a.wrapping_add(b),
            shard: (signed >= 0).then_some((b as usize) % 3),
            rejected: vec![PlacementProbe {
                processor: (b as usize).wrapping_add(1),
                completion_us: a.wrapping_add(1),
                cost_us: a.wrapping_add(2),
                shard: (b as usize) % 3,
            }],
        },
        11 => TraceEvent::SchedulerOverhead {
            phase: a,
            allocated_us: b,
            wall_ns: signed.unsigned_abs(),
        },
        _ => TraceEvent::Note(format!("note-{a}-{signed} with \"quotes\" and \\slashes\\")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_event_round_trips_through_jsonl(
        kind in 0u8..=12,
        a in 0u64..1_000_000,
        b in 0u64..64,
        signed in -1_000_000i64..1_000_000,
        t in 0u64..10_000_000,
    ) {
        let event = build_event(kind, a, b, signed);
        let mut sink = JsonlTracer::new(Vec::new());
        sink.emit(Time::from_micros(t), event.clone());
        prop_assert_eq!(sink.lines(), 1);
        let buf = sink.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        // The header manifest plus exactly one event line, and the event
        // line parses back to the same event.
        prop_assert_eq!(text.lines().count(), 2);
        let event_line = text.lines().nth(1).unwrap();
        let line: TraceLine = serde_json::from_str(event_line).unwrap();
        prop_assert_eq!(line.t_us, t);
        prop_assert_eq!(line.event, event);
    }

    #[test]
    fn traces_written_in_time_order_parse_back_monotone(
        raw in prop::collection::vec(
            (0u8..=12, 0u64..100_000, 0u64..16, -100_000i64..100_000, 0u64..1_000_000),
            1..60,
        ),
    ) {
        // The driver emits in non-decreasing simulation time per stream;
        // model that by sorting the generated timestamps.
        let mut times: Vec<u64> = raw.iter().map(|r| r.4).collect();
        times.sort_unstable();
        let mut sink = JsonlTracer::new(Vec::new());
        for ((kind, a, b, signed, _), t) in raw.iter().zip(&times) {
            sink.emit(Time::from_micros(*t), build_event(*kind, *a, *b, *signed));
        }
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let parsed = parse_trace(&text).unwrap();
        prop_assert_eq!(parsed.len(), raw.len());
        for pair in parsed.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "trace must stay time-ordered");
        }
    }
}
