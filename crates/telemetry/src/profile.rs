//! Sampling-free, stage-scoped micro-profiler for the search hot path.
//!
//! The search engine owns one [`StageProfiler`] per scratch and brackets
//! each pipeline stage — feasibility screen, SoA completion fill, cost
//! fold, shard ranking, apply/undo branch walks, parallel merge — with a
//! [`StageProfiler::start`]/[`StageProfiler::stop`] pair. Disabled (the
//! default) the pair costs two predictable branches and touches no clock,
//! so the instrumented engine stays bit-identical and allocation-free;
//! enabled, each span reads the shared monotonic clock
//! ([`crate::clock::MonotonicInstant`]) and accumulates nanoseconds into a
//! fixed per-stage array. Timers sit at stage granularity — around a whole
//! `completions_into` call or a whole cost fold — never inside the
//! per-candidate inner loops, so the enabled profiler perturbs the thing
//! it measures as little as possible.
//!
//! One phase's accumulation drains into a
//! [`PhaseProfile`](paragon_des::trace::PhaseProfile) via
//! [`StageProfiler::take`], which the driver emits as
//! [`TraceEvent::PhaseProfiled`](paragon_des::trace::TraceEvent) for the
//! collector, the Perfetto exporter and the `rtsads_sim profile`
//! subcommand to consume. On split phases each subtree walk profiles into
//! its own scratch's profiler; the engine folds those into the main one
//! with [`StageProfiler::absorb`] and records one
//! [`WalkProfile`](paragon_des::trace::WalkProfile) per walk for the
//! imbalance diagnostics.

use paragon_des::trace::{PhaseProfile, WalkProfile};

use crate::clock::MonotonicInstant;

/// The search pipeline stages the profiler attributes time to. The
/// discriminants index [`StageProfiler`]'s fixed accumulator array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Phase-level feasibility screen over the batch.
    Screen = 0,
    /// SoA completion-column fill across all candidate processors.
    Fill = 1,
    /// Per-candidate `ce_k` cost fold and child ordering.
    Cost = 2,
    /// Shard gate and shard-first ranking (hierarchical topologies).
    Shard = 3,
    /// `PathState::apply` chain walks when switching branches.
    Apply = 4,
    /// `PathState::undo` pops when backtracking.
    Undo = 5,
    /// Parallel reduction: best-vertex merge and counter absorption.
    Merge = 6,
    /// Child ordering and push: sorting the candidate batch and selecting
    /// the branch/best-vertex updates.
    Select = 7,
}

/// Number of stages — the length of the accumulator array.
pub const STAGE_COUNT: usize = 8;

/// A per-scratch stage-time accumulator. See the module docs for the
/// enable/measure/drain lifecycle.
#[derive(Debug, Default, Clone)]
pub struct StageProfiler {
    enabled: bool,
    stage_ns: [u64; STAGE_COUNT],
    walks: Vec<WalkProfile>,
}

impl StageProfiler {
    /// A disabled profiler with empty accumulators.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns measurement on or off. Disabling does not clear accumulated
    /// time; [`take`](StageProfiler::take) or
    /// [`reset`](StageProfiler::reset) do.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether spans currently read the clock.
    #[must_use]
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span: reads the monotonic clock when enabled, otherwise
    /// returns `None` for the matching [`stop`](StageProfiler::stop) to
    /// ignore. The `Option` is the whole off-switch — no clock read, no
    /// arithmetic, one branch on each side.
    #[must_use]
    #[inline]
    pub fn start(&self) -> Option<MonotonicInstant> {
        self.enabled.then(MonotonicInstant::now)
    }

    /// Closes a span opened by [`start`](StageProfiler::start), crediting
    /// the elapsed wall nanoseconds to `stage`.
    #[inline]
    pub fn stop(&mut self, stage: Stage, started: Option<MonotonicInstant>) {
        if let Some(t) = started {
            self.stage_ns[stage as usize] += t.elapsed_ns();
        }
    }

    /// Credits raw nanoseconds to a stage — used when a span's clock reads
    /// happened elsewhere (folding a subtree walk's profiler, or timing a
    /// region whose start predates the profiler borrow).
    #[inline]
    pub fn add_ns(&mut self, stage: Stage, ns: u64) {
        if self.enabled {
            self.stage_ns[stage as usize] += ns;
        }
    }

    /// Folds another profiler's accumulated stage times into this one
    /// (no-op when disabled). Walk telemetry is deliberately not folded —
    /// walks are recorded once, by the merge site, via
    /// [`record_walk`](StageProfiler::record_walk).
    pub fn absorb(&mut self, other: &StageProfiler) {
        if self.enabled {
            for (mine, theirs) in self.stage_ns.iter_mut().zip(other.stage_ns.iter()) {
                *mine += theirs;
            }
        }
    }

    /// Records one subtree walk's telemetry (no-op when disabled).
    pub fn record_walk(&mut self, walk: WalkProfile) {
        if self.enabled {
            self.walks.push(walk);
        }
    }

    /// Nanoseconds accumulated so far for one stage.
    #[must_use]
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage_ns[stage as usize]
    }

    /// Total accumulated nanoseconds across all stages.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }

    /// Drains the accumulation into a wire-format [`PhaseProfile`] and
    /// resets the accumulators for the next phase. The walk vector is
    /// moved out, not cloned, so a phase with no walks allocates nothing.
    pub fn take(&mut self) -> PhaseProfile {
        let [screen_ns, fill_ns, cost_ns, shard_ns, apply_ns, undo_ns, merge_ns, select_ns] =
            self.stage_ns;
        self.stage_ns = [0; STAGE_COUNT];
        PhaseProfile {
            screen_ns,
            fill_ns,
            cost_ns,
            shard_ns,
            apply_ns,
            undo_ns,
            merge_ns,
            select_ns,
            walks: std::mem::take(&mut self.walks),
        }
    }

    /// Clears the accumulators without building a record. Keeps the walk
    /// vector's capacity.
    pub fn reset(&mut self) {
        self.stage_ns = [0; STAGE_COUNT];
        self.walks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_accumulates_nothing() {
        let mut p = StageProfiler::new();
        assert!(!p.enabled());
        let span = p.start();
        assert!(span.is_none(), "disabled start must not read the clock");
        p.stop(Stage::Fill, span);
        p.add_ns(Stage::Cost, 1_000);
        p.record_walk(WalkProfile {
            termination: "leaf".into(),
            vertices: 1,
            end_depth: 1,
            pops: 0,
            committed: true,
        });
        let rec = p.take();
        assert_eq!(rec.total_ns(), 0);
        assert!(rec.walks.is_empty());
    }

    #[test]
    fn enabled_spans_credit_their_stage_and_take_resets() {
        let mut p = StageProfiler::new();
        p.set_enabled(true);
        let span = p.start();
        assert!(span.is_some());
        // Burn a little work so the span is strictly positive on any clock.
        let mut x = 0u64;
        for i in 0..50_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        std::hint::black_box(x);
        p.stop(Stage::Fill, span);
        p.add_ns(Stage::Merge, 123);
        let fill = p.stage_ns(Stage::Fill);
        assert!(fill > 0);
        assert_eq!(p.stage_ns(Stage::Merge), 123);
        assert_eq!(p.total_ns(), fill + 123);

        let rec = p.take();
        assert_eq!(rec.fill_ns, fill);
        assert_eq!(rec.merge_ns, 123);
        assert_eq!(p.total_ns(), 0, "take() resets the accumulators");
    }

    #[test]
    fn absorb_folds_stage_times_but_not_walks() {
        let mut sub = StageProfiler::new();
        sub.set_enabled(true);
        sub.add_ns(Stage::Cost, 40);
        sub.add_ns(Stage::Apply, 2);
        sub.record_walk(WalkProfile {
            termination: "dead_end".into(),
            vertices: 9,
            end_depth: 3,
            pops: 1,
            committed: false,
        });

        let mut main = StageProfiler::new();
        main.set_enabled(true);
        main.add_ns(Stage::Cost, 10);
        main.absorb(&sub);
        assert_eq!(main.stage_ns(Stage::Cost), 50);
        assert_eq!(main.stage_ns(Stage::Apply), 2);
        let rec = main.take();
        assert!(rec.walks.is_empty(), "absorb must not copy walks");
    }

    #[test]
    fn record_walk_feeds_the_phase_profile() {
        let mut p = StageProfiler::new();
        p.set_enabled(true);
        for (v, term) in [(30u64, "dead_end"), (10, "leaf")] {
            p.record_walk(WalkProfile {
                termination: term.into(),
                vertices: v,
                end_depth: 4,
                pops: 2,
                committed: true,
            });
        }
        let rec = p.take();
        assert_eq!(rec.walks.len(), 2);
        assert!((rec.imbalance() - 1.5).abs() < 1e-12);
        let rec2 = p.take();
        assert!(rec2.walks.is_empty(), "walks drained by the first take");
    }
}
