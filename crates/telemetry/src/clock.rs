//! The one monotonic wall clock in the workspace.
//!
//! The simulator runs on virtual time ([`paragon_des::Time`]); the only
//! code allowed to look at the host's clock is instrumentation that
//! measures *itself* — the scheduler-overhead meter, the search
//! stage-profiler ([`crate::profile`]) and the experiments progress
//! ticker. All of them read it through [`MonotonicInstant`] so the two
//! time domains cannot be mixed by accident: the type wraps
//! [`std::time::Instant`], exposes only elapsed durations, and offers no
//! conversion to or from virtual [`Time`](paragon_des::Time) — adding one
//! would be a compile error waiting to be written, which is the point.

/// An opaque monotonic wall-clock anchor.
///
/// Construct with [`MonotonicInstant::now`], read with
/// [`elapsed_ns`](MonotonicInstant::elapsed_ns) (or
/// [`elapsed`](MonotonicInstant::elapsed) for a [`std::time::Duration`]).
/// There is deliberately no arithmetic against virtual time and no
/// constructor from a raw number: wall time enters the system only as a
/// measured span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonotonicInstant(std::time::Instant);

impl MonotonicInstant {
    /// Reads the host's monotonic clock.
    #[must_use]
    #[inline]
    pub fn now() -> Self {
        MonotonicInstant(std::time::Instant::now())
    }

    /// Wall time elapsed since this anchor.
    #[must_use]
    #[inline]
    pub fn elapsed(&self) -> std::time::Duration {
        self.0.elapsed()
    }

    /// Wall nanoseconds elapsed since this anchor, saturating at
    /// `u64::MAX` (≈ 584 years — unreachable in practice, but the cast
    /// from `u128` must go somewhere).
    #[must_use]
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let anchor = MonotonicInstant::now();
        let a = anchor.elapsed_ns();
        // Burn a little real work so the second reading can only grow.
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(x);
        let b = anchor.elapsed_ns();
        assert!(b >= a, "monotonic clock ran backwards: {a} then {b}");
    }

    #[test]
    fn elapsed_ns_matches_elapsed_duration() {
        let anchor = MonotonicInstant::now();
        let ns = anchor.elapsed_ns();
        let dur = anchor.elapsed();
        // The second read happens after the first, so the duration form
        // can only be at least as large.
        assert!(u128::from(ns) <= dur.as_nanos() + 1_000_000);
    }

    #[test]
    fn instants_are_copy_and_comparable() {
        let a = MonotonicInstant::now();
        let b = a; // Copy — both remain usable.
        assert_eq!(a, b);
        let _ = a.elapsed_ns();
        let _ = b.elapsed_ns();
    }
}
