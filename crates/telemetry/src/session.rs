//! One-stop wiring for a fully instrumented run: open the requested output
//! files, hand the simulator a single fan-out sink, then write everything
//! on [`TelemetrySession::finish`]. Used by both the `rtsads_sim` binary
//! and the experiments runner so their flags behave identically.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::collector::MetricsCollector;
use crate::jsonl::JsonlTracer;
use crate::metrics::MetricsRegistry;
use crate::perfetto::PerfettoTracer;
use crate::sink::MultiSink;
use crate::timeseries::{TimeSeriesRecorder, DEFAULT_WINDOW_US};

/// The telemetry outputs of one simulation run.
///
/// Create with [`TelemetrySession::create`], pass [`TelemetrySession::sink`]
/// to `Driver::run_traced`, optionally fold report-level metrics in via
/// [`TelemetrySession::registry_mut`], then call
/// [`TelemetrySession::finish`] to flush the files.
#[derive(Debug)]
pub struct TelemetrySession {
    jsonl: Option<(PathBuf, JsonlTracer<BufWriter<File>>)>,
    perfetto: Option<(PathBuf, PerfettoTracer)>,
    metrics_out: Option<PathBuf>,
    collector: MetricsCollector,
    timeseries: Option<TimeSeriesRecorder>,
    timeseries_out: Option<PathBuf>,
}

impl TelemetrySession {
    /// Opens the requested outputs. Metrics are always collected (they are
    /// cheap); `metrics_out` only controls whether they are written. A
    /// Perfetto output implies a windowed time-series recorder (at the
    /// default window width) so the timeline gains counter tracks; call
    /// [`TelemetrySession::enable_timeseries`] to also write the series to
    /// a file or change the window width.
    pub fn create(
        trace_out: Option<&Path>,
        metrics_out: Option<&Path>,
        perfetto_out: Option<&Path>,
    ) -> std::io::Result<Self> {
        let jsonl = match trace_out {
            Some(p) => {
                let file = File::create(p)?;
                Some((p.to_path_buf(), JsonlTracer::new(BufWriter::new(file))))
            }
            None => None,
        };
        Ok(TelemetrySession {
            jsonl,
            timeseries: perfetto_out
                .is_some()
                .then(|| TimeSeriesRecorder::new(DEFAULT_WINDOW_US)),
            perfetto: perfetto_out.map(|p| (p.to_path_buf(), PerfettoTracer::new())),
            metrics_out: metrics_out.map(Path::to_path_buf),
            collector: MetricsCollector::new(),
            timeseries_out: None,
        })
    }

    /// Enables (or reconfigures) the windowed time-series recorder: the
    /// series is written to `out` on [`TelemetrySession::finish`] (CSV, or
    /// JSONL when the extension is `.jsonl`), with windows of `window_us`
    /// microseconds of virtual time. Call before [`TelemetrySession::sink`]
    /// so the recorder sees the whole run.
    pub fn enable_timeseries(&mut self, out: Option<&Path>, window_us: u64) {
        self.timeseries = Some(TimeSeriesRecorder::new(window_us));
        self.timeseries_out = out.map(Path::to_path_buf);
    }

    /// The combined sink to run the simulation against.
    pub fn sink(&mut self) -> MultiSink<'_> {
        let mut multi = MultiSink::new().with(&mut self.collector);
        if let Some((_, j)) = self.jsonl.as_mut() {
            multi = multi.with(j);
        }
        if let Some((_, p)) = self.perfetto.as_mut() {
            multi = multi.with(p);
        }
        if let Some(ts) = self.timeseries.as_mut() {
            multi = multi.with(ts);
        }
        multi
    }

    /// The metrics aggregated so far — for folding in values that live in
    /// the final report rather than the event stream (worker busy/idle).
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        self.collector.registry_mut()
    }

    /// Read access to the aggregated metrics.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        self.collector.registry()
    }

    /// Flushes every requested output; `workers` names the processor tracks
    /// in the Perfetto file. Returns the paths written.
    pub fn finish(self, workers: usize) -> std::io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        if let Some((path, sink)) = self.jsonl {
            sink.finish()?;
            written.push(path);
        }
        let series = self.timeseries.map(TimeSeriesRecorder::finish);
        if let (Some(series), Some(path)) = (&series, self.timeseries_out) {
            let jsonl = path.extension().is_some_and(|e| e == "jsonl");
            let text = if jsonl {
                series.to_jsonl()
            } else {
                series.to_csv()
            };
            std::fs::write(&path, text)?;
            written.push(path);
        }
        if let Some((path, mut buffer)) = self.perfetto {
            if let Some(series) = series {
                buffer.set_counters(series);
            }
            let file = File::create(&path)?;
            buffer.write_chrome_trace(BufWriter::new(file), workers)?;
            written.push(path);
        }
        if let Some(path) = self.metrics_out {
            let mut f = File::create(&path)?;
            f.write_all(self.collector.registry().to_json().as_bytes())?;
            f.write_all(b"\n")?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::trace::{TraceEvent, TraceSink};
    use paragon_des::Time;

    #[test]
    fn session_writes_all_requested_outputs() {
        let dir = std::env::temp_dir().join("rt-telemetry-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let (trace, metrics, perfetto) = (
            dir.join("t.jsonl"),
            dir.join("m.json"),
            dir.join("p.trace.json"),
        );
        let mut session =
            TelemetrySession::create(Some(&trace), Some(&metrics), Some(&perfetto)).unwrap();
        {
            let mut sink = session.sink();
            assert!(sink.enabled());
            sink.emit(Time::from_micros(1), TraceEvent::TaskDropped { task: 1 });
        }
        session.registry_mut().set_gauge("worker.0.busy_us", 5.0);
        let written = session.finish(1).unwrap();
        assert_eq!(written.len(), 3);
        assert!(std::fs::read_to_string(&trace)
            .unwrap()
            .contains("TaskDropped"));
        assert!(std::fs::read_to_string(&metrics)
            .unwrap()
            .contains("task.dropped_at_phase_start"));
        assert!(std::fs::read_to_string(&perfetto)
            .unwrap()
            .contains("traceEvents"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timeseries_output_is_written_and_perfetto_gains_counters() {
        let dir = std::env::temp_dir().join("rt-telemetry-session-ts-test");
        std::fs::create_dir_all(&dir).unwrap();
        let (ts_csv, perfetto) = (dir.join("ts.csv"), dir.join("p.trace.json"));
        let mut session = TelemetrySession::create(None, None, Some(&perfetto)).unwrap();
        session.enable_timeseries(Some(&ts_csv), 100);
        {
            let mut sink = session.sink();
            sink.emit(
                Time::from_micros(20),
                TraceEvent::TaskStarted {
                    task: 1,
                    processor: 0,
                },
            );
            sink.emit(
                Time::from_micros(250),
                TraceEvent::TaskCompleted {
                    task: 1,
                    processor: 0,
                    met_deadline: true,
                    lateness_us: -3,
                },
            );
        }
        let written = session.finish(1).unwrap();
        assert_eq!(written.len(), 2);
        let csv = std::fs::read_to_string(&ts_csv).unwrap();
        assert!(csv.starts_with("window,start_us"));
        assert_eq!(csv.lines().count(), 1 + 3, "header + 3 windows");
        let chrome = std::fs::read_to_string(&perfetto).unwrap();
        assert!(chrome.contains("\"utilization P0\""));
        assert!(chrome.contains("\"ph\":\"C\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_outputs_means_metrics_only_in_memory() {
        let mut session = TelemetrySession::create(None, None, None).unwrap();
        {
            let mut sink = session.sink();
            sink.emit(Time::ZERO, TraceEvent::Note("x".into()));
        }
        assert_eq!(session.registry().counter("note.count"), 1);
        assert!(session.finish(1).unwrap().is_empty());
    }
}
