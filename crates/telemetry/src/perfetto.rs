//! Chrome trace-event (Perfetto / `chrome://tracing`) timeline export.
//!
//! [`PerfettoTracer`] buffers the run's events and renders a JSON object
//! with a `traceEvents` array:
//!
//! * tid 0 — the **scheduler** (host) track: one complete (`"ph": "X"`)
//!   span per scheduling phase `j`, from `t_s` to `t_e`, with `Q_s(j)`,
//!   the batch size and the search counters in `args`; drops and mid-phase
//!   expiries appear as instant events.
//! * tid `k + 1` — one track per processor `P_k`: one span per task
//!   execution (start to completion), with slack, lateness and the
//!   communication delay in `args`; under fault injection each outage is a
//!   `"down"` span from `ProcessorFailed` to `ProcessorRecovered` (or to
//!   the end of the trace for a fail-stop), and orphaned/lost tasks appear
//!   as instant events on the processor that held them.
//! * tid 1000 + i — when the run was profiled (`PhaseProfiled` events),
//!   one child track per parallel subtree walk: span width proportional to
//!   the walk's vertex count, with termination/depth/pops in `args`. The
//!   scheduler track additionally nests per-stage sub-spans inside each
//!   phase span (screen/fill/cost/shard/apply/undo/merge, scaled by wall-ns
//!   share) and carries an `imbalance` counter (max/mean walk vertices).
//!
//! When a windowed [`TimeSeries`] is attached via
//! [`PerfettoTracer::set_counters`], the export additionally carries
//! *counter tracks* (`"ph": "C"`): one continuous utilization gauge per
//! processor, a stacked per-processor queue-depth track, a deadline-outcome
//! track (hits/misses per window) and a scheduler-load track — so
//! saturation and backlog growth are visible at a glance next to the span
//! tracks.
//!
//! All timestamps are microseconds, which is exactly the simulator's
//! resolution, so the timeline is tick-accurate.

use std::io::Write;

use paragon_des::trace::{PhaseProfile, TraceEvent, TraceSink};
use paragon_des::Time;

use crate::timeseries::TimeSeries;

/// Process id used for every track (one simulated machine = one process).
const PID: u64 = 1;

/// First tid of the per-subtree-walk tracks rendered from `PhaseProfiled`
/// walk telemetry (walk `i` gets `WALK_TID_BASE + i`). High enough that the
/// processor tracks (`k + 1`) cannot collide on any realistic platform.
const WALK_TID_BASE: u64 = 1000;

/// A buffering [`TraceSink`] that renders a Chrome trace-event JSON file.
#[derive(Debug, Default)]
pub struct PerfettoTracer {
    events: Vec<(Time, TraceEvent)>,
    counters: Option<TimeSeries>,
}

/// A task execution being assembled from its dispatch/start/completion
/// events.
#[derive(Debug, Clone, Copy, Default)]
struct OpenTask {
    start_us: u64,
    slack_us: Option<i64>,
    comm_delay_us: Option<u64>,
}

impl PerfettoTracer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Attaches a windowed time series; the next
    /// [`PerfettoTracer::write_chrome_trace`] renders it as counter tracks
    /// (per-processor utilization, queue depth, deadline outcomes,
    /// scheduler load) next to the span tracks.
    pub fn set_counters(&mut self, series: TimeSeries) {
        self.counters = Some(series);
    }

    /// Renders the attached time series as `"ph": "C"` counter rows, one
    /// sample per window (plus a closing sample so the last stairstep has
    /// width).
    fn counter_rows(&self, rows: &mut Vec<String>) {
        let Some(series) = &self.counters else {
            return;
        };
        let mut sample = |ts: u64, w: &crate::timeseries::WindowStats| {
            for k in 0..series.procs {
                rows.push(format!(
                    "{{\"name\":\"utilization P{k}\",\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\
                     \"ts\":{ts},\"args\":{{\"busy_frac\":{:.4}}}}}",
                    w.utilization(k)
                ));
            }
            let depth: String = (0..series.procs)
                .map(|k| {
                    format!(
                        "{}\"P{k}\":{}",
                        if k == 0 { "" } else { "," },
                        w.depth_end.get(k).copied().unwrap_or(0).max(0)
                    )
                })
                .collect();
            rows.push(format!(
                "{{\"name\":\"queue depth\",\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\
                 \"ts\":{ts},\"args\":{{{depth}}}}}"
            ));
            rows.push(format!(
                "{{\"name\":\"deadline outcomes\",\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\
                 \"ts\":{ts},\"args\":{{\"hits\":{},\"misses\":{},\"dropped\":{},\"lost\":{}}}}}",
                w.hits, w.misses, w.dropped, w.lost
            ));
            rows.push(format!(
                "{{\"name\":\"scheduler load\",\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\
                 \"ts\":{ts},\"args\":{{\"consumed_us\":{}}}}}",
                w.sched_consumed_us
            ));
        };
        for w in &series.windows {
            sample(w.start_us, w);
        }
        if let Some(last) = series.windows.last() {
            sample(last.end_us, last);
        }
    }

    /// Renders the buffered events as Chrome trace-event JSON.
    ///
    /// `workers` fixes how many processor tracks to name; processors only
    /// seen in events beyond that count still get spans (Perfetto shows
    /// them with numeric tids).
    pub fn write_chrome_trace<W: Write>(&self, mut out: W, workers: usize) -> std::io::Result<()> {
        let mut rows: Vec<String> = Vec::new();

        // Track naming metadata.
        rows.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"args\":{{\"name\":\"rtsads simulation\"}}}}"
        ));
        rows.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"args\":{{\"name\":\"scheduler (host)\"}}}}"
        ));
        for k in 0..workers {
            rows.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"args\":{{\"name\":\"P{k}\"}}}}",
                k + 1
            ));
        }

        // Pair phase starts with ends and task starts with completions.
        let mut open_phase: Option<(u64, u64, usize, u64)> = None; // (phase, ts, batch, quantum)
        let mut pending_wall: Option<(u64, u64)> = None; // (phase, wall_ns)
        let mut pending_profile: Option<(u64, PhaseProfile)> = None;
        let mut named_walks: usize = 0; // walk tracks given thread_name metadata so far
        let mut open_tasks: Vec<(u64, usize, OpenTask)> = Vec::new(); // (task, processor, data)
        let mut pending: Vec<(u64, usize, OpenTask)> = Vec::new(); // dispatched, not started
        let mut open_downs: Vec<(usize, u64, bool, usize, usize)> = Vec::new(); // (processor, ts, fail_stop, orphaned, lost)
                                                                                // Fault events can be emitted retroactively (with timestamps before
                                                                                // their neighbors), so the trace end is the max, not the last, ts.
        let end_ts = self
            .events
            .iter()
            .map(|(t, _)| t.as_micros())
            .max()
            .unwrap_or(0);

        for (t, event) in &self.events {
            let ts = t.as_micros();
            match event {
                TraceEvent::PhaseStarted {
                    phase,
                    batch_len,
                    quantum,
                } => {
                    open_phase = Some((*phase, ts, *batch_len, quantum.as_micros()));
                }
                TraceEvent::PhaseEnded {
                    phase,
                    scheduled,
                    consumed,
                    vertices,
                    backtracks,
                    undos,
                    replay_avoided,
                } => {
                    let (start_ts, batch, quantum) = match open_phase.take() {
                        Some((p, s, b, q)) if p == *phase => (s, b, q),
                        _ => (ts.saturating_sub(consumed.as_micros()), 0, 0),
                    };
                    // Measured wall time (if the run recorded it) sits next
                    // to the allocated quantum in the span's args.
                    let wall = match pending_wall.take() {
                        Some((p, w)) if p == *phase => format!(",\"sched_wall_ns\":{w}"),
                        other => {
                            pending_wall = other;
                            String::new()
                        }
                    };
                    rows.push(format!(
                        "{{\"name\":\"phase {phase}\",\"ph\":\"X\",\"pid\":{PID},\"tid\":0,\
                         \"ts\":{start_ts},\"dur\":{},\"args\":{{\"quantum_us\":{quantum},\
                         \"batch_len\":{batch},\"scheduled\":{scheduled},\
                         \"consumed_us\":{},\"vertices\":{vertices},\"backtracks\":{backtracks},\
                         \"undos\":{undos},\"replay_avoided\":{replay_avoided}{wall}}}}}",
                        ts - start_ts,
                        consumed.as_micros(),
                    ));
                    // Stage attribution (if the run profiled it): nested
                    // stage spans inside the phase span, per-walk child
                    // tracks, and the imbalance counter.
                    match pending_profile.take() {
                        Some((p, prof)) if p == *phase => {
                            profile_rows(
                                &mut rows,
                                &mut named_walks,
                                start_ts,
                                ts - start_ts,
                                &prof,
                            );
                        }
                        other => pending_profile = other,
                    }
                }
                TraceEvent::TaskDispatched {
                    task,
                    processor,
                    slack_us,
                } => {
                    pending.push((
                        *task,
                        *processor,
                        OpenTask {
                            start_us: ts,
                            slack_us: Some(*slack_us),
                            comm_delay_us: None,
                        },
                    ));
                }
                TraceEvent::CommDelay {
                    task,
                    processor,
                    delay_us,
                } => {
                    if let Some((.., open)) = pending
                        .iter_mut()
                        .find(|(t2, p2, _)| t2 == task && p2 == processor)
                    {
                        open.comm_delay_us = Some(*delay_us);
                    }
                }
                TraceEvent::TaskStarted { task, processor } => {
                    let mut open = pending
                        .iter()
                        .position(|(t2, p2, _)| t2 == task && p2 == processor)
                        .map(|i| pending.remove(i).2)
                        .unwrap_or_default();
                    open.start_us = ts;
                    open_tasks.push((*task, *processor, open));
                }
                TraceEvent::TaskCompleted {
                    task,
                    processor,
                    met_deadline,
                    lateness_us,
                } => {
                    let open = open_tasks
                        .iter()
                        .position(|(t2, p2, _)| t2 == task && p2 == processor)
                        .map(|i| open_tasks.remove(i).2)
                        .unwrap_or_else(|| OpenTask {
                            start_us: ts,
                            ..OpenTask::default()
                        });
                    let mut args =
                        format!("\"met_deadline\":{met_deadline},\"lateness_us\":{lateness_us}");
                    if let Some(s) = open.slack_us {
                        args.push_str(&format!(",\"slack_at_dispatch_us\":{s}"));
                    }
                    if let Some(c) = open.comm_delay_us {
                        args.push_str(&format!(",\"comm_delay_us\":{c}"));
                    }
                    rows.push(format!(
                        "{{\"name\":\"task {task}\",\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\
                         \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                        processor + 1,
                        open.start_us,
                        ts.saturating_sub(open.start_us),
                    ));
                }
                TraceEvent::SchedulerOverhead { phase, wall_ns, .. } => {
                    pending_wall = Some((*phase, *wall_ns));
                }
                TraceEvent::PhaseProfiled { phase, profile } => {
                    pending_profile = Some((*phase, profile.clone()));
                }
                TraceEvent::TaskScreened { task, phase, .. } => {
                    rows.push(format!(
                        "{{\"name\":\"task {task} screened out (phase {phase})\",\"ph\":\"i\",\
                         \"s\":\"t\",\"pid\":{PID},\"tid\":0,\"ts\":{ts}}}"
                    ));
                }
                // Admission parameters and placement evidence carry no
                // timeline geometry of their own; the ledger consumes them.
                TraceEvent::TaskAdmitted { .. } | TraceEvent::PlacementDecided { .. } => {}
                TraceEvent::TaskDropped { task } => {
                    rows.push(format!(
                        "{{\"name\":\"drop task {task}\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{PID},\"tid\":0,\"ts\":{ts}}}"
                    ));
                }
                TraceEvent::TaskExpiredMidPhase { task, phase } => {
                    rows.push(format!(
                        "{{\"name\":\"task {task} expired (phase {phase})\",\"ph\":\"i\",\
                         \"s\":\"t\",\"pid\":{PID},\"tid\":0,\"ts\":{ts}}}"
                    ));
                }
                TraceEvent::ProcessorFailed {
                    processor,
                    fail_stop,
                    orphaned,
                    lost,
                } => {
                    open_downs.push((*processor, ts, *fail_stop, *orphaned, *lost));
                }
                TraceEvent::ProcessorRecovered { processor } => {
                    if let Some(i) = open_downs.iter().position(|(p, ..)| p == processor) {
                        let (p, from, fail_stop, orphaned, lost) = open_downs.remove(i);
                        rows.push(format!(
                            "{{\"name\":\"down\",\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\
                             \"ts\":{from},\"dur\":{},\"args\":{{\"fail_stop\":{fail_stop},\
                             \"orphaned\":{orphaned},\"lost\":{lost}}}}}",
                            p + 1,
                            ts.saturating_sub(from),
                        ));
                    }
                }
                TraceEvent::TaskOrphaned { task, processor } => {
                    rows.push(format!(
                        "{{\"name\":\"task {task} orphaned\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{PID},\"tid\":{},\"ts\":{ts}}}",
                        processor + 1
                    ));
                }
                TraceEvent::TaskLost { task, processor } => {
                    rows.push(format!(
                        "{{\"name\":\"task {task} lost\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{PID},\"tid\":{},\"ts\":{ts}}}",
                        processor + 1
                    ));
                }
                TraceEvent::Note(note) => {
                    // Reuse the serializer for correct string escaping.
                    let name =
                        serde_json::to_string(&format!("note: {note}")).expect("strings serialize");
                    rows.push(format!(
                        "{{\"name\":{name},\"ph\":\"i\",\"s\":\"g\",\"pid\":{PID},\
                         \"tid\":0,\"ts\":{ts}}}"
                    ));
                }
            }
        }

        // A failure with no recovery (fail-stop, or the run ended first)
        // stays down through the end of the trace.
        for (p, from, fail_stop, orphaned, lost) in open_downs {
            rows.push(format!(
                "{{\"name\":\"down\",\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\
                 \"ts\":{from},\"dur\":{},\"args\":{{\"fail_stop\":{fail_stop},\
                 \"orphaned\":{orphaned},\"lost\":{lost}}}}}",
                p + 1,
                end_ts.saturating_sub(from),
            ));
        }

        self.counter_rows(&mut rows);

        writeln!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        for (i, row) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            writeln!(out, "{row}{sep}")?;
        }
        writeln!(out, "]}}")?;
        out.flush()
    }
}

impl TraceSink for PerfettoTracer {
    fn emit(&mut self, now: Time, event: TraceEvent) {
        self.events.push((now, event));
    }
}

/// Renders one phase's stage profile: stage sub-spans nested inside the
/// phase span on the scheduler track (durations scale the virtual-time span
/// by each stage's share of attributed wall time, so the visual split *is*
/// the stage-fraction table), one child track per subtree walk (span width
/// proportional to the walk's vertex count relative to the largest walk, so
/// imbalance is visible as ragged right edges), and an `imbalance` counter
/// sample per split phase.
fn profile_rows(
    rows: &mut Vec<String>,
    named_walks: &mut usize,
    start_ts: u64,
    dur: u64,
    prof: &PhaseProfile,
) {
    let total = prof.total_ns();
    if total > 0 {
        let mut acc_ns = 0u64;
        let mut cursor = 0u64;
        for (name, ns) in prof.stages() {
            if ns == 0 {
                continue;
            }
            acc_ns += ns;
            // End offsets come from the running sum so rounding never lets
            // the stage spans overflow the enclosing phase span.
            let end = ((dur as f64) * (acc_ns as f64) / (total as f64)).round() as u64;
            rows.push(format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{PID},\"tid\":0,\
                 \"ts\":{},\"dur\":{},\"args\":{{\"wall_ns\":{ns},\"frac\":{:.4}}}}}",
                start_ts + cursor,
                end.saturating_sub(cursor),
                ns as f64 / total as f64,
            ));
            cursor = end;
        }
    }
    if prof.walks.is_empty() {
        return;
    }
    let max_vertices = prof.walks.iter().map(|w| w.vertices).max().unwrap_or(0);
    for (i, walk) in prof.walks.iter().enumerate() {
        while *named_walks <= i {
            rows.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\
                 \"args\":{{\"name\":\"search walk {}\"}}}}",
                WALK_TID_BASE + *named_walks as u64,
                *named_walks,
            ));
            *named_walks += 1;
        }
        let share = if max_vertices == 0 {
            1.0
        } else {
            walk.vertices as f64 / max_vertices as f64
        };
        // Escape via the serializer: terminations come off the wire.
        let termination = serde_json::to_string(&walk.termination).expect("strings serialize");
        rows.push(format!(
            "{{\"name\":\"walk {i}\",\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\
             \"ts\":{start_ts},\"dur\":{},\"args\":{{\"termination\":{termination},\
             \"vertices\":{},\"end_depth\":{},\"pops\":{},\"committed\":{}}}}}",
            WALK_TID_BASE + i as u64,
            ((dur as f64) * share).round() as u64,
            walk.vertices,
            walk.end_depth,
            walk.pops,
            walk.committed,
        ));
    }
    rows.push(format!(
        "{{\"name\":\"imbalance\",\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\
         \"ts\":{start_ts},\"args\":{{\"max_over_mean\":{:.4}}}}}",
        prof.imbalance(),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;

    fn sample_run() -> PerfettoTracer {
        let mut p = PerfettoTracer::new();
        p.emit(
            Time::from_micros(0),
            TraceEvent::PhaseStarted {
                phase: 0,
                batch_len: 2,
                quantum: Duration::from_micros(30),
            },
        );
        p.emit(
            Time::from_micros(30),
            TraceEvent::PhaseEnded {
                phase: 0,
                scheduled: 1,
                consumed: Duration::from_micros(30),
                vertices: 7,
                backtracks: 1,
                undos: 2,
                replay_avoided: 5,
            },
        );
        p.emit(
            Time::from_micros(30),
            TraceEvent::TaskDispatched {
                task: 4,
                processor: 1,
                slack_us: 70,
            },
        );
        p.emit(
            Time::from_micros(30),
            TraceEvent::CommDelay {
                task: 4,
                processor: 1,
                delay_us: 10,
            },
        );
        p.emit(
            Time::from_micros(30),
            TraceEvent::TaskStarted {
                task: 4,
                processor: 1,
            },
        );
        p.emit(
            Time::from_micros(90),
            TraceEvent::TaskCompleted {
                task: 4,
                processor: 1,
                met_deadline: true,
                lateness_us: -10,
            },
        );
        p.emit(Time::from_micros(95), TraceEvent::TaskDropped { task: 5 });
        p
    }

    #[test]
    fn renders_valid_json_with_both_track_kinds() {
        let p = sample_run();
        assert_eq!(p.len(), 7);
        let mut buf = Vec::new();
        p.write_chrome_trace(&mut buf, 2).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let value = serde_json::from_str::<serde::Value>(&text).expect("whole file is JSON");
        let events = value
            .get("traceEvents")
            .and_then(serde::Value::as_array)
            .expect("traceEvents array");
        // 1 process_name + 3 thread_name + 1 phase span + 1 task span + 1 drop
        assert_eq!(events.len(), 7);
        assert!(text.contains("\"scheduler (host)\""));
        assert!(text.contains("\"P1\""));
        assert!(text.contains("\"quantum_us\":30"));
        assert!(text.contains("\"slack_at_dispatch_us\":70"));
        assert!(text.contains("\"comm_delay_us\":10"));
        // The task span sits on P1's track (tid 2) and lasts 60us.
        assert!(text.contains("\"tid\":2,\"ts\":30,\"dur\":60"));
    }

    #[test]
    fn unpaired_completion_still_renders() {
        let mut p = PerfettoTracer::new();
        p.emit(
            Time::from_micros(10),
            TraceEvent::TaskCompleted {
                task: 1,
                processor: 0,
                met_deadline: false,
                lateness_us: 5,
            },
        );
        let mut buf = Vec::new();
        p.write_chrome_trace(&mut buf, 1).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(serde_json::from_str::<serde::Value>(&text).is_ok());
        assert!(text.contains("\"dur\":0"));
    }

    #[test]
    fn fault_events_render_down_spans_and_instants() {
        let mut p = PerfettoTracer::new();
        p.emit(
            Time::from_micros(100),
            TraceEvent::ProcessorFailed {
                processor: 0,
                fail_stop: false,
                orphaned: 2,
                lost: 1,
            },
        );
        p.emit(
            Time::from_micros(100),
            TraceEvent::TaskOrphaned {
                task: 7,
                processor: 0,
            },
        );
        p.emit(
            Time::from_micros(100),
            TraceEvent::TaskLost {
                task: 8,
                processor: 0,
            },
        );
        p.emit(
            Time::from_micros(400),
            TraceEvent::ProcessorRecovered { processor: 0 },
        );
        // A second, never-recovered failure closes at the trace end (500).
        p.emit(
            Time::from_micros(450),
            TraceEvent::ProcessorFailed {
                processor: 1,
                fail_stop: true,
                orphaned: 0,
                lost: 0,
            },
        );
        p.emit(
            Time::from_micros(500),
            TraceEvent::TaskCompleted {
                task: 9,
                processor: 2,
                met_deadline: true,
                lateness_us: -1,
            },
        );
        let mut buf = Vec::new();
        p.write_chrome_trace(&mut buf, 3).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            serde_json::from_str::<serde::Value>(&text).is_ok(),
            "bad JSON: {text}"
        );
        // Recovered outage: P0's track (tid 1), 100..400.
        assert!(text
            .contains("\"name\":\"down\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":100,\"dur\":300"));
        // Fail-stop outage: P1's track (tid 2), closed at the trace end.
        assert!(text.contains("\"tid\":2,\"ts\":450,\"dur\":50"));
        assert!(text.contains("task 7 orphaned"));
        assert!(text.contains("task 8 lost"));
    }

    #[test]
    fn overhead_and_screening_surface_on_the_scheduler_track() {
        let mut p = PerfettoTracer::new();
        p.emit(
            Time::from_micros(0),
            TraceEvent::PhaseStarted {
                phase: 0,
                batch_len: 2,
                quantum: Duration::from_micros(30),
            },
        );
        p.emit(
            Time::from_micros(30),
            TraceEvent::TaskScreened {
                task: 6,
                phase: 0,
                deadline_us: 25,
                probes: Vec::new(),
            },
        );
        p.emit(
            Time::from_micros(30),
            TraceEvent::TaskAdmitted {
                task: 6,
                arrival_us: 0,
                deadline_us: 25,
                processing_us: 10,
            },
        );
        p.emit(
            Time::from_micros(30),
            TraceEvent::PlacementDecided {
                task: 7,
                phase: 0,
                processor: 0,
                completion_us: 60,
                cost_us: 60,
                shard: None,
                rejected: Vec::new(),
            },
        );
        p.emit(
            Time::from_micros(30),
            TraceEvent::SchedulerOverhead {
                phase: 0,
                allocated_us: 30,
                wall_ns: 12_345,
            },
        );
        p.emit(
            Time::from_micros(30),
            TraceEvent::PhaseEnded {
                phase: 0,
                scheduled: 1,
                consumed: Duration::from_micros(30),
                vertices: 3,
                backtracks: 0,
                undos: 0,
                replay_avoided: 0,
            },
        );
        let mut buf = Vec::new();
        p.write_chrome_trace(&mut buf, 1).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            serde_json::from_str::<serde::Value>(&text).is_ok(),
            "bad JSON: {text}"
        );
        // The measured wall time rides in the phase span's args, next to
        // the allocated quantum.
        assert!(text.contains("\"quantum_us\":30"));
        assert!(text.contains("\"sched_wall_ns\":12345"));
        assert!(text.contains("task 6 screened out (phase 0)"));
    }

    #[test]
    fn phase_profile_renders_stage_spans_walk_tracks_and_imbalance() {
        use paragon_des::trace::{PhaseProfile, WalkProfile};
        let mut p = PerfettoTracer::new();
        p.emit(
            Time::from_micros(0),
            TraceEvent::PhaseStarted {
                phase: 0,
                batch_len: 2,
                quantum: Duration::from_micros(100),
            },
        );
        p.emit(
            Time::from_micros(100),
            TraceEvent::PhaseProfiled {
                phase: 0,
                profile: PhaseProfile {
                    screen_ns: 0,
                    fill_ns: 250,
                    cost_ns: 500,
                    shard_ns: 0,
                    apply_ns: 150,
                    undo_ns: 100,
                    merge_ns: 0,
                    select_ns: 0,
                    walks: vec![
                        WalkProfile {
                            termination: "dead_end".into(),
                            vertices: 30,
                            end_depth: 4,
                            pops: 2,
                            committed: true,
                        },
                        WalkProfile {
                            termination: "leaf".into(),
                            vertices: 10,
                            end_depth: 7,
                            pops: 0,
                            committed: true,
                        },
                    ],
                },
            },
        );
        p.emit(
            Time::from_micros(100),
            TraceEvent::PhaseEnded {
                phase: 0,
                scheduled: 2,
                consumed: Duration::from_micros(90),
                vertices: 40,
                backtracks: 1,
                undos: 2,
                replay_avoided: 0,
            },
        );
        let mut buf = Vec::new();
        p.write_chrome_trace(&mut buf, 1).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            serde_json::from_str::<serde::Value>(&text).is_ok(),
            "bad JSON: {text}"
        );
        // Stage sub-spans: cost is half the 1000ns total, so its slice is
        // half the 100us phase span.
        assert!(text.contains("\"name\":\"cost\""), "{text}");
        assert!(text.contains("\"frac\":0.5000"));
        // Zero stages are skipped entirely.
        assert!(!text.contains("\"name\":\"shard\""));
        // Walk child tracks with their metadata and telemetry.
        assert!(text.contains("\"name\":\"search walk 0\""));
        assert!(text.contains("\"name\":\"search walk 1\""));
        assert!(text.contains("\"termination\":\"leaf\""));
        assert!(text.contains("\"end_depth\":7"));
        assert!(text.contains(&format!("\"tid\":{}", WALK_TID_BASE + 1)));
        // Imbalance counter: max 30 over mean 20.
        assert!(text.contains("\"name\":\"imbalance\""));
        assert!(text.contains("\"max_over_mean\":1.5000"));
    }

    #[test]
    fn attached_time_series_renders_counter_tracks() {
        use crate::timeseries::TimeSeriesRecorder;
        let mut p = sample_run();
        let mut rec = TimeSeriesRecorder::new(50);
        // Re-feed the sample events so the counters describe the same run.
        for (t, e) in p.events.clone() {
            rec.emit(t, e);
        }
        p.set_counters(rec.finish());
        let mut buf = Vec::new();
        p.write_chrome_trace(&mut buf, 2).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            serde_json::from_str::<serde::Value>(&text).is_ok(),
            "bad JSON: {text}"
        );
        // One utilization counter track per processor, plus the shared
        // gauges.
        assert!(text.contains("\"utilization P0\""));
        assert!(text.contains("\"utilization P1\""));
        assert!(text.contains("\"queue depth\""));
        assert!(text.contains("\"deadline outcomes\""));
        assert!(text.contains("\"scheduler load\""));
        assert!(text.contains("\"ph\":\"C\""));
        // Task 4 ran on P1 over [30, 90): 40us of window [50, 100) is a
        // busy fraction of 0.8.
        assert!(text.contains("\"busy_frac\":0.8000"));
    }

    #[test]
    fn note_strings_are_escaped() {
        let mut p = PerfettoTracer::new();
        p.emit(Time::ZERO, TraceEvent::Note("with \"quotes\"".into()));
        let mut buf = Vec::new();
        p.write_chrome_trace(&mut buf, 1).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            serde_json::from_str::<serde::Value>(&text).is_ok(),
            "bad JSON: {text}"
        );
    }
}
