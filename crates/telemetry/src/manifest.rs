//! Per-run manifests: the provenance a result file needs to be
//! reproducible — seed, calibration constants, algorithm, and the source
//! revision — written as JSON next to the CSV/trace it describes.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// Everything needed to re-run (and trust) one result file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Display name of the scheduling algorithm (or `"all"` for multi-series
    /// figures).
    pub algorithm: String,
    /// The PRNG seed the run used.
    pub seed: u64,
    /// Number of working processors.
    pub workers: usize,
    /// Calibration: the host's per-vertex evaluation cost, microseconds.
    pub vertex_eval_cost_us: u64,
    /// Calibration: the constant interconnect delay `C`, microseconds
    /// (`None` when the run sweeps or varies it).
    pub comm_delay_us: Option<u64>,
    /// `git describe --always --dirty` of the source tree, when available.
    pub git_describe: Option<String>,
    /// Anything else worth pinning (scenario knobs, sweep ranges, ...).
    pub extra: BTreeMap<String, String>,
}

impl RunManifest {
    /// A manifest with the required provenance; extend via [`Self::with`].
    #[must_use]
    pub fn new(algorithm: impl Into<String>, seed: u64, workers: usize) -> Self {
        RunManifest {
            algorithm: algorithm.into(),
            seed,
            workers,
            vertex_eval_cost_us: 0,
            comm_delay_us: None,
            git_describe: git_describe(),
            extra: BTreeMap::new(),
        }
    }

    /// Sets the calibration constants.
    #[must_use]
    pub fn calibration(mut self, vertex_eval_cost_us: u64, comm_delay_us: Option<u64>) -> Self {
        self.vertex_eval_cost_us = vertex_eval_cost_us;
        self.comm_delay_us = comm_delay_us;
        self
    }

    /// Adds one free-form provenance entry.
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra.insert(key.into(), value.into());
        self
    }

    /// Renders the manifest as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Writes the manifest next to `result_path`: `foo.csv` gets
    /// `foo.manifest.json` (non-CSV paths get the suffix appended).
    pub fn write_beside(&self, result_path: &Path) -> std::io::Result<std::path::PathBuf> {
        let manifest_path = manifest_path_for(result_path);
        let mut f = std::fs::File::create(&manifest_path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(manifest_path)
    }
}

/// The manifest path accompanying a result file.
#[must_use]
pub fn manifest_path_for(result_path: &Path) -> std::path::PathBuf {
    match result_path.file_stem() {
        Some(stem) if result_path.extension().is_some() => {
            result_path.with_file_name(format!("{}.manifest.json", stem.to_string_lossy()))
        }
        _ => {
            let mut name = result_path.as_os_str().to_os_string();
            name.push(".manifest.json");
            std::path::PathBuf::from(name)
        }
    }
}

/// Best-effort `git describe --always --dirty`; `None` outside a checkout
/// or without git on the PATH.
#[must_use]
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim();
    (!s.is_empty()).then(|| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let m = RunManifest::new("RT-SADS", 42, 8)
            .calibration(1, Some(2_000))
            .with("transactions", "600");
        let json = m.to_json();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.algorithm, "RT-SADS");
        assert_eq!(back.seed, 42);
        assert_eq!(back.workers, 8);
        assert_eq!(back.vertex_eval_cost_us, 1);
        assert_eq!(back.comm_delay_us, Some(2_000));
        assert_eq!(
            back.extra.get("transactions").map(String::as_str),
            Some("600")
        );
    }

    #[test]
    fn manifest_path_swaps_the_extension() {
        assert_eq!(
            manifest_path_for(Path::new("results/fig5.csv")),
            Path::new("results/fig5.manifest.json")
        );
        assert_eq!(
            manifest_path_for(Path::new("results/run")),
            Path::new("results/run.manifest.json")
        );
    }

    #[test]
    fn write_beside_creates_the_sibling_file() {
        let dir = std::env::temp_dir().join("rt-telemetry-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("fig9.csv");
        let m = RunManifest::new("D-COLS", 7, 2);
        let path = m.write_beside(&csv).unwrap();
        assert!(path.ends_with("fig9.manifest.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.seed, 7);
        std::fs::remove_dir_all(&dir).ok();
    }
}
