//! Observability for the RT-SADS reproduction.
//!
//! Four pieces, all driven by the [`TraceSink`] seam the simulator already
//! has, so enabling any of them cannot change simulation results:
//!
//! * [`metrics`] — a dependency-light registry of named counters, gauges and
//!   log-linear quantile histograms ([`MetricsRegistry`]).
//! * [`jsonl`] — a [`JsonlTracer`] that streams every [`TraceEvent`] as one
//!   JSON object per line.
//! * [`perfetto`] — a [`PerfettoTracer`] that buffers events and exports a
//!   Chrome trace-event (`chrome://tracing` / Perfetto) timeline: one track
//!   per processor plus a scheduler track of phase spans annotated with
//!   `Q_s(j)`.
//! * [`manifest`] — a [`RunManifest`] recording seed, calibration constants
//!   and the source revision next to every result file.
//! * [`ledger`] — a [`DecisionLedger`] folding the stream into per-task
//!   dossiers with a final miss [`Attribution`], so every hit and miss has
//!   a causal chain on record.
//! * [`profile`] — a [`StageProfiler`] the search engine embeds in its
//!   scratch: zero-cost-when-disabled stage timers on the shared monotonic
//!   clock ([`clock`]), drained per phase into `PhaseProfiled` events.
//! * [`timeseries`] — a [`TimeSeriesRecorder`] folding the stream into
//!   fixed virtual-time windows (rates, per-processor utilization and queue
//!   depth, lateness/slack sketches, scheduler overhead), exportable as
//!   CSV/JSONL, Perfetto counter tracks or an ASCII sparkline timeline.
//!
//! [`MetricsCollector`] turns the event stream into metrics, and
//! [`MultiSink`] fans one stream out to several sinks, so a run can produce
//! a JSONL trace, a Perfetto timeline and a metrics summary in one pass.

pub mod clock;
pub mod collector;
pub mod jsonl;
pub mod ledger;
pub mod manifest;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod session;
pub mod sink;
pub mod timeseries;

pub use clock::MonotonicInstant;
pub use collector::MetricsCollector;
pub use jsonl::{JsonlTracer, TraceHeader, TraceLine, SCHEMA_VERSION};
pub use ledger::{Attribution, AttributionCounts, DecisionLedger, TaskDossier};
pub use manifest::RunManifest;
pub use metrics::{Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use perfetto::PerfettoTracer;
pub use profile::{Stage, StageProfiler};
pub use session::TelemetrySession;
pub use sink::MultiSink;
pub use timeseries::{TimeSeries, TimeSeriesRecorder, WindowStats, DEFAULT_WINDOW_US};

// Re-exported so downstream callers don't need a direct paragon-des path
// just to name the seam they are plugging into.
pub use paragon_des::trace::{TraceEvent, TraceSink};
