//! Turns the trace-event stream into metrics.
//!
//! [`MetricsCollector`] is a [`TraceSink`] that folds every event into a
//! [`MetricsRegistry`] under a fixed naming scheme, shared by RT-SADS and
//! D-COLS runs so their result files stay directly comparable:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `phase.count` | counter | scheduling phases run |
//! | `phase.batch_len` | histogram | batch size at phase start |
//! | `phase.quantum_us` | histogram | allocated `Q_s(j)` |
//! | `phase.consumed_us` | histogram | scheduling time actually used |
//! | `phase.vertices` | histogram | search vertices per phase |
//! | `phase.backtracks` | histogram | backtracks per phase |
//! | `phase.undos` | histogram | incremental-engine undo steps per phase |
//! | `phase.replay_avoided` | histogram | replay applies avoided per phase |
//! | `phase.scheduled` | histogram | tasks dispatched per phase |
//! | `phase.sched_wall_ns` | histogram | measured scheduler wall time per phase |
//! | `profile.<stage>_ns` | histogram | per-phase wall time of one search stage (`screen`, `fill`, `cost`, `shard`, `apply`, `undo`, `merge`), from `PhaseProfiled` |
//! | `profile.imbalance_x100` | histogram | parallel-walk imbalance (max/mean walk vertices × 100) on split phases |
//! | `task.admitted` | counter | tasks admitted into a batch |
//! | `task.screened` | counter | viability-screen rejections recorded |
//! | `task.placements` | counter | placement decisions recorded |
//! | `task.slack_at_dispatch_us` | histogram | `deadline − start` at dispatch |
//! | `task.lateness_us` | histogram | `completion − deadline` |
//! | `comm.delay_us` | histogram | data-shipping delay per remote task |
//! | `task.started` / `task.completed` | counter | execution lifecycle |
//! | `task.deadline_hits` / `task.deadline_misses` | counter | outcome split |
//! | `task.dropped_at_phase_start` | counter | expiry-filtered at `t_s` |
//! | `task.expired_mid_phase` | counter | deadline lapsed during a phase |
//! | `fault.processor_failures` | counter | processor down events |
//! | `fault.processor_recoveries` | counter | processor up events |
//! | `fault.orphaned_per_failure` | histogram | queued tasks orphaned by one failure |
//! | `task.orphaned` | counter | tasks handed back to the host |
//! | `task.lost_in_flight` | counter | tasks killed mid-execution |
//! | `sim.finished_at_us` | gauge | largest event timestamp seen |
//!
//! A retroactively applied failure retracts completions whose
//! `TaskCompleted` events were already emitted at delivery time, so under
//! fault injection the lifecycle counters (`task.completed`,
//! `task.deadline_hits`, …) count *executions*, including ones later
//! undone; the per-task fault counters say how many were. Per-failure
//! aggregates come from `ProcessorFailed` itself; the per-task counters
//! come from the individual `TaskOrphaned`/`TaskLost` events, so nothing
//! is double-counted.

use paragon_des::trace::{TraceEvent, TraceSink};
use paragon_des::Time;

use crate::metrics::MetricsRegistry;

/// A [`TraceSink`] that aggregates events into a [`MetricsRegistry`].
#[derive(Debug, Default)]
pub struct MetricsCollector {
    registry: MetricsRegistry,
}

/// Clamps a `u64` into the histogram's signed sample domain.
fn as_sample(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

impl MetricsCollector {
    /// A collector with an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the aggregated metrics.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable access, for folding in metrics that do not come from events
    /// (per-worker busy/idle times from the final report, for example).
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Consumes the collector and returns the registry.
    #[must_use]
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }
}

impl TraceSink for MetricsCollector {
    fn emit(&mut self, now: Time, event: TraceEvent) {
        let r = &mut self.registry;
        let finished = r.gauge("sim.finished_at_us").unwrap_or(0.0);
        r.set_gauge("sim.finished_at_us", finished.max(now.as_micros() as f64));
        match event {
            TraceEvent::TaskAdmitted { .. } => {
                r.inc("task.admitted", 1);
            }
            TraceEvent::TaskScreened { .. } => {
                r.inc("task.screened", 1);
            }
            TraceEvent::PlacementDecided { .. } => {
                r.inc("task.placements", 1);
            }
            TraceEvent::SchedulerOverhead { wall_ns, .. } => {
                r.record("phase.sched_wall_ns", as_sample(wall_ns));
            }
            TraceEvent::PhaseProfiled { profile, .. } => {
                for (stage, ns) in profile.stages() {
                    r.record(&format!("profile.{stage}_ns"), as_sample(ns));
                }
                if !profile.walks.is_empty() {
                    r.record(
                        "profile.imbalance_x100",
                        as_sample((profile.imbalance() * 100.0).round() as u64),
                    );
                }
            }
            TraceEvent::PhaseStarted {
                batch_len, quantum, ..
            } => {
                r.inc("phase.count", 1);
                r.record("phase.batch_len", as_sample(batch_len as u64));
                r.record("phase.quantum_us", as_sample(quantum.as_micros()));
            }
            TraceEvent::PhaseEnded {
                scheduled,
                consumed,
                vertices,
                backtracks,
                undos,
                replay_avoided,
                ..
            } => {
                r.record("phase.consumed_us", as_sample(consumed.as_micros()));
                r.record("phase.vertices", as_sample(vertices));
                r.record("phase.backtracks", as_sample(backtracks));
                r.record("phase.undos", as_sample(undos));
                r.record("phase.replay_avoided", as_sample(replay_avoided));
                r.record("phase.scheduled", as_sample(scheduled as u64));
            }
            TraceEvent::TaskDispatched { slack_us, .. } => {
                r.record("task.slack_at_dispatch_us", slack_us);
            }
            TraceEvent::CommDelay { delay_us, .. } => {
                r.record("comm.delay_us", as_sample(delay_us));
            }
            TraceEvent::TaskStarted { .. } => {
                r.inc("task.started", 1);
            }
            TraceEvent::TaskCompleted {
                met_deadline,
                lateness_us,
                ..
            } => {
                r.inc("task.completed", 1);
                r.inc(
                    if met_deadline {
                        "task.deadline_hits"
                    } else {
                        "task.deadline_misses"
                    },
                    1,
                );
                r.record("task.lateness_us", lateness_us);
            }
            TraceEvent::TaskDropped { .. } => {
                r.inc("task.dropped_at_phase_start", 1);
            }
            TraceEvent::TaskExpiredMidPhase { .. } => {
                r.inc("task.expired_mid_phase", 1);
            }
            TraceEvent::ProcessorFailed { orphaned, .. } => {
                r.inc("fault.processor_failures", 1);
                r.record("fault.orphaned_per_failure", as_sample(orphaned as u64));
            }
            TraceEvent::ProcessorRecovered { .. } => {
                r.inc("fault.processor_recoveries", 1);
            }
            TraceEvent::TaskOrphaned { .. } => {
                r.inc("task.orphaned", 1);
            }
            TraceEvent::TaskLost { .. } => {
                r.inc("task.lost_in_flight", 1);
            }
            TraceEvent::Note(_) => {
                r.inc("note.count", 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;

    #[test]
    fn events_land_under_the_documented_names() {
        let mut c = MetricsCollector::new();
        c.emit(
            Time::from_micros(0),
            TraceEvent::TaskAdmitted {
                task: 1,
                arrival_us: 0,
                deadline_us: 900,
                processing_us: 50,
            },
        );
        c.emit(
            Time::from_micros(0),
            TraceEvent::PhaseStarted {
                phase: 0,
                batch_len: 5,
                quantum: Duration::from_micros(100),
            },
        );
        c.emit(
            Time::from_micros(100),
            TraceEvent::PhaseEnded {
                phase: 0,
                scheduled: 3,
                consumed: Duration::from_micros(90),
                vertices: 12,
                backtracks: 2,
                undos: 4,
                replay_avoided: 6,
            },
        );
        c.emit(
            Time::from_micros(100),
            TraceEvent::TaskScreened {
                task: 9,
                phase: 0,
                deadline_us: 120,
                probes: Vec::new(),
            },
        );
        c.emit(
            Time::from_micros(100),
            TraceEvent::PlacementDecided {
                task: 1,
                phase: 0,
                processor: 0,
                completion_us: 150,
                cost_us: 150,
                shard: None,
                rejected: Vec::new(),
            },
        );
        c.emit(
            Time::from_micros(100),
            TraceEvent::SchedulerOverhead {
                phase: 0,
                allocated_us: 100,
                wall_ns: 42_000,
            },
        );
        c.emit(
            Time::from_micros(100),
            TraceEvent::PhaseProfiled {
                phase: 0,
                profile: paragon_des::trace::PhaseProfile {
                    screen_ns: 100,
                    fill_ns: 2_000,
                    cost_ns: 5_000,
                    shard_ns: 0,
                    apply_ns: 300,
                    undo_ns: 200,
                    merge_ns: 50,
                    select_ns: 0,
                    walks: vec![
                        paragon_des::trace::WalkProfile {
                            termination: "dead_end".into(),
                            vertices: 30,
                            end_depth: 4,
                            pops: 2,
                            committed: true,
                        },
                        paragon_des::trace::WalkProfile {
                            termination: "leaf".into(),
                            vertices: 10,
                            end_depth: 7,
                            pops: 0,
                            committed: true,
                        },
                    ],
                },
            },
        );
        c.emit(
            Time::from_micros(100),
            TraceEvent::TaskDispatched {
                task: 1,
                processor: 0,
                slack_us: 40,
            },
        );
        c.emit(
            Time::from_micros(100),
            TraceEvent::CommDelay {
                task: 1,
                processor: 0,
                delay_us: 7,
            },
        );
        c.emit(
            Time::from_micros(100),
            TraceEvent::TaskStarted {
                task: 1,
                processor: 0,
            },
        );
        c.emit(
            Time::from_micros(150),
            TraceEvent::TaskCompleted {
                task: 1,
                processor: 0,
                met_deadline: true,
                lateness_us: -10,
            },
        );
        c.emit(Time::from_micros(150), TraceEvent::TaskDropped { task: 2 });
        c.emit(
            Time::from_micros(150),
            TraceEvent::TaskExpiredMidPhase { task: 3, phase: 0 },
        );
        c.emit(
            Time::from_micros(160),
            TraceEvent::ProcessorFailed {
                processor: 0,
                fail_stop: false,
                orphaned: 2,
                lost: 1,
            },
        );
        c.emit(
            Time::from_micros(160),
            TraceEvent::TaskOrphaned {
                task: 4,
                processor: 0,
            },
        );
        c.emit(
            Time::from_micros(160),
            TraceEvent::TaskOrphaned {
                task: 5,
                processor: 0,
            },
        );
        c.emit(
            Time::from_micros(160),
            TraceEvent::TaskLost {
                task: 6,
                processor: 0,
            },
        );
        c.emit(
            Time::from_micros(200),
            TraceEvent::ProcessorRecovered { processor: 0 },
        );

        let r = c.registry();
        assert_eq!(r.counter("task.admitted"), 1);
        assert_eq!(r.counter("task.screened"), 1);
        assert_eq!(r.counter("task.placements"), 1);
        assert_eq!(
            r.histogram("phase.sched_wall_ns").unwrap().p50(),
            Some(42_000)
        );
        assert_eq!(r.counter("fault.processor_failures"), 1);
        assert_eq!(r.counter("fault.processor_recoveries"), 1);
        assert_eq!(r.counter("task.orphaned"), 2);
        assert_eq!(r.counter("task.lost_in_flight"), 1);
        assert_eq!(
            r.histogram("fault.orphaned_per_failure").unwrap().p50(),
            Some(2)
        );
        assert_eq!(r.gauge("sim.finished_at_us"), Some(200.0));
        assert_eq!(r.counter("phase.count"), 1);
        assert_eq!(r.counter("task.started"), 1);
        assert_eq!(r.counter("task.completed"), 1);
        assert_eq!(r.counter("task.deadline_hits"), 1);
        assert_eq!(r.counter("task.deadline_misses"), 0);
        assert_eq!(r.counter("task.dropped_at_phase_start"), 1);
        assert_eq!(r.counter("task.expired_mid_phase"), 1);
        assert_eq!(r.histogram("phase.quantum_us").unwrap().p50(), Some(100));
        assert_eq!(
            r.histogram("task.slack_at_dispatch_us").unwrap().p50(),
            Some(40)
        );
        assert_eq!(r.histogram("task.lateness_us").unwrap().p50(), Some(-10));
        assert_eq!(r.histogram("profile.cost_ns").unwrap().p50(), Some(5_000));
        assert_eq!(r.histogram("profile.shard_ns").unwrap().count(), 1);
        // max 30 / mean 20 = 1.5 → 150 after the ×100 fixed-point scaling.
        assert_eq!(
            r.histogram("profile.imbalance_x100").unwrap().p50(),
            Some(150)
        );
        assert_eq!(r.histogram("comm.delay_us").unwrap().count(), 1);
        let snap = c.into_registry().snapshot();
        assert!(snap.histograms.contains_key("phase.consumed_us"));
    }
}
