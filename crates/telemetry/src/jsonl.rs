//! Structured JSONL trace export: one JSON object per line, one line per
//! [`TraceEvent`].
//!
//! The first line is a [`TraceHeader`] manifest naming the schema version;
//! every following line is a [`TraceLine`]: `{"t_us": <u64>, "event":
//! {...}}`, where `event` uses serde's externally-tagged enum encoding
//! (e.g. `{"TaskStarted": {"task": 3, "processor": 1}}`). Every line parses
//! back into the same event, so traces double as machine-readable logs.
//! [`parse_trace`] accepts headerless traces from before the header existed
//! and rejects traces from a newer schema with a clear error.

use std::io::Write;

use paragon_des::trace::{TraceEvent, TraceSink};
use paragon_des::Time;
use serde::{Deserialize, Serialize};

/// The trace schema version this crate writes and reads. Bump it whenever
/// a [`TraceEvent`] change breaks old readers (renaming or removing a
/// variant or field; additions are compatible).
pub const SCHEMA_VERSION: u32 = 1;

/// The header manifest on the first line of a JSONL trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// The schema the rest of the file follows; see [`SCHEMA_VERSION`].
    pub schema_version: u32,
}

/// One line of a JSONL trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLine {
    /// Simulation timestamp of the event, in microseconds.
    pub t_us: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// A [`TraceSink`] streaming events to a writer as JSONL.
///
/// Write errors are sticky: the first one is kept and all further events
/// are dropped; [`JsonlTracer::finish`] surfaces it. This keeps `emit`
/// infallible, as the `TraceSink` seam requires.
#[derive(Debug)]
pub struct JsonlTracer<W: Write> {
    out: W,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlTracer<W> {
    /// Wraps a writer and eagerly writes the [`TraceHeader`] line.
    /// Buffering is the caller's choice (pass a `BufWriter` for files). A
    /// failed header write is sticky like any other write error.
    pub fn new(out: W) -> Self {
        let mut tracer = JsonlTracer {
            out,
            lines: 0,
            error: None,
        };
        let header = TraceHeader {
            schema_version: SCHEMA_VERSION,
        };
        let json = serde_json::to_string(&header).expect("trace header serializes");
        if let Err(e) = writeln!(tracer.out, "{json}") {
            tracer.error = Some(e);
        }
        tracer
    }

    /// Number of event lines successfully written (the header manifest is
    /// not counted).
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, or the first write error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonlTracer<W> {
    fn emit(&mut self, now: Time, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = TraceLine {
            t_us: now.as_micros(),
            event,
        };
        let json = serde_json::to_string(&line).expect("trace events serialize");
        if let Err(e) = writeln!(self.out, "{json}") {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }
}

/// Parses a JSONL trace back into `(time, event)` pairs. Blank lines are
/// skipped; any malformed line is an error naming its line number.
///
/// A leading [`TraceHeader`] line is consumed and version-checked: a trace
/// written by a newer schema is rejected with a clear error rather than a
/// confusing per-line parse failure. Traces without a header (written
/// before it existed) still parse.
pub fn parse_trace(input: &str) -> Result<Vec<(Time, TraceEvent)>, String> {
    let mut events = Vec::new();
    let mut first = true;
    for (idx, raw) in input.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        if std::mem::take(&mut first) {
            if let Ok(value) = serde_json::from_str::<serde::Value>(raw) {
                if let Some(version) = value.get("schema_version").and_then(|v| v.as_u64()) {
                    if version != u64::from(SCHEMA_VERSION) {
                        return Err(format!(
                            "unknown trace schema version {version}: this reader supports \
                             version {SCHEMA_VERSION}"
                        ));
                    }
                    continue; // header consumed
                }
            }
        }
        let line: TraceLine =
            serde_json::from_str(raw).map_err(|e| format!("line {}: {e:?}", idx + 1))?;
        events.push((Time::from_micros(line.t_us), line.event));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;

    #[test]
    fn events_stream_one_line_each_and_parse_back() {
        let mut sink = JsonlTracer::new(Vec::new());
        sink.emit(
            Time::from_micros(5),
            TraceEvent::PhaseStarted {
                phase: 0,
                batch_len: 3,
                quantum: Duration::from_micros(40),
            },
        );
        sink.emit(
            Time::from_micros(45),
            TraceEvent::TaskDispatched {
                task: 7,
                processor: 1,
                slack_us: -3,
            },
        );
        assert_eq!(sink.lines(), 2, "the header manifest is not counted");
        let buf = sink.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3, "header + two events");
        let header: TraceHeader = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(header.schema_version, SCHEMA_VERSION);
        for line in text.lines().skip(1) {
            assert!(
                serde_json::from_str::<TraceLine>(line).is_ok(),
                "bad line: {line}"
            );
        }
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, Time::from_micros(5));
        assert!(matches!(
            parsed[1].1,
            TraceEvent::TaskDispatched { task: 7, .. }
        ));
    }

    #[test]
    fn header_round_trips_through_serde() {
        let header = TraceHeader {
            schema_version: SCHEMA_VERSION,
        };
        let json = serde_json::to_string(&header).unwrap();
        let back: TraceHeader = serde_json::from_str(&json).unwrap();
        assert_eq!(back, header);
    }

    #[test]
    fn headerless_legacy_traces_still_parse() {
        let text = "{\"t_us\": 3, \"event\": {\"TaskDropped\": {\"task\": 9}}}\n";
        let parsed = parse_trace(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, Time::from_micros(3));
        assert!(matches!(parsed[0].1, TraceEvent::TaskDropped { task: 9 }));
    }

    #[test]
    fn unknown_schema_version_is_rejected_gracefully() {
        let text = "{\"schema_version\": 999}\n{\"t_us\": 0, \"event\": {\"TaskDropped\": {\"task\": 1}}}\n";
        let err = parse_trace(text).unwrap_err();
        assert!(
            err.contains("unknown trace schema version 999"),
            "got: {err}"
        );
        assert!(err.contains("supports version 1"), "got: {err}");
    }

    #[test]
    fn malformed_lines_are_reported_with_their_number() {
        let text = "{\"t_us\": 1, \"event\": \"nonsense\"}\n";
        let err = parse_trace(text).unwrap_err();
        assert!(err.starts_with("line 1"), "got: {err}");
    }

    #[test]
    fn write_errors_are_sticky_and_surfaced() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlTracer::new(Failing);
        sink.emit(Time::ZERO, TraceEvent::Note("x".into()));
        sink.emit(Time::ZERO, TraceEvent::Note("y".into()));
        assert_eq!(sink.lines(), 0);
        assert!(sink.finish().is_err());
    }
}
