//! Structured JSONL trace export: one JSON object per line, one line per
//! [`TraceEvent`].
//!
//! The line schema is [`TraceLine`]: `{"t_us": <u64>, "event": {...}}`,
//! where `event` uses serde's externally-tagged enum encoding (e.g.
//! `{"TaskStarted": {"task": 3, "processor": 1}}`). Every line parses back
//! into the same event, so traces double as machine-readable logs.

use std::io::Write;

use paragon_des::trace::{TraceEvent, TraceSink};
use paragon_des::Time;
use serde::{Deserialize, Serialize};

/// One line of a JSONL trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLine {
    /// Simulation timestamp of the event, in microseconds.
    pub t_us: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// A [`TraceSink`] streaming events to a writer as JSONL.
///
/// Write errors are sticky: the first one is kept and all further events
/// are dropped; [`JsonlTracer::finish`] surfaces it. This keeps `emit`
/// infallible, as the `TraceSink` seam requires.
#[derive(Debug)]
pub struct JsonlTracer<W: Write> {
    out: W,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlTracer<W> {
    /// Wraps a writer. Buffering is the caller's choice (pass a
    /// `BufWriter` for files).
    pub fn new(out: W) -> Self {
        JsonlTracer {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Number of lines successfully written.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, or the first write error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonlTracer<W> {
    fn emit(&mut self, now: Time, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = TraceLine {
            t_us: now.as_micros(),
            event,
        };
        let json = serde_json::to_string(&line).expect("trace events serialize");
        if let Err(e) = writeln!(self.out, "{json}") {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }
}

/// Parses a JSONL trace back into `(time, event)` pairs. Blank lines are
/// skipped; any malformed line is an error naming its line number.
pub fn parse_trace(input: &str) -> Result<Vec<(Time, TraceEvent)>, String> {
    let mut events = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let line: TraceLine =
            serde_json::from_str(raw).map_err(|e| format!("line {}: {e:?}", idx + 1))?;
        events.push((Time::from_micros(line.t_us), line.event));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;

    #[test]
    fn events_stream_one_line_each_and_parse_back() {
        let mut sink = JsonlTracer::new(Vec::new());
        sink.emit(
            Time::from_micros(5),
            TraceEvent::PhaseStarted {
                phase: 0,
                batch_len: 3,
                quantum: Duration::from_micros(40),
            },
        );
        sink.emit(
            Time::from_micros(45),
            TraceEvent::TaskDispatched {
                task: 7,
                processor: 1,
                slack_us: -3,
            },
        );
        assert_eq!(sink.lines(), 2);
        let buf = sink.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(
                serde_json::from_str::<TraceLine>(line).is_ok(),
                "bad line: {line}"
            );
        }
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, Time::from_micros(5));
        assert!(matches!(
            parsed[1].1,
            TraceEvent::TaskDispatched { task: 7, .. }
        ));
    }

    #[test]
    fn malformed_lines_are_reported_with_their_number() {
        let text = "{\"t_us\": 1, \"event\": \"nonsense\"}\n";
        let err = parse_trace(text).unwrap_err();
        assert!(err.starts_with("line 1"), "got: {err}");
    }

    #[test]
    fn write_errors_are_sticky_and_surfaced() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlTracer::new(Failing);
        sink.emit(Time::ZERO, TraceEvent::Note("x".into()));
        sink.emit(Time::ZERO, TraceEvent::Note("y".into()));
        assert_eq!(sink.lines(), 0);
        assert!(sink.finish().is_err());
    }
}
