//! Streaming windowed time series: when did the run saturate, not just
//! whether it did.
//!
//! [`TimeSeriesRecorder`] is a [`TraceSink`] that folds the event stream
//! into fixed virtual-time windows as it flows past: per-window
//! admission/hit/miss/drop/lost counts, per-processor busy time and queue
//! depth (O(P) gauges per window, memory bounded by the window count
//! regardless of run length), per-window lateness/slack sketches and
//! per-window scheduler overhead. [`TimeSeriesRecorder::finish`] yields a
//! [`TimeSeries`] exportable as CSV, JSONL, Perfetto counter tracks (via
//! [`crate::perfetto::PerfettoTracer::set_counters`]) or an ASCII sparkline
//! timeline.
//!
//! # Exactness under fault retraction
//!
//! The driver emits `TaskCompleted` at delivery time, and a retroactively
//! applied processor failure can later retract that completion (the task is
//! orphaned back to the host or lost in flight). The recorder mirrors the
//! driver's last-event-wins semantics: a `TaskOrphaned`/`TaskLost` event
//! matching a counted completion decrements the window that counted it and
//! un-distributes its busy time, so the summed window counters reproduce
//! the final run report's four-way partition *bit-exactly*, faults
//! included. The lateness/slack sketches are the one exception: histogram
//! samples cannot be un-recorded, so (like the metric collector's lifecycle
//! counters) they count executions, including later-retracted ones.
//!
//! Events are not globally time-ordered (completions are timestamped with
//! their — possibly later — execution instants; fault events can be
//! retroactive), so every event indexes its window directly from its own
//! timestamp rather than assuming monotone arrival.

use std::collections::HashMap;

use paragon_des::trace::{TraceEvent, TraceSink};
use paragon_des::Time;
use serde::Serialize;

use crate::metrics::Histogram;

/// Default window width: 10 ms of virtual time.
pub const DEFAULT_WINDOW_US: u64 = 10_000;

/// Sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// A completion the recorder has counted, kept so a later retraction can
/// undo it exactly.
#[derive(Debug, Clone, Copy)]
struct Counted {
    processor: usize,
    /// Window whose hit/miss counter absorbed this completion.
    window: usize,
    hit: bool,
    /// Execution interval whose busy time was distributed over windows.
    start_us: u64,
    end_us: u64,
}

/// Accumulator for one window while the stream is still flowing.
#[derive(Debug, Default)]
struct WindowAcc {
    admitted: u64,
    screened: u64,
    dropped: u64,
    expired_mid_phase: u64,
    dispatched: u64,
    completed: u64,
    hits: u64,
    misses: u64,
    orphaned: u64,
    lost: u64,
    faults: u64,
    recoveries: u64,
    phases: u64,
    vertices: u64,
    backtracks: u64,
    sched_consumed_us: u64,
    sched_wall_ns: u64,
    /// Busy (service) time per processor inside this window, microseconds.
    busy_us: Vec<u64>,
    /// Net queue-depth change per processor (+dispatch, -leave).
    depth_delta: Vec<i64>,
    lateness: Histogram,
    slack: Histogram,
}

impl WindowAcc {
    fn proc_slot(vec: &mut Vec<u64>, k: usize) -> &mut u64 {
        if vec.len() <= k {
            vec.resize(k + 1, 0);
        }
        &mut vec[k]
    }

    fn depth_slot(&mut self, k: usize) -> &mut i64 {
        if self.depth_delta.len() <= k {
            self.depth_delta.resize(k + 1, 0);
        }
        &mut self.depth_delta[k]
    }
}

/// Summary of one window's lateness or slack sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SketchSummary {
    /// Samples recorded (executions, including later-retracted ones).
    pub count: u64,
    /// Median estimate, microseconds (log-linear bucket resolution).
    pub p50_us: i64,
    /// 90th-percentile estimate, microseconds.
    pub p90_us: i64,
    /// Largest sample, microseconds.
    pub max_us: i64,
}

impl SketchSummary {
    fn from_histogram(h: &Histogram) -> Option<Self> {
        Some(SketchSummary {
            count: h.count(),
            p50_us: h.p50()?,
            p90_us: h.quantile(0.90)?,
            max_us: h.max()?,
        })
    }
}

/// One finalized window of the series.
#[derive(Debug, Clone, Serialize)]
pub struct WindowStats {
    /// Window index (`start_us / window_us`).
    pub index: u64,
    /// Window start, microseconds of virtual time (inclusive).
    pub start_us: u64,
    /// Window end, microseconds (exclusive).
    pub end_us: u64,
    /// Tasks admitted into the batch.
    pub admitted: u64,
    /// Viability-screen rejections (diagnostic; screened tasks stay
    /// batched).
    pub screened: u64,
    /// Tasks dropped by the phase-start expiry filter.
    pub dropped: u64,
    /// Deadlines observed lapsing while a phase computed.
    pub expired_mid_phase: u64,
    /// Tasks dispatched to processors.
    pub dispatched: u64,
    /// Completions surviving retraction (`hits + misses`).
    pub completed: u64,
    /// Completions that met their deadline.
    pub hits: u64,
    /// Completions that missed their deadline (executed misses).
    pub misses: u64,
    /// Orphaning events (tasks handed back to the host).
    pub orphaned: u64,
    /// Tasks lost in flight (terminal).
    pub lost: u64,
    /// Processor failures.
    pub faults: u64,
    /// Processor recoveries.
    pub recoveries: u64,
    /// Scheduling phases ended in this window.
    pub phases: u64,
    /// Search vertices generated by those phases.
    pub vertices: u64,
    /// Backtracks performed by those phases.
    pub backtracks: u64,
    /// Virtual scheduling time consumed by those phases, microseconds.
    pub sched_consumed_us: u64,
    /// Measured wall-clock scheduling time, nanoseconds (0 unless the run
    /// measured overhead).
    pub sched_wall_ns: u64,
    /// Busy (service) time per processor inside this window, microseconds.
    pub busy_us: Vec<u64>,
    /// Queue depth per processor at the window's end (dispatched, not yet
    /// completed/orphaned/lost).
    pub depth_end: Vec<i64>,
    /// Lateness sketch of completions in this window, if any.
    pub lateness: Option<SketchSummary>,
    /// Slack-at-dispatch sketch of dispatches in this window, if any.
    pub slack: Option<SketchSummary>,
}

impl WindowStats {
    /// Mean utilization across processors over this window, in `[0, 1]`.
    #[must_use]
    pub fn mean_utilization(&self, procs: usize) -> f64 {
        if procs == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_us.iter().sum();
        let width = (self.end_us - self.start_us).max(1);
        busy as f64 / (width * procs as u64) as f64
    }

    /// One processor's utilization over this window, in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, k: usize) -> f64 {
        let width = (self.end_us - self.start_us).max(1);
        self.busy_us.get(k).copied().unwrap_or(0) as f64 / width as f64
    }

    /// Total queue depth across processors at the window's end.
    #[must_use]
    pub fn total_depth(&self) -> i64 {
        self.depth_end.iter().sum()
    }
}

/// Whole-run sums of the windowed counters, for cross-checking against a
/// run report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesTotals {
    /// Tasks admitted.
    pub admitted: u64,
    /// Deadline hits.
    pub hits: u64,
    /// Executed misses.
    pub misses: u64,
    /// Dropped tasks.
    pub dropped: u64,
    /// Tasks lost in flight.
    pub lost: u64,
    /// Orphaning events.
    pub orphaned: u64,
    /// Dispatch events.
    pub dispatched: u64,
    /// Scheduling phases.
    pub phases: u64,
    /// Search vertices.
    pub vertices: u64,
    /// Busy time per processor, microseconds.
    pub busy_us: Vec<u64>,
}

/// A finalized windowed time series.
#[derive(Debug, Clone, Serialize)]
pub struct TimeSeries {
    /// Window width, microseconds of virtual time.
    pub window_us: u64,
    /// Number of processors the per-processor vectors cover.
    pub procs: usize,
    /// The windows, contiguous from virtual time zero.
    pub windows: Vec<WindowStats>,
}

impl TimeSeries {
    /// Sums the windowed counters over the whole run.
    #[must_use]
    pub fn totals(&self) -> SeriesTotals {
        let mut t = SeriesTotals {
            busy_us: vec![0; self.procs],
            ..SeriesTotals::default()
        };
        for w in &self.windows {
            t.admitted += w.admitted;
            t.hits += w.hits;
            t.misses += w.misses;
            t.dropped += w.dropped;
            t.lost += w.lost;
            t.orphaned += w.orphaned;
            t.dispatched += w.dispatched;
            t.phases += w.phases;
            t.vertices += w.vertices;
            for (k, b) in w.busy_us.iter().enumerate() {
                t.busy_us[k] += b;
            }
        }
        t
    }

    /// The CSV column header [`TimeSeries::to_csv`] writes.
    pub const CSV_HEADER: &'static str = "window,start_us,end_us,admitted,screened,dropped,\
         expired_mid_phase,dispatched,completed,hits,misses,orphaned,lost,faults,recoveries,\
         phases,vertices,backtracks,sched_consumed_us,sched_wall_ns,util_mean,depth_total,\
         lateness_p50_us,lateness_p90_us,slack_p50_us";

    /// Renders the series as CSV, one row per window (per-processor gauges
    /// are folded to mean utilization and total depth; the JSONL export
    /// keeps the full vectors).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for w in &self.windows {
            let late = w.lateness.as_ref();
            let slack = w.slack.as_ref();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.4},{},{},{},{}\n",
                w.index,
                w.start_us,
                w.end_us,
                w.admitted,
                w.screened,
                w.dropped,
                w.expired_mid_phase,
                w.dispatched,
                w.completed,
                w.hits,
                w.misses,
                w.orphaned,
                w.lost,
                w.faults,
                w.recoveries,
                w.phases,
                w.vertices,
                w.backtracks,
                w.sched_consumed_us,
                w.sched_wall_ns,
                w.mean_utilization(self.procs),
                w.total_depth(),
                late.map(|s| s.p50_us.to_string()).unwrap_or_default(),
                late.map(|s| s.p90_us.to_string()).unwrap_or_default(),
                slack.map(|s| s.p50_us.to_string()).unwrap_or_default(),
            ));
        }
        out
    }

    /// Renders the series as JSONL: a header line with the window width and
    /// processor count, then one JSON object per window (full per-processor
    /// vectors included).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"schema_version\":1,\"window_us\":{},\"procs\":{}}}\n",
            self.window_us, self.procs
        );
        for w in &self.windows {
            out.push_str(&serde_json::to_string(w).expect("window serializes"));
            out.push('\n');
        }
        out
    }

    /// Renders an ASCII sparkline timeline: one line per headline metric,
    /// each downsampled to at most `width` glyphs.
    ///
    /// Degenerate inputs — a zero glyph budget, a run that recorded no
    /// windows, or a platform with no processors — render as a single
    /// explanatory line rather than an empty or misleading chart.
    #[must_use]
    pub fn render_timeline(&self, width: usize) -> String {
        if width == 0 {
            return "timeline: zero-width render requested; nothing to draw\n".to_string();
        }
        if self.windows.is_empty() {
            return "timeline: no windows recorded (empty or traceless run)\n".to_string();
        }
        if self.procs == 0 {
            return "timeline: no processors recorded; nothing to draw\n".to_string();
        }
        let span_ms = self
            .windows
            .last()
            .map(|w| w.end_us as f64 / 1_000.0)
            .unwrap_or(0.0);
        let mut out = format!(
            "timeline: {} windows x {}us ({:.1} ms virtual), {} processors\n",
            self.windows.len(),
            self.window_us,
            span_ms,
            self.procs
        );
        let series: [(&str, Vec<f64>); 7] = [
            (
                "admitted",
                self.windows.iter().map(|w| w.admitted as f64).collect(),
            ),
            (
                "completed",
                self.windows.iter().map(|w| w.completed as f64).collect(),
            ),
            ("hits", self.windows.iter().map(|w| w.hits as f64).collect()),
            (
                "drop+lost",
                self.windows
                    .iter()
                    .map(|w| (w.dropped + w.lost) as f64)
                    .collect(),
            ),
            (
                "util_mean",
                self.windows
                    .iter()
                    .map(|w| w.mean_utilization(self.procs))
                    .collect(),
            ),
            (
                "backlog",
                self.windows
                    .iter()
                    .map(|w| w.total_depth().max(0) as f64)
                    .collect(),
            ),
            (
                "sched_us",
                self.windows
                    .iter()
                    .map(|w| w.sched_consumed_us as f64)
                    .collect(),
            ),
        ];
        for (name, values) in &series {
            let peak = values.iter().copied().fold(0.0_f64, f64::max);
            out.push_str(&format!(
                "  {name:>9} |{}| peak {peak:.2}\n",
                sparkline(values, width)
            ));
        }
        let t = self.totals();
        out.push_str(&format!(
            "  totals: {} admitted, {} hits, {} misses, {} dropped, {} lost, {} phases\n",
            t.admitted, t.hits, t.misses, t.dropped, t.lost, t.phases
        ));
        out
    }
}

/// Renders `values` as a sparkline of at most `width` glyphs, averaging
/// adjacent values when downsampling. All-zero (or empty) input renders as
/// the lowest glyph.
#[must_use]
pub fn sparkline(values: &[f64], width: usize) -> String {
    let width = width.max(1);
    if values.is_empty() {
        return String::new();
    }
    // Downsample by averaging contiguous chunks.
    let folded: Vec<f64> = if values.len() <= width {
        values.to_vec()
    } else {
        (0..width)
            .map(|i| {
                let lo = i * values.len() / width;
                let hi = ((i + 1) * values.len() / width).max(lo + 1);
                values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    };
    let peak = folded.iter().copied().fold(0.0_f64, f64::max);
    folded
        .iter()
        .map(|&v| {
            if peak <= 0.0 || v <= 0.0 {
                SPARKS[0]
            } else {
                let idx = ((v / peak) * (SPARKS.len() - 1) as f64).round() as usize;
                SPARKS[idx.min(SPARKS.len() - 1)]
            }
        })
        .collect()
}

/// A [`TraceSink`] folding the event stream into fixed virtual-time
/// windows. See the module docs for the retraction semantics.
#[derive(Debug)]
pub struct TimeSeriesRecorder {
    window_us: u64,
    windows: Vec<WindowAcc>,
    procs: usize,
    /// Tasks dispatched and not yet completed/orphaned/lost, for queue
    /// depth: task id -> processor.
    in_queue: HashMap<u64, usize>,
    /// Started-but-not-yet-completed executions: (task, processor) -> start
    /// timestamp.
    started: HashMap<(u64, usize), u64>,
    /// Counted completions, for exact retraction: task id -> record.
    counted: HashMap<u64, Counted>,
}

impl Default for TimeSeriesRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW_US)
    }
}

impl TimeSeriesRecorder {
    /// A recorder with the given window width in microseconds of virtual
    /// time (clamped to at least 1).
    #[must_use]
    pub fn new(window_us: u64) -> Self {
        TimeSeriesRecorder {
            window_us: window_us.max(1),
            windows: Vec::new(),
            procs: 0,
            in_queue: HashMap::new(),
            started: HashMap::new(),
            counted: HashMap::new(),
        }
    }

    /// The configured window width, microseconds.
    #[must_use]
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    fn window_index(&self, ts: u64) -> usize {
        (ts / self.window_us) as usize
    }

    fn window_mut(&mut self, ts: u64) -> &mut WindowAcc {
        let idx = self.window_index(ts);
        if self.windows.len() <= idx {
            self.windows.resize_with(idx + 1, WindowAcc::default);
        }
        &mut self.windows[idx]
    }

    fn note_proc(&mut self, k: usize) {
        self.procs = self.procs.max(k + 1);
    }

    /// Distributes (or retracts, when `sign` is negative) the busy interval
    /// `[start, end)` on processor `k` across the windows it overlaps.
    fn spread_busy(&mut self, k: usize, start: u64, end: u64, add: bool) {
        let width = self.window_us;
        let mut t = start;
        while t < end {
            let next_edge = (t / width + 1) * width;
            let seg = end.min(next_edge) - t;
            let acc = self.window_mut(t);
            let slot = WindowAcc::proc_slot(&mut acc.busy_us, k);
            if add {
                *slot += seg;
            } else {
                *slot = slot.saturating_sub(seg);
            }
            t = next_edge;
        }
    }

    /// A task left processor `k`'s queue at `ts` (completed, orphaned or
    /// lost).
    fn depart(&mut self, task: u64, k: usize, ts: u64) {
        if self.in_queue.remove(&task).is_some() {
            *self.window_mut(ts).depth_slot(k) -= 1;
        }
    }

    /// Retracts a previously counted completion of `task` on processor `k`
    /// (a retroactive fault superseded it). The queue-depth decrement that
    /// was applied at the fictitious completion instant moves to `ts`, the
    /// fault instant.
    fn retract_completion(&mut self, task: u64, k: usize, ts: u64) {
        let Some(c) = self.counted.get(&task).copied() else {
            return;
        };
        if c.processor != k {
            return;
        }
        self.counted.remove(&task);
        let w = &mut self.windows[c.window];
        w.completed -= 1;
        if c.hit {
            w.hits -= 1;
        } else {
            w.misses -= 1;
        }
        self.spread_busy(k, c.start_us, c.end_us, false);
        // Move the depth decrement from the retracted completion to the
        // fault instant: the task was in fact still held at retraction.
        *self.window_mut(c.end_us).depth_slot(k) += 1;
        *self.window_mut(ts).depth_slot(k) -= 1;
    }

    /// Finalizes the series: contiguous windows, per-processor vectors
    /// normalized to the same length, queue depths prefix-summed to
    /// depth-at-window-end.
    #[must_use]
    pub fn finish(self) -> TimeSeries {
        let procs = self.procs;
        let width = self.window_us;
        let mut depth_running = vec![0i64; procs];
        let windows = self
            .windows
            .into_iter()
            .enumerate()
            .map(|(i, mut acc)| {
                acc.busy_us.resize(procs, 0);
                acc.depth_delta.resize(procs, 0);
                for (r, d) in depth_running.iter_mut().zip(&acc.depth_delta) {
                    *r += d;
                }
                WindowStats {
                    index: i as u64,
                    start_us: i as u64 * width,
                    end_us: (i as u64 + 1) * width,
                    admitted: acc.admitted,
                    screened: acc.screened,
                    dropped: acc.dropped,
                    expired_mid_phase: acc.expired_mid_phase,
                    dispatched: acc.dispatched,
                    completed: acc.completed,
                    hits: acc.hits,
                    misses: acc.misses,
                    orphaned: acc.orphaned,
                    lost: acc.lost,
                    faults: acc.faults,
                    recoveries: acc.recoveries,
                    phases: acc.phases,
                    vertices: acc.vertices,
                    backtracks: acc.backtracks,
                    sched_consumed_us: acc.sched_consumed_us,
                    sched_wall_ns: acc.sched_wall_ns,
                    busy_us: acc.busy_us,
                    depth_end: depth_running.clone(),
                    lateness: SketchSummary::from_histogram(&acc.lateness),
                    slack: SketchSummary::from_histogram(&acc.slack),
                }
            })
            .collect();
        TimeSeries {
            window_us: width,
            procs,
            windows,
        }
    }
}

impl TraceSink for TimeSeriesRecorder {
    fn emit(&mut self, now: Time, event: TraceEvent) {
        let ts = now.as_micros();
        match event {
            TraceEvent::TaskAdmitted { .. } => self.window_mut(ts).admitted += 1,
            TraceEvent::TaskScreened { .. } => self.window_mut(ts).screened += 1,
            TraceEvent::TaskDropped { .. } => self.window_mut(ts).dropped += 1,
            TraceEvent::TaskExpiredMidPhase { .. } => self.window_mut(ts).expired_mid_phase += 1,
            TraceEvent::PhaseEnded {
                consumed,
                vertices,
                backtracks,
                ..
            } => {
                let w = self.window_mut(ts);
                w.phases += 1;
                w.vertices += vertices;
                w.backtracks += backtracks;
                w.sched_consumed_us += consumed.as_micros();
            }
            TraceEvent::SchedulerOverhead { wall_ns, .. } => {
                self.window_mut(ts).sched_wall_ns += wall_ns;
            }
            TraceEvent::TaskDispatched {
                task,
                processor,
                slack_us,
            } => {
                self.note_proc(processor);
                {
                    let w = self.window_mut(ts);
                    w.dispatched += 1;
                    w.slack.record(slack_us);
                }
                // A task re-dispatched after an orphaning simply moves
                // queues; the previous queue already saw its departure.
                self.in_queue.insert(task, processor);
                *self.window_mut(ts).depth_slot(processor) += 1;
            }
            TraceEvent::TaskStarted { task, processor } => {
                self.note_proc(processor);
                self.started.insert((task, processor), ts);
            }
            TraceEvent::TaskCompleted {
                task,
                processor,
                met_deadline,
                lateness_us,
            } => {
                self.note_proc(processor);
                let start = self
                    .started
                    .remove(&(task, processor))
                    .unwrap_or(ts)
                    .min(ts);
                let window = self.window_index(ts);
                {
                    let w = self.window_mut(ts);
                    w.completed += 1;
                    if met_deadline {
                        w.hits += 1;
                    } else {
                        w.misses += 1;
                    }
                    w.lateness.record(lateness_us);
                }
                self.spread_busy(processor, start, ts, true);
                self.depart(task, processor, ts);
                self.counted.insert(
                    task,
                    Counted {
                        processor,
                        window,
                        hit: met_deadline,
                        start_us: start,
                        end_us: ts,
                    },
                );
            }
            TraceEvent::TaskOrphaned { task, processor } => {
                self.note_proc(processor);
                self.window_mut(ts).orphaned += 1;
                self.retract_completion(task, processor, ts);
                // A spike-lost dispatch never produced a completion; it is
                // still queued from the recorder's point of view.
                self.depart(task, processor, ts);
            }
            TraceEvent::TaskLost { task, processor } => {
                self.note_proc(processor);
                self.window_mut(ts).lost += 1;
                self.retract_completion(task, processor, ts);
                self.depart(task, processor, ts);
            }
            TraceEvent::ProcessorFailed { processor, .. } => {
                self.note_proc(processor);
                self.window_mut(ts).faults += 1;
            }
            TraceEvent::ProcessorRecovered { processor } => {
                self.note_proc(processor);
                self.window_mut(ts).recoveries += 1;
            }
            TraceEvent::PhaseStarted { .. }
            | TraceEvent::PlacementDecided { .. }
            | TraceEvent::CommDelay { .. }
            | TraceEvent::PhaseProfiled { .. }
            | TraceEvent::Note(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;

    fn admit(task: u64) -> TraceEvent {
        TraceEvent::TaskAdmitted {
            task,
            arrival_us: 0,
            deadline_us: 1_000,
            processing_us: 50,
        }
    }

    fn completed(task: u64, processor: usize, met: bool, lateness: i64) -> TraceEvent {
        TraceEvent::TaskCompleted {
            task,
            processor,
            met_deadline: met,
            lateness_us: lateness,
        }
    }

    #[test]
    fn counts_land_in_their_windows() {
        let mut rec = TimeSeriesRecorder::new(100);
        rec.emit(
            Time::from_micros(10),
            TraceEvent::TaskAdmitted {
                task: 1,
                arrival_us: 10,
                deadline_us: 500,
                processing_us: 50,
            },
        );
        rec.emit(
            Time::from_micros(120),
            TraceEvent::TaskDispatched {
                task: 1,
                processor: 0,
                slack_us: 300,
            },
        );
        rec.emit(
            Time::from_micros(120),
            TraceEvent::TaskStarted {
                task: 1,
                processor: 0,
            },
        );
        rec.emit(Time::from_micros(350), completed(1, 0, true, -150));
        let series = rec.finish();
        assert_eq!(series.windows.len(), 4);
        assert_eq!(series.windows[0].admitted, 1);
        assert_eq!(series.windows[1].dispatched, 1);
        assert_eq!(series.windows[3].hits, 1);
        // Busy [120, 350) splits 80 + 100 + 50 across windows 1..=3.
        assert_eq!(series.windows[1].busy_us[0], 80);
        assert_eq!(series.windows[2].busy_us[0], 100);
        assert_eq!(series.windows[3].busy_us[0], 50);
        let t = series.totals();
        assert_eq!(t.busy_us[0], 230);
        // Queued over windows 1 and 2, gone by the completion in 3.
        assert_eq!(series.windows[1].depth_end[0], 1);
        assert_eq!(series.windows[2].depth_end[0], 1);
        assert_eq!(series.windows[3].depth_end[0], 0);
        assert_eq!(series.windows[3].lateness.unwrap().count, 1);
        assert_eq!(series.windows[1].slack.unwrap().p50_us, 300);
    }

    #[test]
    fn retraction_exactly_undoes_a_counted_completion() {
        let mut rec = TimeSeriesRecorder::new(100);
        rec.emit(
            Time::from_micros(0),
            TraceEvent::TaskDispatched {
                task: 7,
                processor: 2,
                slack_us: 10,
            },
        );
        rec.emit(
            Time::from_micros(0),
            TraceEvent::TaskStarted {
                task: 7,
                processor: 2,
            },
        );
        // The eager completion record (emitted at delivery, timestamped in
        // the future) ...
        rec.emit(Time::from_micros(250), completed(7, 2, true, -5));
        // ... is retracted by a retroactive failure at t=50.
        rec.emit(
            Time::from_micros(50),
            TraceEvent::TaskLost {
                task: 7,
                processor: 2,
            },
        );
        let series = rec.finish();
        let t = series.totals();
        assert_eq!(t.hits, 0);
        assert_eq!(t.misses, 0);
        assert_eq!(t.lost, 1);
        assert_eq!(t.busy_us[2], 0, "retracted busy must be un-distributed");
        // Depth: +1 at t=0, -1 moved to the fault instant t=50 (window 0),
        // so every window ends at depth 0.
        assert!(series.windows.iter().all(|w| w.depth_end[2] == 0));
    }

    #[test]
    fn orphan_then_redispatch_counts_the_second_completion() {
        let mut rec = TimeSeriesRecorder::new(1_000);
        rec.emit(
            Time::from_micros(0),
            TraceEvent::TaskDispatched {
                task: 3,
                processor: 0,
                slack_us: 500,
            },
        );
        rec.emit(Time::from_micros(400), completed(3, 0, true, -100));
        rec.emit(
            Time::from_micros(100),
            TraceEvent::TaskOrphaned {
                task: 3,
                processor: 0,
            },
        );
        rec.emit(
            Time::from_micros(500),
            TraceEvent::TaskDispatched {
                task: 3,
                processor: 1,
                slack_us: 20,
            },
        );
        rec.emit(
            Time::from_micros(600),
            TraceEvent::TaskStarted {
                task: 3,
                processor: 1,
            },
        );
        rec.emit(Time::from_micros(900), completed(3, 1, false, 40));
        let series = rec.finish();
        let t = series.totals();
        assert_eq!((t.hits, t.misses), (0, 1));
        assert_eq!(t.orphaned, 1);
        assert_eq!(t.busy_us[0], 0);
        assert_eq!(t.busy_us[1], 300);
        assert_eq!(series.windows[0].depth_end, vec![0, 0]);
    }

    #[test]
    fn csv_and_jsonl_round_out() {
        let mut rec = TimeSeriesRecorder::new(50);
        rec.emit(
            Time::from_micros(10),
            TraceEvent::PhaseEnded {
                phase: 0,
                scheduled: 1,
                consumed: Duration::from_micros(9),
                vertices: 12,
                backtracks: 1,
                undos: 2,
                replay_avoided: 3,
            },
        );
        rec.emit(Time::from_micros(60), completed(1, 0, true, 0));
        let series = rec.finish();
        let csv = series.to_csv();
        assert!(csv.starts_with("window,start_us"));
        assert_eq!(csv.lines().count(), 3, "header + 2 windows");
        let jsonl = series.to_jsonl();
        assert!(jsonl.starts_with("{\"schema_version\":1"));
        for line in jsonl.lines().skip(1) {
            assert!(serde_json::from_str::<serde_json::Value>(line).is_ok());
        }
    }

    #[test]
    fn sparkline_downsamples_and_handles_zeroes() {
        assert_eq!(sparkline(&[], 10), "");
        let flat = sparkline(&[0.0, 0.0, 0.0], 10);
        assert!(flat.chars().all(|c| c == SPARKS[0]));
        let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sparkline(&ramp, 8);
        assert_eq!(s.chars().count(), 8);
        assert!(s.ends_with(SPARKS[7]));
        let timeline = TimeSeriesRecorder::new(10).finish().render_timeline(40);
        assert!(timeline.contains("timeline:"));
    }

    #[test]
    fn render_timeline_handles_zero_width() {
        let mut rec = TimeSeriesRecorder::new(100);
        rec.emit(Time::ZERO, admit(1));
        let out = rec.finish().render_timeline(0);
        assert_eq!(out.lines().count(), 1, "one explanatory line, no chart");
        assert!(out.contains("zero-width"));
    }

    #[test]
    fn render_timeline_handles_empty_window_list() {
        let out = TimeSeriesRecorder::new(100).finish().render_timeline(40);
        assert_eq!(out.lines().count(), 1, "one explanatory line, no chart");
        assert!(out.contains("no windows"));
    }

    #[test]
    fn render_timeline_handles_zero_processors() {
        // Admissions alone never name a processor, so the recorder can
        // legitimately finish with windows but procs == 0.
        let mut rec = TimeSeriesRecorder::new(100);
        rec.emit(Time::ZERO, admit(1));
        let ts = rec.finish();
        assert!(!ts.windows.is_empty());
        let out = ts.render_timeline(40);
        assert_eq!(out.lines().count(), 1, "one explanatory line, no chart");
        assert!(out.contains("no processors"));
    }

    #[test]
    fn window_width_is_clamped_positive() {
        let rec = TimeSeriesRecorder::new(0);
        assert_eq!(rec.window_us(), 1);
    }
}
