//! The decision-provenance ledger: a per-task "flight recorder".
//!
//! [`DecisionLedger`] is a [`TraceSink`] that folds the event stream into
//! one [`TaskDossier`] per task: the admission parameters every later
//! feasibility test uses, each viability screening with its actual
//! feasibility-test operands, each placement decision with the cost of the
//! chosen processor and of the rejected alternatives, dispatch slack, and
//! the fault fallout (orphanings, loss). From those it derives a final
//! [`Attribution`] answering the question the aggregate counters cannot:
//! *why* did this particular task hit or miss?
//!
//! The attribution is resolved with a **last-emitted-wins** rule, because
//! the driver applies failures retroactively: a `TaskCompleted` may already
//! be in the stream when a later `TaskLost` retracts it, and a
//! `TaskOrphaned` sends a task back into the batch where a whole new chain
//! of evidence accumulates. Replaying the events in emission order
//! therefore always lands on the driver's own final verdict.
//!
//! The per-task attributions form a partition: summed, they must exactly
//! reproduce the run report's four-way accounting
//! (`hits + executed_misses + dropped + lost_in_flight == total_tasks`);
//! see [`DecisionLedger::counts`] and
//! [`AttributionCounts::is_partition_of`].

use std::collections::BTreeMap;

use paragon_des::trace::{PlacementProbe, ScreenProbe, TraceEvent, TraceSink};
use paragon_des::Time;
use serde::{Deserialize, Serialize};

/// One viability screening a task failed, with the feasibility-test
/// operands per candidate processor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScreeningRecord {
    /// When the screening phase ended, in microseconds.
    pub t_us: u64,
    /// The phase whose screen rejected the task.
    pub phase: u64,
    /// The deadline `d_l` the probes were tested against, in microseconds.
    pub deadline_us: u64,
    /// One probe per candidate processor.
    pub probes: Vec<ScreenProbe>,
}

/// One placement decision that put the task into a delivered schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementRecord {
    /// When the deciding phase ended, in microseconds.
    pub t_us: u64,
    /// The phase that made the decision.
    pub phase: u64,
    /// The chosen processor's index.
    pub processor: usize,
    /// Predicted completion on the chosen processor, in microseconds.
    pub completion_us: u64,
    /// The chosen placement's cost `ce_k`, in microseconds.
    pub cost_us: u64,
    /// The node (shard) of the chosen processor on a hierarchical
    /// platform; `None` on flat runs and in pre-topology traces.
    pub shard: Option<usize>,
    /// Alternatives the search evaluated and ranked lower.
    pub rejected: Vec<PlacementProbe>,
}

/// One dispatch of the task to a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchRecord {
    /// Dispatch instant, in microseconds.
    pub t_us: u64,
    /// The target processor's index.
    pub processor: usize,
    /// `deadline − execution_start` at dispatch, in microseconds.
    pub slack_us: i64,
}

/// The final classification of one task — the ledger's verdict, each
/// variant carrying the evidence that justifies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attribution {
    /// No terminal event seen yet (the run is still going, or the trace
    /// was truncated). A complete run leaves no task pending.
    Pending,
    /// Completed by its deadline.
    Hit {
        /// Completion instant, in microseconds.
        completed_us: u64,
        /// `completion − deadline`, in microseconds (≤ 0 for a hit).
        lateness_us: i64,
    },
    /// Scheduled and executed, but finished past its deadline — on a
    /// fault-free platform the paper's Theorem 1 says this cannot happen.
    ExecutedMiss {
        /// Completion instant, in microseconds.
        completed_us: u64,
        /// `completion − deadline`, in microseconds (> 0 for a miss).
        lateness_us: i64,
    },
    /// Dropped by the expiry filter without the scheduler ever recording a
    /// screening for it: its deadline lapsed before it was schedulable.
    DroppedBeforeSchedulable {
        /// Drop instant, in microseconds.
        dropped_us: u64,
    },
    /// Screened — the feasibility test rejected it on every processor at
    /// least once, with the operands on record — and then expired.
    ScreenedThenExpired {
        /// Drop instant, in microseconds.
        dropped_us: u64,
        /// How many phase screens rejected it before it expired.
        screenings: usize,
    },
    /// Killed mid-execution by a processor failure; terminal.
    LostInFlight {
        /// Loss instant, in microseconds.
        lost_us: u64,
        /// The processor that failed under it.
        processor: usize,
    },
}

impl Attribution {
    /// Short stable label for rendering and diffing.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Attribution::Pending => "Pending",
            Attribution::Hit { .. } => "Hit",
            Attribution::ExecutedMiss { .. } => "ExecutedMiss",
            Attribution::DroppedBeforeSchedulable { .. } => "DroppedBeforeSchedulable",
            Attribution::ScreenedThenExpired { .. } => "ScreenedThenExpired",
            Attribution::LostInFlight { .. } => "LostInFlight",
        }
    }
}

/// Everything the ledger knows about one task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskDossier {
    /// The task's identifier.
    pub task: u64,
    /// Arrival instant from admission, in microseconds.
    pub arrival_us: Option<u64>,
    /// Absolute deadline `d_l`, in microseconds.
    pub deadline_us: Option<u64>,
    /// Processing time `p_l`, in microseconds.
    pub processing_us: Option<u64>,
    /// Every viability screening that rejected the task, oldest first.
    pub screenings: Vec<ScreeningRecord>,
    /// Every placement decision that scheduled it, oldest first (more than
    /// one when an orphaning sent it back into the batch).
    pub placements: Vec<PlacementRecord>,
    /// Every dispatch, oldest first.
    pub dispatches: Vec<DispatchRecord>,
    /// Data-shipping delay before its (last) start, in microseconds.
    pub comm_delay_us: Option<u64>,
    /// When it (last) began executing, in microseconds.
    pub started_us: Option<u64>,
    /// Times a failure or lost dispatch handed it back to the host.
    pub orphanings: usize,
    /// The phase during which its deadline lapsed mid-computation, if any.
    pub expired_in_phase: Option<u64>,
    /// The ledger's verdict.
    pub attribution: Attribution,
}

impl TaskDossier {
    fn new(task: u64) -> Self {
        TaskDossier {
            task,
            arrival_us: None,
            deadline_us: None,
            processing_us: None,
            screenings: Vec::new(),
            placements: Vec::new(),
            dispatches: Vec::new(),
            comm_delay_us: None,
            started_us: None,
            orphanings: 0,
            expired_in_phase: None,
            attribution: Attribution::Pending,
        }
    }

    /// Renders the task's causal chain as human-readable lines, oldest
    /// event first, ending with the verdict — the body of `explain`.
    #[must_use]
    pub fn narrative(&self) -> Vec<String> {
        let mut lines = Vec::new();
        match (self.arrival_us, self.deadline_us, self.processing_us) {
            (Some(a), Some(d), Some(p)) => lines.push(format!(
                "admitted: arrival={a}us deadline={d}us processing={p}us (slack at arrival: {}us)",
                d as i64 - a as i64 - p as i64,
            )),
            _ => lines.push("admitted: parameters not in trace".to_string()),
        }
        for s in &self.screenings {
            let mut line = format!(
                "phase {} screened it out at t={}us: completion vs deadline {}us on every processor —",
                s.phase, s.t_us, s.deadline_us
            );
            for p in &s.probes {
                line.push_str(&format!(
                    " P{}: {}+{}={}us",
                    p.processor, p.available_us, p.demand_us, p.completion_us
                ));
            }
            lines.push(line);
        }
        for pl in &self.placements {
            // Shards only render on hierarchical runs (the chosen shard is
            // recorded); flat traces keep the pre-topology line verbatim.
            let mut line = match pl.shard {
                Some(s) => format!(
                    "phase {} placed it on P{} (node {}) at t={}us: completion={}us cost={}us",
                    pl.phase, pl.processor, s, pl.t_us, pl.completion_us, pl.cost_us
                ),
                None => format!(
                    "phase {} placed it on P{} at t={}us: completion={}us cost={}us",
                    pl.phase, pl.processor, pl.t_us, pl.completion_us, pl.cost_us
                ),
            };
            if !pl.rejected.is_empty() {
                line.push_str("; rejected");
                for r in &pl.rejected {
                    if pl.shard.is_some() {
                        line.push_str(&format!(
                            " P{} (node {}, completion={}us cost={}us)",
                            r.processor, r.shard, r.completion_us, r.cost_us
                        ));
                    } else {
                        line.push_str(&format!(
                            " P{} (completion={}us cost={}us)",
                            r.processor, r.completion_us, r.cost_us
                        ));
                    }
                }
            }
            lines.push(line);
        }
        for d in &self.dispatches {
            lines.push(format!(
                "dispatched to P{} at t={}us with {}us slack",
                d.processor, d.t_us, d.slack_us
            ));
        }
        if let Some(c) = self.comm_delay_us {
            lines.push(format!("paid {c}us communication delay shipping data"));
        }
        if let Some(s) = self.started_us {
            lines.push(format!("started executing at t={s}us"));
        }
        if self.orphanings > 0 {
            lines.push(format!(
                "orphaned back to the host {} time(s) by faults",
                self.orphanings
            ));
        }
        if let Some(phase) = self.expired_in_phase {
            lines.push(format!(
                "deadline lapsed while phase {phase} was still computing"
            ));
        }
        lines.push(match self.attribution {
            Attribution::Pending => "verdict: Pending — no terminal event in the trace".to_string(),
            Attribution::Hit {
                completed_us,
                lateness_us,
            } => format!(
                "verdict: Hit — completed at t={completed_us}us, {}us before its deadline",
                -lateness_us
            ),
            Attribution::ExecutedMiss {
                completed_us,
                lateness_us,
            } => format!(
                "verdict: ExecutedMiss — completed at t={completed_us}us, {lateness_us}us past its deadline"
            ),
            Attribution::DroppedBeforeSchedulable { dropped_us } => format!(
                "verdict: DroppedBeforeSchedulable — expired at t={dropped_us}us without ever being screened"
            ),
            Attribution::ScreenedThenExpired {
                dropped_us,
                screenings,
            } => format!(
                "verdict: ScreenedThenExpired — infeasible in {screenings} screen(s), expired at t={dropped_us}us"
            ),
            Attribution::LostInFlight { lost_us, processor } => format!(
                "verdict: LostInFlight — killed at t={lost_us}us when P{processor} failed"
            ),
        });
        lines
    }
}

/// Summed attributions, for checking the partition against a run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributionCounts {
    /// Tasks the ledger has a dossier for.
    pub total: usize,
    /// [`Attribution::Hit`].
    pub hits: usize,
    /// [`Attribution::ExecutedMiss`].
    pub executed_misses: usize,
    /// [`Attribution::DroppedBeforeSchedulable`].
    pub dropped_before_schedulable: usize,
    /// [`Attribution::ScreenedThenExpired`].
    pub screened_then_expired: usize,
    /// [`Attribution::LostInFlight`].
    pub lost_in_flight: usize,
    /// [`Attribution::Pending`] — zero once a run is complete.
    pub pending: usize,
}

impl AttributionCounts {
    /// Both drop refinements together — the report's `dropped` bucket.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped_before_schedulable + self.screened_then_expired
    }

    /// Whether the attributions exactly partition `total_tasks` the way
    /// [`RunReport::is_consistent`] requires of the aggregate counters:
    /// every task resolved, each counted once.
    ///
    /// [`RunReport::is_consistent`]:
    ///     https://docs.rs/rtsads (see `rtsads::report::RunReport`)
    #[must_use]
    pub fn is_partition_of(&self, total_tasks: usize) -> bool {
        self.pending == 0
            && self.total == total_tasks
            && self.hits + self.executed_misses + self.dropped() + self.lost_in_flight
                == total_tasks
    }
}

/// A [`TraceSink`] folding the event stream into per-task dossiers.
#[derive(Debug, Default)]
pub struct DecisionLedger {
    tasks: BTreeMap<u64, TaskDossier>,
}

impl DecisionLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a ledger by replaying already-parsed trace events in order —
    /// how `explain` reconstructs causal chains from a trace file alone.
    #[must_use]
    pub fn from_events(events: &[(Time, TraceEvent)]) -> Self {
        let mut ledger = Self::new();
        for (t, e) in events {
            ledger.emit(*t, e.clone());
        }
        ledger
    }

    /// The dossier for one task, if any event mentioned it.
    #[must_use]
    pub fn dossier(&self, task: u64) -> Option<&TaskDossier> {
        self.tasks.get(&task)
    }

    /// All dossiers, ordered by task id.
    pub fn dossiers(&self) -> impl Iterator<Item = &TaskDossier> {
        self.tasks.values()
    }

    /// Number of tasks with a dossier.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task has been seen.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Consumes the ledger into its dossiers, ordered by task id.
    #[must_use]
    pub fn into_dossiers(self) -> Vec<TaskDossier> {
        self.tasks.into_values().collect()
    }

    /// Sums the attributions into partition counts.
    #[must_use]
    pub fn counts(&self) -> AttributionCounts {
        let mut c = AttributionCounts::default();
        for d in self.tasks.values() {
            c.total += 1;
            match d.attribution {
                Attribution::Pending => c.pending += 1,
                Attribution::Hit { .. } => c.hits += 1,
                Attribution::ExecutedMiss { .. } => c.executed_misses += 1,
                Attribution::DroppedBeforeSchedulable { .. } => {
                    c.dropped_before_schedulable += 1;
                }
                Attribution::ScreenedThenExpired { .. } => c.screened_then_expired += 1,
                Attribution::LostInFlight { .. } => c.lost_in_flight += 1,
            }
        }
        c
    }

    fn entry(&mut self, task: u64) -> &mut TaskDossier {
        self.tasks
            .entry(task)
            .or_insert_with(|| TaskDossier::new(task))
    }
}

impl TraceSink for DecisionLedger {
    fn emit(&mut self, now: Time, event: TraceEvent) {
        let t_us = now.as_micros();
        match event {
            TraceEvent::TaskAdmitted {
                task,
                arrival_us,
                deadline_us,
                processing_us,
            } => {
                let d = self.entry(task);
                d.arrival_us = Some(arrival_us);
                d.deadline_us = Some(deadline_us);
                d.processing_us = Some(processing_us);
            }
            TraceEvent::TaskScreened {
                task,
                phase,
                deadline_us,
                probes,
            } => {
                self.entry(task).screenings.push(ScreeningRecord {
                    t_us,
                    phase,
                    deadline_us,
                    probes,
                });
            }
            TraceEvent::PlacementDecided {
                task,
                phase,
                processor,
                completion_us,
                cost_us,
                shard,
                rejected,
            } => {
                self.entry(task).placements.push(PlacementRecord {
                    t_us,
                    phase,
                    processor,
                    completion_us,
                    cost_us,
                    shard,
                    rejected,
                });
            }
            TraceEvent::TaskDispatched {
                task,
                processor,
                slack_us,
            } => {
                self.entry(task).dispatches.push(DispatchRecord {
                    t_us,
                    processor,
                    slack_us,
                });
            }
            TraceEvent::CommDelay { task, delay_us, .. } => {
                self.entry(task).comm_delay_us = Some(delay_us);
            }
            TraceEvent::TaskStarted { task, .. } => {
                self.entry(task).started_us = Some(t_us);
            }
            TraceEvent::TaskCompleted {
                task,
                met_deadline,
                lateness_us,
                ..
            } => {
                self.entry(task).attribution = if met_deadline {
                    Attribution::Hit {
                        completed_us: t_us,
                        lateness_us,
                    }
                } else {
                    Attribution::ExecutedMiss {
                        completed_us: t_us,
                        lateness_us,
                    }
                };
            }
            TraceEvent::TaskDropped { task } => {
                let d = self.entry(task);
                d.attribution = if d.screenings.is_empty() {
                    Attribution::DroppedBeforeSchedulable { dropped_us: t_us }
                } else {
                    Attribution::ScreenedThenExpired {
                        dropped_us: t_us,
                        screenings: d.screenings.len(),
                    }
                };
            }
            TraceEvent::TaskExpiredMidPhase { task, phase } => {
                self.entry(task).expired_in_phase = Some(phase);
            }
            TraceEvent::TaskOrphaned { task, .. } => {
                // The task re-enters the batch: any optimistic completion
                // is void, and the next chapter of its chain will decide.
                let d = self.entry(task);
                d.orphanings += 1;
                d.attribution = Attribution::Pending;
            }
            TraceEvent::TaskLost { task, processor } => {
                self.entry(task).attribution = Attribution::LostInFlight {
                    lost_us: t_us,
                    processor,
                };
            }
            // Phase- and processor-level events carry no per-task subject.
            TraceEvent::PhaseStarted { .. }
            | TraceEvent::PhaseEnded { .. }
            | TraceEvent::SchedulerOverhead { .. }
            | TraceEvent::PhaseProfiled { .. }
            | TraceEvent::ProcessorFailed { .. }
            | TraceEvent::ProcessorRecovered { .. }
            | TraceEvent::Note(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(ledger: &mut DecisionLedger, task: u64, deadline_us: u64) {
        ledger.emit(
            Time::ZERO,
            TraceEvent::TaskAdmitted {
                task,
                arrival_us: 0,
                deadline_us,
                processing_us: 10,
            },
        );
    }

    fn complete(ledger: &mut DecisionLedger, task: u64, at_us: u64, met: bool, late: i64) {
        ledger.emit(
            Time::from_micros(at_us),
            TraceEvent::TaskCompleted {
                task,
                processor: 0,
                met_deadline: met,
                lateness_us: late,
            },
        );
    }

    #[test]
    fn chain_resolves_to_hit_with_full_evidence() {
        let mut ledger = DecisionLedger::new();
        admit(&mut ledger, 1, 500);
        ledger.emit(
            Time::from_micros(20),
            TraceEvent::PlacementDecided {
                task: 1,
                phase: 0,
                processor: 2,
                completion_us: 120,
                cost_us: 120,
                shard: None,
                rejected: vec![PlacementProbe {
                    processor: 0,
                    completion_us: 140,
                    cost_us: 140,
                    shard: 0,
                }],
            },
        );
        ledger.emit(
            Time::from_micros(20),
            TraceEvent::TaskDispatched {
                task: 1,
                processor: 2,
                slack_us: 380,
            },
        );
        ledger.emit(
            Time::from_micros(25),
            TraceEvent::CommDelay {
                task: 1,
                processor: 2,
                delay_us: 5,
            },
        );
        ledger.emit(
            Time::from_micros(25),
            TraceEvent::TaskStarted {
                task: 1,
                processor: 2,
            },
        );
        complete(&mut ledger, 1, 120, true, -380);

        let d = ledger.dossier(1).unwrap();
        assert_eq!(d.deadline_us, Some(500));
        assert_eq!(d.placements.len(), 1);
        assert_eq!(d.placements[0].rejected.len(), 1);
        assert_eq!(d.dispatches.len(), 1);
        assert_eq!(d.comm_delay_us, Some(5));
        assert_eq!(d.started_us, Some(25));
        assert!(matches!(
            d.attribution,
            Attribution::Hit {
                completed_us: 120,
                lateness_us: -380
            }
        ));
        let text = d.narrative().join("\n");
        assert!(text.contains("placed it on P2"));
        assert!(text.contains("rejected P0"));
        assert!(text.contains("verdict: Hit"));
    }

    #[test]
    fn drop_splits_on_whether_a_screening_was_recorded() {
        let mut ledger = DecisionLedger::new();
        admit(&mut ledger, 1, 50);
        admit(&mut ledger, 2, 60);
        // Task 2 fails a screen first; task 1 just expires.
        ledger.emit(
            Time::from_micros(30),
            TraceEvent::TaskScreened {
                task: 2,
                phase: 0,
                deadline_us: 60,
                probes: vec![ScreenProbe {
                    processor: 0,
                    available_us: 40,
                    demand_us: 30,
                    completion_us: 70,
                }],
            },
        );
        ledger.emit(Time::from_micros(55), TraceEvent::TaskDropped { task: 1 });
        ledger.emit(Time::from_micros(65), TraceEvent::TaskDropped { task: 2 });

        assert!(matches!(
            ledger.dossier(1).unwrap().attribution,
            Attribution::DroppedBeforeSchedulable { dropped_us: 55 }
        ));
        assert!(matches!(
            ledger.dossier(2).unwrap().attribution,
            Attribution::ScreenedThenExpired {
                dropped_us: 65,
                screenings: 1
            }
        ));
        let text = ledger.dossier(2).unwrap().narrative().join("\n");
        assert!(
            text.contains("P0: 40+30=70us"),
            "operands on record: {text}"
        );
    }

    #[test]
    fn retroactive_loss_supersedes_an_optimistic_completion() {
        let mut ledger = DecisionLedger::new();
        admit(&mut ledger, 3, 900);
        complete(&mut ledger, 3, 100, true, -800);
        ledger.emit(
            Time::from_micros(80),
            TraceEvent::TaskLost {
                task: 3,
                processor: 1,
            },
        );
        assert!(matches!(
            ledger.dossier(3).unwrap().attribution,
            Attribution::LostInFlight {
                lost_us: 80,
                processor: 1
            }
        ));
    }

    #[test]
    fn orphaning_reopens_the_chain_until_a_new_terminal_event() {
        let mut ledger = DecisionLedger::new();
        admit(&mut ledger, 4, 900);
        complete(&mut ledger, 4, 100, true, -800);
        ledger.emit(
            Time::from_micros(90),
            TraceEvent::TaskOrphaned {
                task: 4,
                processor: 0,
            },
        );
        assert_eq!(ledger.dossier(4).unwrap().attribution, Attribution::Pending);
        assert_eq!(ledger.dossier(4).unwrap().orphanings, 1);
        // Re-scheduled and executed late the second time around.
        complete(&mut ledger, 4, 950, false, 50);
        assert!(matches!(
            ledger.dossier(4).unwrap().attribution,
            Attribution::ExecutedMiss {
                completed_us: 950,
                lateness_us: 50
            }
        ));
    }

    #[test]
    fn counts_partition_the_task_set() {
        let mut ledger = DecisionLedger::new();
        for id in 0..6u64 {
            admit(&mut ledger, id, 100);
        }
        complete(&mut ledger, 0, 50, true, -50);
        complete(&mut ledger, 1, 150, false, 50);
        ledger.emit(Time::from_micros(100), TraceEvent::TaskDropped { task: 2 });
        ledger.emit(
            Time::from_micros(90),
            TraceEvent::TaskScreened {
                task: 3,
                phase: 1,
                deadline_us: 100,
                probes: Vec::new(),
            },
        );
        ledger.emit(Time::from_micros(110), TraceEvent::TaskDropped { task: 3 });
        ledger.emit(
            Time::from_micros(70),
            TraceEvent::TaskLost {
                task: 4,
                processor: 0,
            },
        );
        let c = ledger.counts();
        assert_eq!(c.hits, 1);
        assert_eq!(c.executed_misses, 1);
        assert_eq!(c.dropped_before_schedulable, 1);
        assert_eq!(c.screened_then_expired, 1);
        assert_eq!(c.dropped(), 2);
        assert_eq!(c.lost_in_flight, 1);
        assert_eq!(c.pending, 1, "task 5 never resolved");
        assert!(!c.is_partition_of(6), "pending task breaks the partition");
        complete(&mut ledger, 5, 60, true, -40);
        assert!(ledger.counts().is_partition_of(6));
    }

    #[test]
    fn dossiers_serialize_and_round_trip() {
        let mut ledger = DecisionLedger::new();
        admit(&mut ledger, 7, 300);
        complete(&mut ledger, 7, 100, true, -200);
        let d = ledger.dossier(7).unwrap().clone();
        let json = serde_json::to_string(&d).unwrap();
        let back: TaskDossier = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn from_events_replays_a_parsed_trace() {
        let events = vec![
            (
                Time::ZERO,
                TraceEvent::TaskAdmitted {
                    task: 9,
                    arrival_us: 0,
                    deadline_us: 40,
                    processing_us: 5,
                },
            ),
            (Time::from_micros(45), TraceEvent::TaskDropped { task: 9 }),
        ];
        let ledger = DecisionLedger::from_events(&events);
        assert_eq!(ledger.len(), 1);
        assert!(matches!(
            ledger.dossier(9).unwrap().attribution,
            Attribution::DroppedBeforeSchedulable { dropped_us: 45 }
        ));
    }
}
