//! Fan-out: one event stream, several sinks.

use paragon_des::trace::{TraceEvent, TraceSink};
use paragon_des::Time;

/// A [`TraceSink`] that forwards every event to each wrapped sink, so one
/// simulation pass can feed a JSONL file, a Perfetto buffer and a metrics
/// collector at once.
pub struct MultiSink<'a> {
    sinks: Vec<&'a mut dyn TraceSink>,
}

impl<'a> MultiSink<'a> {
    /// An empty fan-out (disabled until a sink is added).
    #[must_use]
    pub fn new() -> Self {
        MultiSink { sinks: Vec::new() }
    }

    /// Adds a sink.
    #[must_use]
    pub fn with(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Number of wrapped sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sink is attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Default for MultiSink<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for MultiSink<'_> {
    fn emit(&mut self, now: Time, event: TraceEvent) {
        if let Some((last, rest)) = self.sinks.split_last_mut() {
            for sink in rest {
                sink.emit(now, event.clone());
            }
            last.emit(now, event);
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::trace::{RecordingTracer, Tracer};

    #[test]
    fn forwards_to_every_sink() {
        let mut a = RecordingTracer::new();
        let mut b = RecordingTracer::new();
        {
            let mut multi = MultiSink::new().with(&mut a).with(&mut b);
            assert_eq!(multi.len(), 2);
            assert!(multi.enabled());
            multi.emit(Time::from_micros(3), TraceEvent::Note("x".into()));
        }
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
        assert_eq!(a.events()[0], b.events()[0]);
    }

    #[test]
    fn empty_or_all_disabled_reports_disabled() {
        let empty = MultiSink::new();
        assert!(empty.is_empty());
        assert!(!empty.enabled());
        let mut off = Tracer::disabled();
        let multi = MultiSink::new().with(&mut off);
        assert!(!multi.enabled());
    }
}
