//! A dependency-light metrics registry: named counters, gauges, and
//! log-linear histograms with bounded-relative-error quantiles.
//!
//! The histogram buckets magnitudes log-linearly: each power of two is
//! split into [`SUBBUCKETS`] equal linear sub-buckets, so any recorded
//! value lands in a bucket whose width is at most `1/SUBBUCKETS` of its
//! magnitude. Quantile estimates are therefore within one bucket's
//! relative error (`1/SUBBUCKETS`, ~6.25%) of the exact order statistic.
//! Negative values (slack and lateness are signed) get a mirrored set of
//! buckets.

use std::collections::BTreeMap;

use serde::Serialize;

/// Linear sub-buckets per power of two; bounds the relative quantile error.
pub const SUBBUCKETS: u64 = 16;

/// Bucket index of a non-negative magnitude, monotone in the magnitude.
fn bucket_of(magnitude: u64) -> usize {
    if magnitude < SUBBUCKETS {
        // The first SUBBUCKETS values are exact.
        return magnitude as usize;
    }
    // For v in [2^e, 2^(e+1)), e >= log2(SUBBUCKETS): sub-bucket width
    // 2^e / SUBBUCKETS, giving SUBBUCKETS buckets per octave.
    let exp = 63 - magnitude.leading_zeros() as u64;
    let width_shift = exp.saturating_sub(SUBBUCKETS.trailing_zeros() as u64);
    let offset = (magnitude >> width_shift) - SUBBUCKETS;
    let base = (exp - SUBBUCKETS.trailing_zeros() as u64) * SUBBUCKETS + SUBBUCKETS;
    (base + offset) as usize
}

/// Lowest magnitude mapping to `bucket` (the inverse of [`bucket_of`]).
fn bucket_floor(bucket: usize) -> u64 {
    let bucket = bucket as u64;
    if bucket < SUBBUCKETS {
        return bucket;
    }
    let octave = (bucket - SUBBUCKETS) / SUBBUCKETS;
    let offset = (bucket - SUBBUCKETS) % SUBBUCKETS;
    (SUBBUCKETS + offset) << octave
}

/// A log-linear histogram of signed integer samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Counts of positive (and zero) magnitudes, indexed by bucket.
    positive: Vec<u64>,
    /// Counts of negative magnitudes, indexed by bucket of `-value`.
    negative: Vec<u64>,
    count: u64,
    sum: i128,
    min: i64,
    max: i64,
}

// Not derived: the min/max trackers start at their opposite extremes, and a
// derived all-zeroes Default would silently clamp every min to <= 0.
impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            positive: Vec::new(),
            negative: Vec::new(),
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: i64) {
        let (side, magnitude) = if value < 0 {
            (&mut self.negative, value.unsigned_abs())
        } else {
            (&mut self.positive, value as u64)
        };
        let bucket = bucket_of(magnitude);
        if side.len() <= bucket {
            side.resize(bucket + 1, 0);
        }
        side[bucket] += 1;
        self.count += 1;
        self.sum += i128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<i64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<i64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples; `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as a bucket-resolution estimate:
    /// the lower bound of the bucket holding the order statistic, clamped
    /// to the observed min/max. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<i64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        // Rank of the order statistic (1-based, nearest-rank definition).
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        // Walk from the most negative bucket upward.
        for (bucket, &n) in self.negative.iter().enumerate().rev() {
            seen += n;
            if seen >= rank {
                let floor = bucket_floor(bucket);
                return Some((-(floor as i128)).clamp(self.min.into(), self.max.into()) as i64);
            }
        }
        for (bucket, &n) in self.positive.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let floor = bucket_floor(bucket);
                return Some((floor as i128).clamp(self.min.into(), self.max.into()) as i64);
            }
        }
        Some(self.max)
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> Option<i64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> Option<i64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> Option<i64> {
        self.quantile(0.99)
    }

    /// A serializable summary of this histogram.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
        }
    }
}

/// The JSON-facing digest of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min: Option<i64>,
    /// Largest sample.
    pub max: Option<i64>,
    /// Arithmetic mean.
    pub mean: Option<f64>,
    /// Median estimate.
    pub p50: Option<i64>,
    /// 90th-percentile estimate.
    pub p90: Option<i64>,
    /// 99th-percentile estimate.
    pub p99: Option<i64>,
}

/// Named counters, gauges and histograms for one run.
///
/// Names are free-form dotted strings (`"task.lateness_us"`); both
/// algorithms under comparison must use the same names so result files stay
/// join-able across runs.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records a sample into the named histogram (creating it if needed).
    pub fn record(&mut self, name: &str, value: i64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// The named counter's value (zero if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// A serializable snapshot of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// The snapshot rendered as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("metrics snapshot serializes")
    }
}

/// The JSON-facing image of a [`MetricsRegistry`].
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Monotone event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins point values.
    pub gauges: BTreeMap<String, f64>,
    /// Distribution digests.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of must be monotone at {v}");
            last = b;
            let floor = bucket_floor(b);
            assert!(floor <= v, "floor {floor} must not exceed {v}");
            // Bucket width bounds the error: floor is within 1/SUBBUCKETS.
            assert!(
                v - floor <= v / SUBBUCKETS,
                "value {v} floor {floor} too far"
            );
        }
    }

    #[test]
    fn quantiles_track_exact_order_statistics() {
        // Bucket resolution: estimates within one bucket (1/SUBBUCKETS
        // relative error) of the exact sorted-slice computation.
        let mut h = Histogram::new();
        let mut exact: Vec<i64> = Vec::new();
        // A deterministic spread over five orders of magnitude, signed.
        let mut x: i64 = 1;
        for i in 0..4_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
            let v = (x % 1_000_000).abs() * if i % 3 == 0 { -1 } else { 1 };
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let est = h.quantile(q).unwrap();
            let tolerance = (truth.abs() / SUBBUCKETS as i64).max(1);
            assert!(
                (est - truth).abs() <= tolerance,
                "q={q}: estimate {est} vs exact {truth} (tolerance {tolerance})"
            );
        }
    }

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.p50(), None);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(-42);
        assert_eq!(h.p50(), Some(-42));
        assert_eq!(h.p99(), Some(-42));
        assert_eq!(h.min(), Some(-42));
        assert_eq!(h.max(), Some(-42));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_quantile_panics() {
        let h = Histogram::new();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn registry_collects_and_serializes() {
        let mut r = MetricsRegistry::new();
        r.inc("task.dropped_at_start", 2);
        r.inc("task.dropped_at_start", 1);
        r.set_gauge("sim.finished_at_us", 5_000.0);
        for v in [10, 20, 30] {
            r.record("task.lateness_us", v);
        }
        assert_eq!(r.counter("task.dropped_at_start"), 3);
        assert_eq!(r.counter("never.touched"), 0);
        assert_eq!(r.gauge("sim.finished_at_us"), Some(5_000.0));
        assert_eq!(r.histogram("task.lateness_us").unwrap().count(), 3);
        // Registry-created histograms (via Default) must track extremes
        // exactly like Histogram::new(): min is 10, not a clamped 0.
        assert_eq!(r.histogram("task.lateness_us").unwrap().min(), Some(10));
        assert_eq!(r.histogram("task.lateness_us").unwrap().max(), Some(30));
        let json = r.to_json();
        assert!(json.contains("\"task.lateness_us\""));
        assert!(json.contains("\"p99\""));
        // The JSON parses back.
        let v = serde_json::from_str::<serde::Value>(&json).unwrap();
        assert!(v.get("histograms").is_some());
    }
}
