//! The relational schema with disjoint per-sub-database attribute domains.

use serde::{Deserialize, Serialize};

/// Schema of the global database.
///
/// Every sub-database has the same `attributes` columns. Attribute `a` of
/// sub-database `s` draws its values from a dedicated block of `domain_size`
/// integers, so all domains are pairwise disjoint and a value uniquely
/// identifies both its sub-database and its attribute — mirroring the
/// paper's "the attributes domains are disjoint from each other among the
/// sub-databases".
///
/// Attribute `0` is the key attribute the sub-databases are indexed on
/// (the paper's "attribute #1").
///
/// # Example
///
/// ```
/// use rtdb::Schema;
/// let schema = Schema::new(10, 100);
/// let base = schema.domain_base(3, 2);
/// assert_eq!(schema.subdb_of_value(base + 50), Some(3));
/// assert_eq!(schema.attr_of_value(base + 50), Some(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: usize,
    domain_size: u64,
}

impl Schema {
    /// The key attribute's index.
    pub const KEY_ATTR: usize = 0;

    /// Creates a schema with `attributes` columns, each domain holding
    /// `domain_size` distinct values.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(attributes: usize, domain_size: u64) -> Self {
        assert!(attributes > 0, "schema needs at least one attribute");
        assert!(domain_size > 0, "domains must be non-empty");
        Schema {
            attributes,
            domain_size,
        }
    }

    /// Number of attributes per tuple.
    #[must_use]
    pub fn attributes(&self) -> usize {
        self.attributes
    }

    /// Number of distinct values per (sub-database, attribute) domain.
    #[must_use]
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// First value of the domain of attribute `attr` in sub-database
    /// `subdb`.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range.
    #[must_use]
    pub fn domain_base(&self, subdb: usize, attr: usize) -> u64 {
        assert!(attr < self.attributes, "attribute {attr} out of range");
        (subdb as u64 * self.attributes as u64 + attr as u64) * self.domain_size
    }

    /// The sub-database whose domains contain `value`.
    #[must_use]
    pub fn subdb_of_value(&self, value: u64) -> Option<usize> {
        Some((value / (self.domain_size * self.attributes as u64)) as usize)
    }

    /// The attribute whose domain contains `value`.
    #[must_use]
    pub fn attr_of_value(&self, value: u64) -> Option<usize> {
        Some(((value / self.domain_size) % self.attributes as u64) as usize)
    }

    /// Whether `value` lies in the domain of `(subdb, attr)`.
    #[must_use]
    pub fn value_in_domain(&self, value: u64, subdb: usize, attr: usize) -> bool {
        let base = self.domain_base(subdb, attr);
        value >= base && value < base + self.domain_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_are_disjoint_and_invertible() {
        let s = Schema::new(10, 100);
        for subdb in 0..5 {
            for attr in 0..10 {
                let base = s.domain_base(subdb, attr);
                for probe in [base, base + 99] {
                    assert_eq!(s.subdb_of_value(probe), Some(subdb));
                    assert_eq!(s.attr_of_value(probe), Some(attr));
                    assert!(s.value_in_domain(probe, subdb, attr));
                }
                assert!(!s.value_in_domain(base + 100, subdb, attr));
            }
        }
    }

    #[test]
    fn adjacent_domains_do_not_overlap() {
        let s = Schema::new(3, 10);
        let end_of_first = s.domain_base(0, 0) + 9;
        let start_of_second = s.domain_base(0, 1);
        assert_eq!(start_of_second, end_of_first + 1);
        // last attr of subdb 0 is followed by first attr of subdb 1
        assert_eq!(s.domain_base(1, 0), s.domain_base(0, 2) + 10);
    }

    #[test]
    fn accessors() {
        let s = Schema::new(7, 42);
        assert_eq!(s.attributes(), 7);
        assert_eq!(s.domain_size(), 42);
        assert_eq!(Schema::KEY_ATTR, 0);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn zero_attributes_rejected() {
        let _ = Schema::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_domain_rejected() {
        let _ = Schema::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_attr_rejected() {
        let _ = Schema::new(2, 10).domain_base(0, 5);
    }
}
