//! Write operations on the database substrate.
//!
//! The paper's evaluation "assume[s] read-only transactions" to simplify the
//! study, but the underlying system is a general distributed database; this
//! module supplies the general mutation path — inserts, predicate-based
//! updates and deletes with full key-index maintenance — so the substrate
//! stands on its own. Writes are applied to one partition (primary copy);
//! replica refresh is the placement layer's concern and out of scope here,
//! exactly as in the paper.

use crate::database::{GlobalDatabase, SubDatabase, Tuple};
use crate::schema::Schema;
use crate::transaction::Transaction;

/// Errors from mutating the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// The tuple's arity does not match the schema.
    WrongArity {
        /// Values supplied.
        got: usize,
        /// Attributes expected.
        expected: usize,
    },
    /// A value lies outside its `(partition, attribute)` domain.
    ValueOutOfDomain {
        /// The offending attribute.
        attr: usize,
        /// The offending value.
        value: u64,
    },
    /// The referenced partition does not exist.
    NoSuchPartition(usize),
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutateError::WrongArity { got, expected } => {
                write!(f, "tuple has {got} values, schema expects {expected}")
            }
            MutateError::ValueOutOfDomain { attr, value } => {
                write!(f, "value {value} outside the domain of attribute {attr}")
            }
            MutateError::NoSuchPartition(p) => write!(f, "no such partition {p}"),
        }
    }
}

impl std::error::Error for MutateError {}

impl SubDatabase {
    /// Appends a tuple, maintaining the key index.
    pub(crate) fn insert_tuple(&mut self, tuple: Tuple) {
        let idx = self.tuples_mut().len();
        let key = tuple.key();
        self.tuples_mut().push(tuple);
        self.key_index_mut().entry(key).or_default().push(idx);
    }

    /// Rebuilds the key index from scratch (after updates/deletes).
    pub(crate) fn reindex(&mut self) {
        let entries: Vec<(u64, usize)> =
            self.iter().enumerate().map(|(i, t)| (t.key(), i)).collect();
        let index = self.key_index_mut();
        index.clear();
        for (key, i) in entries {
            index.entry(key).or_default().push(i);
        }
    }
}

impl GlobalDatabase {
    /// Validates `values` against partition `subdb`'s domains.
    fn validate(&self, subdb: usize, values: &[u64]) -> Result<(), MutateError> {
        let schema: &Schema = self.schema();
        if subdb >= self.partitions() {
            return Err(MutateError::NoSuchPartition(subdb));
        }
        if values.len() != schema.attributes() {
            return Err(MutateError::WrongArity {
                got: values.len(),
                expected: schema.attributes(),
            });
        }
        for (attr, &v) in values.iter().enumerate() {
            if !schema.value_in_domain(v, subdb, attr) {
                return Err(MutateError::ValueOutOfDomain { attr, value: v });
            }
        }
        Ok(())
    }

    /// Inserts a tuple into partition `subdb`, maintaining both the
    /// partition's key index and the host's global index.
    ///
    /// # Errors
    ///
    /// Rejects tuples with the wrong arity or out-of-domain values.
    pub fn insert(&mut self, subdb: usize, values: Vec<u64>) -> Result<(), MutateError> {
        self.validate(subdb, &values)?;
        let key = values[Schema::KEY_ATTR];
        self.subdb_mut(subdb).insert_tuple(Tuple::new(values));
        self.global_key_index_mut()
            .entry(key)
            .and_modify(|c| *c += 1)
            .or_insert(1);
        Ok(())
    }

    /// Sets attribute `attr` to `new_value` on every tuple of the target
    /// partition matching `txn`'s predicates. Returns the number of tuples
    /// changed.
    ///
    /// # Errors
    ///
    /// Rejects values outside the target partition's domain for `attr`.
    pub fn update_where(
        &mut self,
        txn: &Transaction,
        attr: usize,
        new_value: u64,
    ) -> Result<usize, MutateError> {
        let target = self.target_subdb(txn);
        if !self.schema().value_in_domain(new_value, target, attr) {
            return Err(MutateError::ValueOutOfDomain {
                attr,
                value: new_value,
            });
        }
        let key_changed = attr == Schema::KEY_ATTR;
        let mut old_keys: Vec<u64> = Vec::new();
        let sdb = self.subdb_mut(target);
        let mut changed = 0;
        for i in 0..sdb.len() {
            if txn.matches(sdb.tuples_mut()[i].values()) {
                if key_changed {
                    old_keys.push(sdb.tuples_mut()[i].key());
                }
                sdb.tuples_mut()[i].values_mut()[attr] = new_value;
                changed += 1;
            }
        }
        if key_changed && changed > 0 {
            sdb.reindex();
            for k in old_keys {
                self.decrement_global_key(k);
            }
            *self.global_key_index_mut().entry(new_value).or_insert(0) += changed;
        }
        Ok(changed)
    }

    /// Deletes every tuple of the target partition matching `txn`'s
    /// predicates. Returns the number of tuples removed.
    pub fn delete_where(&mut self, txn: &Transaction) -> usize {
        let target = self.target_subdb(txn);
        let sdb = self.subdb_mut(target);
        let mut removed_keys = Vec::new();
        sdb.tuples_mut().retain(|t| {
            if txn.matches(t.values()) {
                removed_keys.push(t.key());
                false
            } else {
                true
            }
        });
        sdb.reindex();
        let removed = removed_keys.len();
        for k in removed_keys {
            self.decrement_global_key(k);
        }
        removed
    }

    fn decrement_global_key(&mut self, key: u64) {
        if let Some(c) = self.global_key_index_mut().get_mut(&key) {
            *c -= 1;
            if *c == 0 {
                self.global_key_index_mut().remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::SimRng;

    fn db() -> GlobalDatabase {
        let mut rng = SimRng::seed_from(21);
        GlobalDatabase::generate(&Schema::new(3, 10), 2, 50, &mut rng)
    }

    /// The invariant every mutation must preserve.
    fn check_indexes(db: &GlobalDatabase) {
        for s in 0..db.partitions() {
            let sdb = db.subdb(s);
            let base = db.schema().domain_base(s, Schema::KEY_ATTR);
            for key in base..base + db.schema().domain_size() {
                let scan = sdb.iter().filter(|t| t.key() == key).count();
                assert_eq!(sdb.key_frequency(key), scan, "partition index for {key}");
                assert_eq!(db.global_key_frequency(key), scan, "global index for {key}");
            }
        }
    }

    #[test]
    fn insert_maintains_indexes() {
        let mut db = db();
        let before = db.total_tuples();
        let schema = *db.schema();
        let values: Vec<u64> = (0..3).map(|a| schema.domain_base(1, a) + 5).collect();
        db.insert(1, values.clone()).unwrap();
        assert_eq!(db.total_tuples(), before + 1);
        check_indexes(&db);
        // the new tuple is findable by key
        let freq = db.global_key_frequency(values[0]);
        assert!(freq >= 1);
    }

    #[test]
    fn insert_rejects_bad_tuples() {
        let mut db = db();
        let schema = *db.schema();
        assert!(matches!(
            db.insert(1, vec![schema.domain_base(1, 0)]),
            Err(MutateError::WrongArity {
                got: 1,
                expected: 3
            })
        ));
        // value from partition 0's domain inserted into partition 1
        let bad: Vec<u64> = (0..3).map(|a| schema.domain_base(0, a)).collect();
        assert!(matches!(
            db.insert(1, bad),
            Err(MutateError::ValueOutOfDomain { attr: 0, .. })
        ));
        assert!(matches!(
            db.insert(9, vec![0, 0, 0]),
            Err(MutateError::NoSuchPartition(9))
        ));
    }

    #[test]
    fn update_non_key_attribute() {
        let mut db = db();
        let schema = *db.schema();
        let probe = db.subdb(0).iter().next().unwrap().values()[1];
        let txn = Transaction::new(0, vec![(1, probe)]);
        let expected = db
            .subdb(0)
            .iter()
            .filter(|t| t.values()[1] == probe)
            .count();
        let new_value = schema.domain_base(0, 2) + 9;
        // update attr 2 of all matching tuples
        let changed = db.update_where(&txn, 2, new_value).unwrap();
        assert_eq!(changed, expected);
        check_indexes(&db);
        let now_there = db
            .subdb(0)
            .iter()
            .filter(|t| t.values()[1] == probe && t.values()[2] == new_value)
            .count();
        assert_eq!(now_there, expected);
    }

    #[test]
    fn update_key_attribute_reindexes() {
        let mut db = db();
        let schema = *db.schema();
        let old_key = db.subdb(0).iter().next().unwrap().key();
        let txn = Transaction::new(0, vec![(0, old_key)]);
        let moved = db.global_key_frequency(old_key);
        let new_key = schema.domain_base(0, 0) + 3;
        let prior_at_new = db.global_key_frequency(new_key);
        let changed = db.update_where(&txn, 0, new_key).unwrap();
        assert_eq!(changed, moved);
        assert_eq!(db.global_key_frequency(old_key), 0);
        assert_eq!(db.global_key_frequency(new_key), prior_at_new + moved);
        check_indexes(&db);
    }

    #[test]
    fn update_rejects_out_of_domain_value() {
        let mut db = db();
        let schema = *db.schema();
        let probe = db.subdb(0).iter().next().unwrap().key();
        let txn = Transaction::new(0, vec![(0, probe)]);
        let foreign = schema.domain_base(1, 1);
        assert!(db.update_where(&txn, 1, foreign).is_err());
    }

    #[test]
    fn delete_removes_and_reindexes() {
        let mut db = db();
        let key = db.subdb(1).iter().next().unwrap().key();
        let freq = db.global_key_frequency(key);
        assert!(freq > 0);
        let before = db.total_tuples();
        let txn = Transaction::new(0, vec![(0, key)]);
        let removed = db.delete_where(&txn);
        assert_eq!(removed, freq);
        assert_eq!(db.total_tuples(), before - removed);
        assert_eq!(db.global_key_frequency(key), 0);
        let (checked, matches) = db.execute(&txn);
        assert_eq!((checked, matches), (0, 0));
        check_indexes(&db);
    }

    #[test]
    fn delete_of_absent_predicate_is_noop() {
        let mut db = db();
        let schema = *db.schema();
        // find an absent key value if any
        let base = schema.domain_base(0, 0);
        let absent = (base..base + schema.domain_size()).find(|&k| db.global_key_frequency(k) == 0);
        if let Some(k) = absent {
            let before = db.total_tuples();
            assert_eq!(db.delete_where(&Transaction::new(0, vec![(0, k)])), 0);
            assert_eq!(db.total_tuples(), before);
        }
    }

    #[test]
    fn mutate_error_displays() {
        for e in [
            MutateError::WrongArity {
                got: 1,
                expected: 2,
            },
            MutateError::ValueOutOfDomain { attr: 0, value: 9 },
            MutateError::NoSuchPartition(3),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
