//! Distributed real-time database substrate — the application of the
//! paper's Section 5.
//!
//! A global relational database of `r` tuples is divided into `d`
//! sub-databases; each sub-database resides in the local memory of one or
//! more processors depending on the replication rate. Transactions are
//! read-only: executing one means iterating a checking process over the
//! tuples of its target sub-database and counting partial matches against
//! the transaction's attribute-value predicates.
//!
//! The pieces:
//!
//! * [`Schema`] — attribute count and per-attribute value domains; domains
//!   are **disjoint across sub-databases**, so any value identifies its
//!   sub-database (the paper's simplifying assumption),
//! * [`SubDatabase`]/[`GlobalDatabase`] — the tuple store, its partitioning
//!   and the **global key index** the host maintains to estimate costs,
//! * [`Transaction`] — a set of attribute-value predicates,
//! * [`CostModel`] — the paper's `Execution_Cost(q) = k × (frequency of the
//!   matching key value if the key is given, else r/d)` estimator, plus the
//!   actual execution that the worst-case estimate provably bounds.
//!
//! # Example
//!
//! ```
//! use paragon_des::SimRng;
//! use rtdb::{CostModel, GlobalDatabase, Schema, Transaction};
//!
//! let schema = Schema::new(10, 100);
//! let mut rng = SimRng::seed_from(1);
//! let db = GlobalDatabase::generate(&schema, 4, 500, &mut rng);
//! let txn = Transaction::new(0, vec![(0, schema.domain_base(2, 0) + 7)]);
//! assert_eq!(db.target_subdb(&txn), 2);
//! let cost = CostModel::default();
//! // keyed: estimate = k * frequency of that key value
//! let est = cost.estimate(&db, &txn);
//! let (checked, _matches) = db.execute(&txn);
//! assert!(cost.actual(checked) <= est);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod database;
mod mutation;
mod schema;
mod transaction;

pub use cost::CostModel;
pub use database::{GlobalDatabase, SubDatabase, Tuple};
pub use mutation::MutateError;
pub use schema::Schema;
pub use transaction::Transaction;
