//! Read-only transactions: sets of attribute-value predicates.

use serde::{Deserialize, Serialize};

use crate::schema::Schema;

/// A read-only transaction `q`: "characterized by the attribute values that
/// the transaction aims to locate in the distributed database".
///
/// Predicates are `(attribute index, value)` pairs; a tuple matches when it
/// carries every predicated value. Because attribute domains are disjoint
/// across sub-databases, all of a well-formed transaction's values come from
/// a single sub-database — its *target*.
///
/// # Example
///
/// ```
/// use rtdb::{Schema, Transaction};
/// let schema = Schema::new(10, 100);
/// let txn = Transaction::new(7, vec![
///     (0, schema.domain_base(1, 0) + 5), // key predicate
///     (3, schema.domain_base(1, 3) + 9),
/// ]);
/// assert!(txn.key_value().is_some());
/// assert_eq!(txn.predicates().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    id: u64,
    predicates: Vec<(usize, u64)>,
}

impl Transaction {
    /// Creates a transaction from its predicates.
    ///
    /// # Panics
    ///
    /// Panics if `predicates` is empty or contains a duplicate attribute.
    #[must_use]
    pub fn new(id: u64, predicates: Vec<(usize, u64)>) -> Self {
        assert!(!predicates.is_empty(), "transaction needs predicates");
        let mut attrs: Vec<usize> = predicates.iter().map(|&(a, _)| a).collect();
        attrs.sort_unstable();
        attrs.dedup();
        assert_eq!(
            attrs.len(),
            predicates.len(),
            "transaction {id} has duplicate attribute predicates"
        );
        Transaction { id, predicates }
    }

    /// The transaction's identifier.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The attribute-value predicates.
    #[must_use]
    pub fn predicates(&self) -> &[(usize, u64)] {
        &self.predicates
    }

    /// The value predicated on the key attribute, if any — this is what
    /// makes the cheap index-estimated path possible.
    #[must_use]
    pub fn key_value(&self) -> Option<u64> {
        self.predicates
            .iter()
            .find(|&&(a, _)| a == Schema::KEY_ATTR)
            .map(|&(_, v)| v)
    }

    /// The sub-database this transaction targets, derived from its first
    /// predicate value.
    ///
    /// # Panics
    ///
    /// Panics (in debug spirit, via assert) if the predicates span multiple
    /// sub-databases — such a transaction matches nothing and indicates a
    /// generator bug.
    #[must_use]
    pub fn target_subdb(&self, schema: &Schema) -> usize {
        let target = schema
            .subdb_of_value(self.predicates[0].1)
            .expect("value maps to a sub-database");
        for &(attr, v) in &self.predicates {
            assert!(
                schema.value_in_domain(v, target, attr),
                "transaction {} predicate ({attr}, {v}) not in sub-database {target}'s domain",
                self.id
            );
        }
        target
    }

    /// Whether `tuple_values` (indexed by attribute) matches every
    /// predicate.
    #[must_use]
    pub fn matches(&self, tuple_values: &[u64]) -> bool {
        self.predicates
            .iter()
            .all(|&(a, v)| tuple_values.get(a) == Some(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(4, 10)
    }

    #[test]
    fn key_value_detection() {
        let s = schema();
        let with_key = Transaction::new(0, vec![(0, s.domain_base(1, 0) + 3)]);
        assert_eq!(with_key.key_value(), Some(s.domain_base(1, 0) + 3));
        let without = Transaction::new(1, vec![(2, s.domain_base(1, 2) + 3)]);
        assert_eq!(without.key_value(), None);
    }

    #[test]
    fn target_subdb_derived_from_values() {
        let s = schema();
        let txn = Transaction::new(
            0,
            vec![(1, s.domain_base(2, 1) + 5), (3, s.domain_base(2, 3))],
        );
        assert_eq!(txn.target_subdb(&s), 2);
    }

    #[test]
    #[should_panic(expected = "not in sub-database")]
    fn cross_subdb_predicates_panic() {
        let s = schema();
        let txn = Transaction::new(0, vec![(0, s.domain_base(0, 0)), (1, s.domain_base(1, 1))]);
        let _ = txn.target_subdb(&s);
    }

    #[test]
    fn matching_requires_all_predicates() {
        let s = schema();
        let txn = Transaction::new(
            0,
            vec![(0, s.domain_base(0, 0) + 1), (2, s.domain_base(0, 2) + 2)],
        );
        let mut tuple = vec![
            s.domain_base(0, 0) + 1,
            s.domain_base(0, 1),
            s.domain_base(0, 2) + 2,
            s.domain_base(0, 3),
        ];
        assert!(txn.matches(&tuple));
        tuple[2] += 1;
        assert!(!txn.matches(&tuple));
    }

    #[test]
    #[should_panic(expected = "needs predicates")]
    fn empty_predicates_rejected() {
        let _ = Transaction::new(0, vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attribute_rejected() {
        let _ = Transaction::new(0, vec![(1, 10), (1, 11)]);
    }
}
