//! The paper's transaction cost estimator.
//!
//! > `Execution_Cost(q) = k × [ Frequency_of_matching_key_values IF key ∈ F
//! > ELSE r/d ]`
//!
//! where `F` is the set of attributes the transaction predicates on and `k`
//! is the processing time of one checking iteration. The host evaluates this
//! from its global index *before* scheduling, so the scheduler works with
//! worst-case processing times — which is what lets the deadline-guarantee
//! theorem carry over to actual executions.

use paragon_des::Duration;
use serde::{Deserialize, Serialize};

use crate::database::GlobalDatabase;
use crate::transaction::Transaction;

/// Prices transactions in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    per_tuple: Duration,
}

impl CostModel {
    /// A model charging `per_tuple` (`k`) for each checking iteration.
    ///
    /// # Panics
    ///
    /// Panics if `per_tuple` is zero — a free checking iteration would make
    /// every transaction's processing time zero, which the task model
    /// rejects.
    #[must_use]
    pub fn new(per_tuple: Duration) -> Self {
        assert!(!per_tuple.is_zero(), "per-tuple cost must be non-zero");
        CostModel { per_tuple }
    }

    /// The per-iteration cost `k`.
    #[must_use]
    pub fn per_tuple(&self) -> Duration {
        self.per_tuple
    }

    /// The paper's worst-case estimate for `txn`, with a floor of one
    /// iteration (a keyed transaction whose key value has frequency zero
    /// still costs an index probe).
    #[must_use]
    pub fn estimate(&self, db: &GlobalDatabase, txn: &Transaction) -> Duration {
        let iterations = db.tuples_to_check(txn).max(1) as u64;
        self.per_tuple * iterations
    }

    /// The actual cost of an execution that checked `tuples_checked`
    /// tuples (same floor as [`CostModel::estimate`]).
    #[must_use]
    pub fn actual(&self, tuples_checked: usize) -> Duration {
        self.per_tuple * (tuples_checked.max(1) as u64)
    }
}

impl Default for CostModel {
    /// One microsecond per checking iteration — a full 1000-tuple
    /// sub-database scan costs 1 ms.
    fn default() -> Self {
        CostModel::new(Duration::from_micros(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use paragon_des::SimRng;

    fn db() -> GlobalDatabase {
        let mut rng = SimRng::seed_from(3);
        GlobalDatabase::generate(&Schema::new(4, 8), 3, 100, &mut rng)
    }

    #[test]
    fn keyed_estimate_uses_frequency() {
        let db = db();
        let cost = CostModel::new(Duration::from_micros(2));
        let key = db.subdb(0).iter().next().unwrap().key();
        let txn = Transaction::new(0, vec![(0, key)]);
        let freq = db.global_key_frequency(key) as u64;
        assert!(freq > 0);
        assert_eq!(cost.estimate(&db, &txn), Duration::from_micros(2) * freq);
    }

    #[test]
    fn unkeyed_estimate_prices_full_scan() {
        let db = db();
        let cost = CostModel::default();
        let probe = db.schema().domain_base(1, 2) + 1;
        let txn = Transaction::new(0, vec![(2, probe)]);
        assert_eq!(
            cost.estimate(&db, &txn),
            Duration::from_micros(1) * db.subdb(1).len() as u64
        );
    }

    #[test]
    fn estimate_bounds_actual_for_many_transactions() {
        let db = db();
        let cost = CostModel::default();
        let mut rng = SimRng::seed_from(11);
        for id in 0..200 {
            let s = rng.uniform_usize(0..db.partitions());
            let n_preds = rng.uniform_usize(1..db.schema().attributes());
            let mut attrs: Vec<usize> = (0..db.schema().attributes()).collect();
            rng.shuffle(&mut attrs);
            let preds: Vec<(usize, u64)> = attrs[..n_preds]
                .iter()
                .map(|&a| {
                    let base = db.schema().domain_base(s, a);
                    (a, rng.uniform_u64(base..base + db.schema().domain_size()))
                })
                .collect();
            let txn = Transaction::new(id, preds);
            let (checked, _) = db.execute(&txn);
            assert!(
                cost.actual(checked) <= cost.estimate(&db, &txn),
                "estimate must be a worst case"
            );
        }
    }

    #[test]
    fn zero_frequency_key_has_floor_cost() {
        let db = db();
        let cost = CostModel::default();
        // Find a key value with no occurrences (domain has 8 values, 100
        // tuples: collisions certain, but absent values possible; construct
        // a value outside the generated range is not in-domain, so probe all
        // domain values and accept the test trivially if all are present).
        let base = db.schema().domain_base(0, 0);
        let absent =
            (base..base + db.schema().domain_size()).find(|&k| db.global_key_frequency(k) == 0);
        if let Some(k) = absent {
            let txn = Transaction::new(0, vec![(0, k)]);
            assert_eq!(cost.estimate(&db, &txn), Duration::from_micros(1));
            let (checked, matches) = db.execute(&txn);
            assert_eq!((checked, matches), (0, 0));
            assert_eq!(cost.actual(checked), Duration::from_micros(1));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_per_tuple_rejected() {
        let _ = CostModel::new(Duration::ZERO);
    }
}
