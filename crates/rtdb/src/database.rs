//! The tuple store: sub-databases, the global database and its key index.

use std::collections::HashMap;

use paragon_des::SimRng;
use serde::{Deserialize, Serialize};

use crate::schema::Schema;
use crate::transaction::Transaction;

/// One stored tuple: a value per attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<u64>,
}

impl Tuple {
    /// Wraps attribute values (indexed by attribute).
    #[must_use]
    pub fn new(values: Vec<u64>) -> Self {
        Tuple { values }
    }

    /// The attribute values.
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The key-attribute value.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.values[Schema::KEY_ATTR]
    }

    /// Mutable access for the write path (crate-internal).
    pub(crate) fn values_mut(&mut self) -> &mut Vec<u64> {
        &mut self.values
    }
}

/// One partition of the global database, indexed on the key attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubDatabase {
    id: usize,
    tuples: Vec<Tuple>,
    key_index: HashMap<u64, Vec<usize>>,
}

impl SubDatabase {
    /// Builds a sub-database (and its key index) from tuples.
    #[must_use]
    pub fn new(id: usize, tuples: Vec<Tuple>) -> Self {
        let mut key_index: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, t) in tuples.iter().enumerate() {
            key_index.entry(t.key()).or_default().push(i);
        }
        SubDatabase {
            id,
            tuples,
            key_index,
        }
    }

    /// This partition's index (its [`DataObjectId`] in placements).
    ///
    /// [`DataObjectId`]: https://docs.rs/paragon-platform
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of stored tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the partition is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// How many tuples carry the key value `key`.
    #[must_use]
    pub fn key_frequency(&self, key: u64) -> usize {
        self.key_index.get(&key).map_or(0, Vec::len)
    }

    /// Executes `txn` against this partition: returns
    /// `(tuples_checked, matches)`. With a key predicate only the indexed
    /// candidates are checked; otherwise the whole partition is scanned —
    /// exactly the work the paper's cost estimator prices.
    #[must_use]
    pub fn execute(&self, txn: &Transaction) -> (usize, usize) {
        match txn.key_value() {
            Some(key) => {
                let empty = Vec::new();
                let candidates = self.key_index.get(&key).unwrap_or(&empty);
                let matches = candidates
                    .iter()
                    .filter(|&&i| txn.matches(self.tuples[i].values()))
                    .count();
                (candidates.len(), matches)
            }
            None => {
                let matches = self
                    .tuples
                    .iter()
                    .filter(|t| txn.matches(t.values()))
                    .count();
                (self.tuples.len(), matches)
            }
        }
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Mutable tuple storage for the write path (crate-internal).
    pub(crate) fn tuples_mut(&mut self) -> &mut Vec<Tuple> {
        &mut self.tuples
    }

    /// Mutable key index for the write path (crate-internal).
    pub(crate) fn key_index_mut(&mut self) -> &mut HashMap<u64, Vec<usize>> {
        &mut self.key_index
    }
}

/// The global database: `d` sub-databases plus the host-side global key
/// index used for cost estimation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalDatabase {
    schema: Schema,
    subdbs: Vec<SubDatabase>,
    global_key_index: HashMap<u64, usize>,
}

impl GlobalDatabase {
    /// Assembles a database from already-built partitions.
    ///
    /// # Panics
    ///
    /// Panics if `subdbs` is empty.
    #[must_use]
    pub fn new(schema: Schema, subdbs: Vec<SubDatabase>) -> Self {
        assert!(
            !subdbs.is_empty(),
            "a database needs at least one partition"
        );
        let mut global_key_index = HashMap::new();
        for sdb in &subdbs {
            for t in sdb.iter() {
                *global_key_index.entry(t.key()).or_insert(0) += 1;
            }
        }
        GlobalDatabase {
            schema,
            subdbs,
            global_key_index,
        }
    }

    /// Generates `d` partitions of `tuples_per` uniformly distributed tuples
    /// each ("a uniformly distributed item is generated for each
    /// attribute-value based on its domain").
    #[must_use]
    pub fn generate(schema: &Schema, d: usize, tuples_per: usize, rng: &mut SimRng) -> Self {
        let subdbs = (0..d)
            .map(|s| {
                let tuples = (0..tuples_per)
                    .map(|_| {
                        let values = (0..schema.attributes())
                            .map(|a| {
                                let base = schema.domain_base(s, a);
                                rng.uniform_u64(base..base + schema.domain_size())
                            })
                            .collect();
                        Tuple::new(values)
                    })
                    .collect();
                SubDatabase::new(s, tuples)
            })
            .collect();
        GlobalDatabase::new(*schema, subdbs)
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of partitions `d`.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.subdbs.len()
    }

    /// Total tuple count `r`.
    #[must_use]
    pub fn total_tuples(&self) -> usize {
        self.subdbs.iter().map(SubDatabase::len).sum()
    }

    /// A partition by index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn subdb(&self, s: usize) -> &SubDatabase {
        &self.subdbs[s]
    }

    /// The partition `txn` targets.
    #[must_use]
    pub fn target_subdb(&self, txn: &Transaction) -> usize {
        txn.target_subdb(&self.schema)
    }

    /// The host's global index: how many tuples (database-wide) carry key
    /// value `key`. This is what prices keyed transactions without touching
    /// the partitions.
    #[must_use]
    pub fn global_key_frequency(&self, key: u64) -> usize {
        self.global_key_index.get(&key).copied().unwrap_or(0)
    }

    /// Worst-case number of tuples a worker must check to execute `txn`
    /// (the bracketed factor of the paper's `Execution_Cost`).
    #[must_use]
    pub fn tuples_to_check(&self, txn: &Transaction) -> usize {
        match txn.key_value() {
            Some(key) => self.global_key_frequency(key),
            None => self.subdb(self.target_subdb(txn)).len(),
        }
    }

    /// Executes `txn` on its target partition, returning
    /// `(tuples_checked, matches)`.
    #[must_use]
    pub fn execute(&self, txn: &Transaction) -> (usize, usize) {
        self.subdb(self.target_subdb(txn)).execute(txn)
    }

    /// Mutable partition access for the write path (crate-internal).
    pub(crate) fn subdb_mut(&mut self, s: usize) -> &mut SubDatabase {
        &mut self.subdbs[s]
    }

    /// Mutable global index for the write path (crate-internal).
    pub(crate) fn global_key_index_mut(&mut self) -> &mut HashMap<u64, usize> {
        &mut self.global_key_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(3, 5)
    }

    fn generated() -> GlobalDatabase {
        let mut rng = SimRng::seed_from(7);
        GlobalDatabase::generate(&schema(), 4, 200, &mut rng)
    }

    #[test]
    fn generation_respects_domains() {
        let db = generated();
        assert_eq!(db.partitions(), 4);
        assert_eq!(db.total_tuples(), 800);
        for s in 0..4 {
            for t in db.subdb(s).iter() {
                for (a, &v) in t.values().iter().enumerate() {
                    assert!(
                        db.schema().value_in_domain(v, s, a),
                        "value {v} escaped domain"
                    );
                }
            }
        }
    }

    #[test]
    fn key_index_agrees_with_scan() {
        let db = generated();
        for s in 0..db.partitions() {
            let sdb = db.subdb(s);
            let base = db.schema().domain_base(s, Schema::KEY_ATTR);
            for key in base..base + db.schema().domain_size() {
                let by_scan = sdb.iter().filter(|t| t.key() == key).count();
                assert_eq!(sdb.key_frequency(key), by_scan);
                assert_eq!(db.global_key_frequency(key), by_scan, "domains disjoint");
            }
        }
    }

    #[test]
    fn keyed_execution_checks_only_candidates() {
        let db = generated();
        let s = 1;
        let key = db
            .subdb(s)
            .iter()
            .next()
            .expect("non-empty partition")
            .key();
        let txn = Transaction::new(0, vec![(0, key)]);
        let (checked, matches) = db.execute(&txn);
        assert_eq!(checked, db.subdb(s).key_frequency(key));
        assert_eq!(
            matches, checked,
            "key-only predicate matches all candidates"
        );
        assert!(checked < db.subdb(s).len(), "index avoids the full scan");
    }

    #[test]
    fn unkeyed_execution_scans_the_partition() {
        let db = generated();
        let s = 2;
        let probe = db.schema().domain_base(s, 1) + 3;
        let txn = Transaction::new(0, vec![(1, probe)]);
        let (checked, matches) = db.execute(&txn);
        assert_eq!(checked, db.subdb(s).len());
        let expected = db
            .subdb(s)
            .iter()
            .filter(|t| t.values()[1] == probe)
            .count();
        assert_eq!(matches, expected);
    }

    #[test]
    fn tuples_to_check_bounds_actual_work() {
        let db = generated();
        for s in 0..db.partitions() {
            let base0 = db.schema().domain_base(s, 0);
            let base1 = db.schema().domain_base(s, 1);
            for (id, preds) in [
                (0u64, vec![(0, base0 + 2)]),
                (1, vec![(1, base1 + 2)]),
                (2, vec![(0, base0 + 2), (1, base1 + 1)]),
            ] {
                let txn = Transaction::new(id, preds);
                let (checked, _) = db.execute(&txn);
                assert!(
                    checked <= db.tuples_to_check(&txn),
                    "estimate must bound the work"
                );
            }
        }
    }

    #[test]
    fn absent_key_is_free() {
        let db = generated();
        // a key value outside every domain
        let txn = Transaction::new(0, vec![(0, db.schema().domain_base(0, 0))]);
        // value may or may not exist; instead probe frequency-0 explicitly:
        let ghost = 999_999_999;
        assert_eq!(db.global_key_frequency(ghost), 0);
        let _ = txn; // silence unused in case
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = SimRng::seed_from(5);
        let mut r2 = SimRng::seed_from(5);
        let a = GlobalDatabase::generate(&schema(), 2, 50, &mut r1);
        let b = GlobalDatabase::generate(&schema(), 2, 50, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn empty_database_rejected() {
        let _ = GlobalDatabase::new(schema(), vec![]);
    }

    #[test]
    fn tuple_accessors() {
        let t = Tuple::new(vec![7, 8, 9]);
        assert_eq!(t.values(), &[7, 8, 9]);
        assert_eq!(t.key(), 7);
    }
}
