//! `Batch(j)` — the input to one scheduling phase.
//!
//! From the paper (Section 4): "Initially, Batch(0) consists of a set of the
//! arrived tasks. At the end of each scheduling phase j, Batch(j+1) is formed
//! by removing, from Batch(j), the scheduled tasks and tasks whose deadlines
//! are missed, and by adding the set of tasks that arrived during scheduling
//! phase j."

use std::collections::HashSet;

use paragon_des::{Duration, Time};

use crate::ids::TaskId;
use crate::task::Task;

/// Result of expiring tasks out of a batch: which tasks were dropped because
/// their deadline could no longer be met.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DropOutcome {
    /// Tasks removed by the filter, in batch order.
    pub dropped: Vec<Task>,
}

impl DropOutcome {
    /// Number of dropped tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dropped.len()
    }

    /// Whether nothing was dropped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dropped.is_empty()
    }
}

/// The set of tasks a scheduling phase works on.
///
/// A batch preserves insertion order (which downstream heuristics may
/// re-sort) and enforces id uniqueness.
///
/// # Example
///
/// ```
/// use paragon_des::{Duration, Time};
/// use rt_task::{Batch, Task, TaskId};
///
/// let mk = |id: u64, d_ms: u64| {
///     Task::builder(TaskId::new(id))
///         .processing_time(Duration::from_millis(1))
///         .deadline(Time::from_millis(d_ms))
///         .build()
/// };
/// let mut batch = Batch::new(0);
/// batch.push(mk(0, 2));
/// batch.push(mk(1, 50));
/// // at t=5ms task 0 can no longer meet its 2ms deadline
/// let dropped = batch.drop_expired(Time::from_millis(5));
/// assert_eq!(dropped.len(), 1);
/// assert_eq!(batch.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Batch {
    phase: u64,
    tasks: Vec<Task>,
    ids: HashSet<TaskId>,
}

impl Batch {
    /// Creates an empty batch for scheduling phase `phase`.
    #[must_use]
    pub fn new(phase: u64) -> Self {
        Batch {
            phase,
            tasks: Vec::new(),
            ids: HashSet::new(),
        }
    }

    /// The phase index `j` this batch feeds.
    #[must_use]
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// Adds one task.
    ///
    /// # Panics
    ///
    /// Panics if a task with the same id is already in the batch: batches are
    /// sets, and a duplicate means the driver double-enqueued an arrival.
    pub fn push(&mut self, task: Task) {
        assert!(
            self.ids.insert(task.id()),
            "duplicate task {} pushed into batch {}",
            task.id(),
            self.phase
        );
        self.tasks.push(task);
    }

    /// Adds many tasks (same duplicate rule as [`Batch::push`]).
    pub fn extend_tasks<I: IntoIterator<Item = Task>>(&mut self, tasks: I) {
        for t in tasks {
            self.push(t);
        }
    }

    /// Number of tasks in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks, in insertion order.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Iterates over the tasks.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Whether the batch contains a task with the given id.
    #[must_use]
    pub fn contains(&self, id: TaskId) -> bool {
        self.ids.contains(&id)
    }

    /// Removes every task whose deadline can no longer be met at `now`
    /// (the paper's `p_i + t_c > d_i` filter), returning the dropped tasks.
    pub fn drop_expired(&mut self, now: Time) -> DropOutcome {
        let mut dropped = Vec::new();
        self.tasks.retain(|t| {
            if t.is_expired(now) {
                dropped.push(t.clone());
                false
            } else {
                true
            }
        });
        for t in &dropped {
            self.ids.remove(&t.id());
        }
        DropOutcome { dropped }
    }

    /// Removes the tasks with the given ids (the tasks scheduled during this
    /// phase), returning how many were actually present.
    pub fn remove_scheduled(&mut self, scheduled: &HashSet<TaskId>) -> usize {
        let before = self.tasks.len();
        self.tasks.retain(|t| !scheduled.contains(&t.id()));
        for id in scheduled {
            self.ids.remove(id);
        }
        before - self.tasks.len()
    }

    /// Builds the next batch `Batch(j+1)`: this batch's unscheduled survivors
    /// plus the tasks that arrived during the phase. Consumes `self`.
    ///
    /// Expired-task filtering is the caller's job (it needs the drop list for
    /// metrics); see [`Batch::drop_expired`].
    #[must_use]
    pub fn into_next(self, arrivals: Vec<Task>) -> Batch {
        let mut next = Batch::new(self.phase + 1);
        next.extend_tasks(self.tasks);
        next.extend_tasks(arrivals);
        next
    }

    /// The minimum slack over tasks in the batch at `now` — the `Min_Slack`
    /// term of the paper's scheduling-time criterion (Figure 3). `None` when
    /// the batch is empty.
    #[must_use]
    pub fn min_slack(&self, now: Time) -> Option<Duration> {
        self.tasks.iter().map(|t| t.slack(now)).min()
    }

    /// The earliest deadline in the batch, if any.
    #[must_use]
    pub fn earliest_deadline(&self) -> Option<Time> {
        self.tasks.iter().map(Task::deadline).min()
    }

    /// Total processing demand (sum of `p_i`) — useful for load diagnostics.
    #[must_use]
    pub fn total_processing(&self) -> Duration {
        self.tasks.iter().map(Task::processing_time).sum()
    }
}

impl IntoIterator for Batch {
    type Item = Task;
    type IntoIter = std::vec::IntoIter<Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskId;

    fn mk(id: u64, p_ms: u64, d_ms: u64) -> Task {
        Task::builder(TaskId::new(id))
            .processing_time(Duration::from_millis(p_ms))
            .deadline(Time::from_millis(d_ms))
            .build()
    }

    #[test]
    fn push_and_query() {
        let mut b = Batch::new(0);
        assert!(b.is_empty());
        b.push(mk(0, 1, 10));
        b.push(mk(1, 2, 20));
        assert_eq!(b.len(), 2);
        assert!(b.contains(TaskId::new(0)));
        assert!(!b.contains(TaskId::new(5)));
        assert_eq!(b.phase(), 0);
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate task")]
    fn duplicate_push_panics() {
        let mut b = Batch::new(0);
        b.push(mk(0, 1, 10));
        b.push(mk(0, 1, 10));
    }

    #[test]
    fn drop_expired_filters_and_reports() {
        let mut b = Batch::new(3);
        b.push(mk(0, 5, 6)); // expired at t>=1ms+eps: 5+t_c > 6
        b.push(mk(1, 1, 100));
        let out = b.drop_expired(Time::from_millis(2));
        assert_eq!(out.len(), 1);
        assert_eq!(out.dropped[0].id(), TaskId::new(0));
        assert!(!out.is_empty());
        assert_eq!(b.len(), 1);
        assert!(!b.contains(TaskId::new(0)));
        // dropped id can be reused afterwards (it is gone from the id set)
        b.push(mk(0, 1, 200));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn drop_expired_none_when_all_feasible() {
        let mut b = Batch::new(0);
        b.push(mk(0, 1, 100));
        let out = b.drop_expired(Time::ZERO);
        assert!(out.is_empty());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn remove_scheduled_takes_out_ids() {
        let mut b = Batch::new(0);
        for i in 0..5 {
            b.push(mk(i, 1, 100));
        }
        let scheduled: HashSet<TaskId> = [0u64, 2, 4].into_iter().map(TaskId::new).collect();
        let removed = b.remove_scheduled(&scheduled);
        assert_eq!(removed, 3);
        assert_eq!(b.len(), 2);
        assert!(b.contains(TaskId::new(1)));
        assert!(b.contains(TaskId::new(3)));
    }

    #[test]
    fn remove_scheduled_ignores_absent_ids() {
        let mut b = Batch::new(0);
        b.push(mk(0, 1, 100));
        let scheduled: HashSet<TaskId> = [9u64].into_iter().map(TaskId::new).collect();
        assert_eq!(b.remove_scheduled(&scheduled), 0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn into_next_merges_survivors_and_arrivals() {
        let mut b = Batch::new(7);
        b.push(mk(0, 1, 100));
        let next = b.into_next(vec![mk(1, 1, 50)]);
        assert_eq!(next.phase(), 8);
        assert_eq!(next.len(), 2);
        assert!(next.contains(TaskId::new(0)));
        assert!(next.contains(TaskId::new(1)));
    }

    #[test]
    fn min_slack_and_earliest_deadline() {
        let mut b = Batch::new(0);
        assert_eq!(b.min_slack(Time::ZERO), None);
        assert_eq!(b.earliest_deadline(), None);
        b.push(mk(0, 2, 10)); // slack 8ms at t=0
        b.push(mk(1, 1, 5)); // slack 4ms at t=0
        assert_eq!(b.min_slack(Time::ZERO), Some(Duration::from_millis(4)));
        assert_eq!(b.earliest_deadline(), Some(Time::from_millis(5)));
        assert_eq!(b.min_slack(Time::from_millis(4)), Some(Duration::ZERO));
    }

    #[test]
    fn total_processing_sums() {
        let mut b = Batch::new(0);
        b.push(mk(0, 2, 100));
        b.push(mk(1, 3, 100));
        assert_eq!(b.total_processing(), Duration::from_millis(5));
    }

    #[test]
    fn into_iterator_yields_tasks() {
        let mut b = Batch::new(0);
        b.push(mk(0, 1, 10));
        b.push(mk(1, 1, 10));
        let ids: Vec<u64> = (&b).into_iter().map(|t| t.id().as_u64()).collect();
        assert_eq!(ids, vec![0, 1]);
        let owned: Vec<Task> = b.into_iter().collect();
        assert_eq!(owned.len(), 2);
    }
}
