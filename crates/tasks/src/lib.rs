//! The real-time task model of the RT-SADS reproduction.
//!
//! The paper (Section 2) schedules a set `T` of `n` *aperiodic,
//! non-preemptable, independent* real-time tasks `T_i` on the `m` processors
//! `P_j` of a distributed-memory multiprocessor. Each task is characterized by
//!
//! * a processing time `p_i` ([`Task::processing_time`]),
//! * an arrival time `a_i` ([`Task::arrival`]),
//! * a deadline `d_i` ([`Task::deadline`]), and
//! * a communication cost `c_ij` toward each processor, which is zero if the
//!   task has *affinity* with the processor (its referenced data objects live
//!   in that processor's local memory) and otherwise depends on the
//!   interconnect model ([`CommModel`]): the paper's flat constant `C`, a
//!   2D-mesh distance ([`MeshSpec`]), or a hierarchical node/rack class
//!   ([`TopologySpec`]).
//!
//! Batching (Section 4): the input to scheduling phase `j` is `Batch(j)`; at
//! the end of the phase, scheduled tasks and tasks whose deadlines have
//! already been missed are removed, and newly arrived tasks are added
//! ([`Batch`]).
//!
//! # Example
//!
//! ```
//! use paragon_des::{Duration, Time};
//! use rt_task::{AffinitySet, CommModel, ProcessorId, Task, TaskId};
//!
//! let task = Task::builder(TaskId::new(1))
//!     .processing_time(Duration::from_millis(2))
//!     .arrival(Time::ZERO)
//!     .deadline(Time::from_millis(10))
//!     .affinity(AffinitySet::from_iter([ProcessorId::new(0)]))
//!     .build();
//! let comm = CommModel::constant(Duration::from_millis(1));
//! assert_eq!(comm.cost(&task, ProcessorId::new(0)), Duration::ZERO);
//! assert_eq!(comm.cost(&task, ProcessorId::new(1)), Duration::from_millis(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affinity;
mod batch;
mod ids;
mod mesh;
mod resources;
mod task;
mod topology;

pub use affinity::AffinitySet;
pub use batch::{Batch, DropOutcome};
pub use ids::{ProcessorId, TaskId};
pub use mesh::MeshSpec;
pub use resources::{AccessMode, ResourceEats, ResourceId, ResourceRequest};
pub use task::{CommModel, Task, TaskBuilder};
pub use topology::TopologySpec;
