//! A 2D-mesh interconnect model — the Intel Paragon's actual topology.
//!
//! The paper models communication as a distance-independent constant `C`,
//! justified by cut-through (wormhole) routing. This module supplies the
//! *unabstracted* alternative: processors laid out on a `cols × rows` mesh,
//! message cost = startup latency + per-hop latency × Manhattan distance.
//! The experiment harness uses it to validate that the constant-`C`
//! abstraction does not change the paper's conclusions (DESIGN.md, Ext. I).

use serde::{Deserialize, Serialize};

use crate::ids::ProcessorId;

/// Geometry and per-message costs of a 2D mesh.
///
/// Working processors are mapped to mesh nodes in row-major order:
/// `P_k` sits at `(k % cols, k / cols)`.
///
/// # Example
///
/// ```
/// use rt_task::{MeshSpec, ProcessorId};
///
/// let mesh = MeshSpec::new(5, 2, 500, 125); // 5x2 mesh, 500us + 125us/hop
/// // P0 at (0,0), P9 at (4,1): distance 5 hops
/// assert_eq!(mesh.distance(ProcessorId::new(0), ProcessorId::new(9)), 5);
/// assert_eq!(mesh.hop_cost_micros(5), 500 + 5 * 125);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshSpec {
    cols: u16,
    rows: u16,
    startup_us: u32,
    per_hop_us: u32,
}

impl MeshSpec {
    /// Creates a mesh of `cols × rows` nodes with the given startup and
    /// per-hop message costs (microseconds).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(cols: u16, rows: u16, startup_us: u32, per_hop_us: u32) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        MeshSpec {
            cols,
            rows,
            startup_us,
            per_hop_us,
        }
    }

    /// Number of mesh nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        usize::from(self.cols) * usize::from(self.rows)
    }

    /// The `(x, y)` coordinate of processor `p` (row-major placement).
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the mesh.
    #[must_use]
    pub fn coords(&self, p: ProcessorId) -> (u16, u16) {
        assert!(
            p.index() < self.nodes(),
            "processor {p} outside a {}x{} mesh",
            self.cols,
            self.rows
        );
        (
            (p.index() % usize::from(self.cols)) as u16,
            (p.index() / usize::from(self.cols)) as u16,
        )
    }

    /// Manhattan (XY-routing) distance between two processors, in hops.
    #[must_use]
    pub fn distance(&self, a: ProcessorId, b: ProcessorId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        u32::from(ax.abs_diff(bx)) + u32::from(ay.abs_diff(by))
    }

    /// Message cost for a path of `hops` hops, in microseconds.
    #[must_use]
    pub fn hop_cost_micros(&self, hops: u32) -> u64 {
        u64::from(self.startup_us) + u64::from(hops) * u64::from(self.per_hop_us)
    }

    /// The mesh diameter in hops (worst-case distance).
    #[must_use]
    pub fn diameter(&self) -> u32 {
        u32::from(self.cols - 1) + u32::from(self.rows - 1)
    }

    /// The mean pairwise cost over all distinct node pairs — useful for
    /// picking a constant `C` equivalent to this mesh.
    #[must_use]
    pub fn mean_pair_cost_micros(&self) -> f64 {
        let n = self.nodes();
        if n < 2 {
            return f64::from(self.startup_us);
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                total +=
                    self.hop_cost_micros(self.distance(ProcessorId::new(a), ProcessorId::new(b)));
                pairs += 1;
            }
        }
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_are_row_major() {
        let m = MeshSpec::new(4, 2, 100, 10);
        assert_eq!(m.nodes(), 8);
        assert_eq!(m.coords(ProcessorId::new(0)), (0, 0));
        assert_eq!(m.coords(ProcessorId::new(3)), (3, 0));
        assert_eq!(m.coords(ProcessorId::new(4)), (0, 1));
        assert_eq!(m.coords(ProcessorId::new(7)), (3, 1));
    }

    #[test]
    fn distances_are_manhattan() {
        let m = MeshSpec::new(4, 2, 100, 10);
        let d = |a: usize, b: usize| m.distance(ProcessorId::new(a), ProcessorId::new(b));
        assert_eq!(d(0, 0), 0);
        assert_eq!(d(0, 1), 1);
        assert_eq!(d(0, 7), 4); // (0,0) -> (3,1)
        assert_eq!(d(7, 0), 4, "symmetric");
        assert_eq!(m.diameter(), 4);
    }

    #[test]
    fn costs_scale_with_hops() {
        let m = MeshSpec::new(3, 3, 500, 125);
        assert_eq!(m.hop_cost_micros(0), 500);
        assert_eq!(m.hop_cost_micros(4), 1_000);
        assert_eq!(m.diameter(), 4);
    }

    #[test]
    fn mean_pair_cost_between_min_and_max() {
        let m = MeshSpec::new(5, 2, 500, 125);
        let mean = m.mean_pair_cost_micros();
        let min = m.hop_cost_micros(1) as f64;
        let max = m.hop_cost_micros(m.diameter()) as f64;
        assert!(mean > min && mean < max, "mean {mean} not in ({min},{max})");
    }

    #[test]
    fn single_node_mesh() {
        let m = MeshSpec::new(1, 1, 42, 7);
        assert_eq!(m.nodes(), 1);
        assert_eq!(m.mean_pair_cost_micros(), 42.0);
        assert_eq!(m.diameter(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_mesh_processor_panics() {
        let m = MeshSpec::new(2, 2, 1, 1);
        let _ = m.coords(ProcessorId::new(4));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = MeshSpec::new(0, 3, 1, 1);
    }
}
