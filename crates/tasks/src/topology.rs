//! A hierarchical cluster topology: processors grouped into nodes, nodes
//! grouped into racks.
//!
//! The paper's platform model prices every non-affine execution at the
//! distance-independent constant `C`. That abstraction holds inside one
//! tightly-coupled machine, but a sharded cluster has (at least) three cost
//! classes: fetching from a processor in the same node is near-free,
//! crossing nodes pays the interconnect constant `C`, and crossing racks
//! pays a larger `C'`. This module supplies that hierarchy. A 1-node,
//! 1-rack topology with all classes set to `C` degenerates exactly to the
//! paper's flat model ([`TopologySpec::flat`]) — the differential suite
//! pins the two bit-identical.

use paragon_des::Duration;
use serde::{Deserialize, Serialize};

use crate::affinity::AffinitySet;
use crate::ids::ProcessorId;

/// Geometry and per-class communication costs of a processor → node → rack
/// hierarchy.
///
/// Processors are assigned to nodes contiguously and as evenly as possible
/// (the first `workers % nodes` nodes get one extra processor), and nodes to
/// racks the same way, so membership is pure arithmetic — no lookup tables.
///
/// `fanout` is a hint for shard-first candidate generation: how many of the
/// best-screening nodes the search should expand per skip round.
///
/// # Example
///
/// ```
/// use rt_task::{ProcessorId, TopologySpec};
///
/// // 8 processors on 4 nodes across 2 racks; free intra-node, 500us
/// // inter-node, 2000us inter-rack.
/// let topo = TopologySpec::new(8, 4, 2, 0, 500, 2_000);
/// assert_eq!(topo.node_of(ProcessorId::new(3)), 1);
/// assert_eq!(topo.node_range(1), (2, 4));
/// assert_eq!(topo.rack_of_node(3), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TopologySpec {
    workers: u32,
    nodes: u32,
    racks: u32,
    intra_node_us: u64,
    inter_node_us: u64,
    inter_rack_us: u64,
    fanout: u32,
}

impl TopologySpec {
    /// The default number of best-screening nodes the search expands per
    /// skip round.
    pub const DEFAULT_FANOUT: u32 = 2;

    /// Creates a topology of `workers` processors on `nodes` nodes across
    /// `racks` racks, with the given per-class costs (microseconds).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= racks <= nodes <= workers` and the costs are
    /// non-decreasing in distance (`intra <= inter_node <= inter_rack`).
    #[must_use]
    pub fn new(
        workers: u32,
        nodes: u32,
        racks: u32,
        intra_node_us: u64,
        inter_node_us: u64,
        inter_rack_us: u64,
    ) -> Self {
        assert!(
            1 <= racks && racks <= nodes && nodes <= workers,
            "topology requires 1 <= racks ({racks}) <= nodes ({nodes}) <= workers ({workers})"
        );
        assert!(
            intra_node_us <= inter_node_us && inter_node_us <= inter_rack_us,
            "topology costs must be non-decreasing in distance: \
             intra {intra_node_us} <= inter-node {inter_node_us} <= inter-rack {inter_rack_us}"
        );
        TopologySpec {
            workers,
            nodes,
            racks,
            intra_node_us,
            inter_node_us,
            inter_rack_us,
            fanout: Self::DEFAULT_FANOUT,
        }
    }

    /// The paper's flat model expressed as a degenerate topology: one node,
    /// one rack, every class costing `c`. [`TopologySpec::cost`] is then
    /// pointwise identical to `CommModel::constant(c)`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn flat(workers: u32, c: Duration) -> Self {
        let us = c.as_micros();
        TopologySpec::new(workers, 1, 1, us, us, us)
    }

    /// Overrides the shard-first fanout hint.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    #[must_use]
    pub fn with_fanout(mut self, fanout: u32) -> Self {
        assert!(fanout > 0, "fanout must be non-zero");
        self.fanout = fanout;
        self
    }

    /// Number of processors.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers as usize
    }

    /// Number of nodes (shards).
    #[must_use]
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes as usize
    }

    /// Number of racks.
    #[must_use]
    pub fn racks(&self) -> usize {
        self.racks as usize
    }

    /// The shard-first fanout hint.
    #[must_use]
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout as usize
    }

    /// Cost of an intra-node fetch.
    #[must_use]
    pub fn intra_node_cost(&self) -> Duration {
        Duration::from_micros(self.intra_node_us)
    }

    /// Cost of an inter-node (same rack) fetch — the paper's `C`.
    #[must_use]
    pub fn inter_node_cost(&self) -> Duration {
        Duration::from_micros(self.inter_node_us)
    }

    /// Cost of an inter-rack fetch — `C'`.
    #[must_use]
    pub fn inter_rack_cost(&self) -> Duration {
        Duration::from_micros(self.inter_rack_us)
    }

    /// The worst cost class this topology can charge: inter-rack when there
    /// is more than one rack, inter-node when more than one node, intra-node
    /// otherwise. An affinity-free task pays this everywhere.
    #[must_use]
    pub fn worst_class(&self) -> Duration {
        if self.racks > 1 {
            self.inter_rack_cost()
        } else if self.nodes > 1 {
            self.inter_node_cost()
        } else {
            self.intra_node_cost()
        }
    }

    /// The node hosting processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the topology.
    #[must_use]
    pub fn node_of(&self, p: ProcessorId) -> usize {
        assert!(
            p.index() < self.workers(),
            "processor {p} outside a {}-worker topology",
            self.workers
        );
        Self::part_of(self.workers(), self.nodes(), p.index())
    }

    /// The half-open processor range `[lo, hi)` of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a valid node index.
    #[must_use]
    #[inline]
    pub fn node_range(&self, n: usize) -> (usize, usize) {
        assert!(n < self.nodes(), "node {n} outside {} nodes", self.nodes);
        Self::part_range(self.workers(), self.nodes(), n)
    }

    /// The rack hosting node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a valid node index.
    #[must_use]
    pub fn rack_of_node(&self, n: usize) -> usize {
        assert!(n < self.nodes(), "node {n} outside {} nodes", self.nodes);
        Self::part_of(self.nodes(), self.racks(), n)
    }

    /// The rack hosting processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the topology.
    #[must_use]
    pub fn rack_of(&self, p: ProcessorId) -> usize {
        self.rack_of_node(self.node_of(p))
    }

    /// The half-open *processor* range `[lo, hi)` covered by rack `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a valid rack index.
    #[must_use]
    pub fn rack_proc_range(&self, r: usize) -> (usize, usize) {
        assert!(r < self.racks(), "rack {r} outside {} racks", self.racks);
        let (node_lo, node_hi) = Self::part_range(self.nodes(), self.racks(), r);
        let (lo, _) = self.node_range(node_lo);
        let (_, hi) = self.node_range(node_hi - 1);
        (lo, hi)
    }

    /// The communication cost for executing a task with `affinity` on `p`:
    /// zero on an affine processor, then the cheapest class whose span still
    /// reaches an affine processor (intra-node, inter-node, inter-rack). A
    /// task with no affinity pays [`TopologySpec::worst_class`] everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the topology.
    #[must_use]
    pub fn cost(&self, affinity: &AffinitySet, p: ProcessorId) -> Duration {
        if affinity.contains(p) {
            return Duration::ZERO;
        }
        if affinity.is_empty() {
            return self.worst_class();
        }
        let node = self.node_of(p);
        let (lo, hi) = self.node_range(node);
        if affinity.intersects_range(lo, hi) {
            return self.intra_node_cost();
        }
        let (rlo, rhi) = self.rack_proc_range(self.rack_of_node(node));
        if affinity.intersects_range(rlo, rhi) {
            return self.inter_node_cost();
        }
        self.inter_rack_cost()
    }

    /// A lower bound on [`TopologySpec::cost`] over every processor of node
    /// `n`: zero when the node holds an affine processor, else the cheapest
    /// class reaching one. Exact for the node's best processor, so a shard
    /// screen built on it never rules out a feasible node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a valid node index.
    #[must_use]
    #[inline]
    pub fn min_node_cost(&self, affinity: &AffinitySet, n: usize) -> Duration {
        let (lo, hi) = self.node_range(n);
        if affinity.is_empty() {
            return self.worst_class();
        }
        if affinity.intersects_range(lo, hi) {
            return Duration::ZERO;
        }
        let (rlo, rhi) = self.rack_proc_range(self.rack_of_node(n));
        if affinity.intersects_range(rlo, rhi) {
            return self.inter_node_cost();
        }
        self.inter_rack_cost()
    }

    /// Which of `parts` contiguous balanced partitions of `count` items item
    /// `i` falls into.
    fn part_of(count: usize, parts: usize, i: usize) -> usize {
        let base = count / parts;
        let rem = count % parts;
        let fat = rem * (base + 1);
        if i < fat {
            i / (base + 1)
        } else {
            rem + (i - fat) / base
        }
    }

    /// The half-open item range of partition `p` under the same scheme.
    fn part_range(count: usize, parts: usize, p: usize) -> (usize, usize) {
        let base = count / parts;
        let rem = count % parts;
        let lo = p * base + p.min(rem);
        let hi = lo + base + usize::from(p < rem);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aff(procs: &[usize]) -> AffinitySet {
        procs.iter().copied().map(ProcessorId::new).collect()
    }

    #[test]
    fn balanced_contiguous_partition() {
        // 10 workers on 3 nodes: sizes 4, 3, 3.
        let t = TopologySpec::new(10, 3, 1, 0, 100, 100);
        assert_eq!(t.node_range(0), (0, 4));
        assert_eq!(t.node_range(1), (4, 7));
        assert_eq!(t.node_range(2), (7, 10));
        for p in 0..10usize {
            let n = t.node_of(ProcessorId::new(p));
            let (lo, hi) = t.node_range(n);
            assert!(lo <= p && p < hi, "P{p} not inside its node {n}");
        }
    }

    #[test]
    fn racks_partition_nodes() {
        // 8 workers, 4 nodes (2 each), 2 racks (2 nodes each).
        let t = TopologySpec::new(8, 4, 2, 0, 100, 400);
        assert_eq!(t.rack_of_node(0), 0);
        assert_eq!(t.rack_of_node(1), 0);
        assert_eq!(t.rack_of_node(2), 1);
        assert_eq!(t.rack_of_node(3), 1);
        assert_eq!(t.rack_proc_range(0), (0, 4));
        assert_eq!(t.rack_proc_range(1), (4, 8));
        assert_eq!(t.rack_of(ProcessorId::new(5)), 1);
    }

    #[test]
    fn cost_classes_by_distance() {
        let t = TopologySpec::new(8, 4, 2, 1, 100, 400);
        let a = aff(&[0]); // P0 lives on node 0, rack 0
        let us = |p: usize| t.cost(&a, ProcessorId::new(p)).as_micros();
        assert_eq!(us(0), 0, "affine processor is free");
        assert_eq!(us(1), 1, "same node pays intra-node");
        assert_eq!(us(2), 100, "same rack, other node pays inter-node");
        assert_eq!(us(4), 400, "other rack pays inter-rack");
        assert_eq!(us(7), 400);
    }

    #[test]
    fn empty_affinity_pays_worst_class_everywhere() {
        let sharded = TopologySpec::new(8, 4, 2, 0, 100, 400);
        let single_rack = TopologySpec::new(8, 4, 1, 0, 100, 100);
        let flat = TopologySpec::new(8, 1, 1, 50, 50, 50);
        let none = AffinitySet::new();
        for p in 0..8usize {
            assert_eq!(sharded.cost(&none, ProcessorId::new(p)).as_micros(), 400);
            assert_eq!(
                single_rack.cost(&none, ProcessorId::new(p)).as_micros(),
                100
            );
            assert_eq!(flat.cost(&none, ProcessorId::new(p)).as_micros(), 50);
        }
    }

    #[test]
    fn flat_matches_constant_model_pointwise() {
        use crate::ids::TaskId;
        use crate::task::Task;
        use paragon_des::Time;

        let c = Duration::from_micros(2_000);
        let topo = TopologySpec::flat(8, c);
        let constant = crate::task::CommModel::constant(c);
        let affinities = [
            AffinitySet::new(),
            aff(&[3]),
            aff(&[0, 7]),
            AffinitySet::all(8),
        ];
        for a in &affinities {
            let task = Task::builder(TaskId::new(1))
                .processing_time(Duration::from_micros(10))
                .deadline(Time::from_millis(1))
                .affinity(a.clone())
                .build();
            for p in ProcessorId::all(8) {
                assert_eq!(
                    topo.cost(a, p),
                    constant.cost(&task, p),
                    "flat topology diverges from Constant at {p} with affinity {a}"
                );
            }
        }
    }

    #[test]
    fn min_node_cost_lower_bounds_every_member() {
        let t = TopologySpec::new(10, 3, 2, 1, 100, 400);
        let affinities = [AffinitySet::new(), aff(&[0]), aff(&[5, 9]), aff(&[2, 7])];
        for a in &affinities {
            for n in 0..t.nodes() {
                let bound = t.min_node_cost(a, n);
                let (lo, hi) = t.node_range(n);
                let best = (lo..hi)
                    .map(|p| t.cost(a, ProcessorId::new(p)))
                    .min()
                    .unwrap();
                assert_eq!(
                    bound, best,
                    "node {n} bound {bound} != best member cost {best} for {a}"
                );
            }
        }
    }

    #[test]
    fn fanout_defaults_and_overrides() {
        let t = TopologySpec::new(8, 4, 2, 0, 100, 400);
        assert_eq!(t.fanout(), TopologySpec::DEFAULT_FANOUT as usize);
        assert_eq!(t.with_fanout(3).fanout(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let t = TopologySpec::new(1024, 16, 4, 0, 2_000, 4_000).with_fanout(3);
        let json = serde_json::to_string(&t).unwrap();
        let back: TopologySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    #[should_panic(expected = "1 <= racks")]
    fn more_nodes_than_workers_rejected() {
        let _ = TopologySpec::new(4, 8, 1, 0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_costs_rejected() {
        let _ = TopologySpec::new(8, 2, 1, 100, 50, 50);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_topology_processor_panics() {
        let t = TopologySpec::new(4, 2, 1, 0, 1, 1);
        let _ = t.node_of(ProcessorId::new(4));
    }
}
