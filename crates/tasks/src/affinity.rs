//! Task-to-processor affinity sets.
//!
//! A task has *affinity* with a processor when the data objects it references
//! reside in that processor's local memory (paper, Section 2). The degree of
//! affinity in a system is controlled by the data replication rate: high
//! replication means each task has affinity with many processors.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::ProcessorId;

/// The set of processors a task has affinity with, stored as a bitset.
///
/// Executing the task on a member processor incurs no communication cost;
/// executing it anywhere else costs the interconnect constant `C`.
///
/// # Example
///
/// ```
/// use rt_task::{AffinitySet, ProcessorId};
///
/// let mut set = AffinitySet::new();
/// set.insert(ProcessorId::new(2));
/// set.insert(ProcessorId::new(5));
/// assert!(set.contains(ProcessorId::new(2)));
/// assert!(!set.contains(ProcessorId::new(3)));
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AffinitySet {
    words: Vec<u64>,
}

impl AffinitySet {
    /// Creates an empty affinity set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set containing every processor in `P0..P{count-1}` —
    /// full replication, where any processor can run the task locally.
    #[must_use]
    pub fn all(count: usize) -> Self {
        let mut set = AffinitySet::new();
        for p in ProcessorId::all(count) {
            set.insert(p);
        }
        set
    }

    /// Adds a processor to the set. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, proc: ProcessorId) -> bool {
        let (word, bit) = Self::locate(proc);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let had = self.words[word] & (1 << bit) != 0;
        self.words[word] |= 1 << bit;
        !had
    }

    /// Removes a processor from the set. Returns `true` if it was present.
    pub fn remove(&mut self, proc: ProcessorId) -> bool {
        let (word, bit) = Self::locate(proc);
        if word >= self.words.len() {
            return false;
        }
        let had = self.words[word] & (1 << bit) != 0;
        self.words[word] &= !(1 << bit);
        self.trim();
        had
    }

    /// Whether `proc` is a member.
    #[must_use]
    #[inline]
    pub fn contains(&self, proc: ProcessorId) -> bool {
        let (word, bit) = Self::locate(proc);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of member processors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty (the task has affinity with no processor and
    /// always pays the communication cost).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over member processors in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessorId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |bit| w & (1u64 << bit) != 0)
                .map(move |bit| ProcessorId::new(wi * 64 + bit))
        })
    }

    /// The fraction of the `total` processors this task has affinity with —
    /// the paper's "degree of affinity" indicator.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    #[must_use]
    pub fn degree(&self, total: usize) -> f64 {
        assert!(total > 0, "degree requires a non-zero processor count");
        self.len() as f64 / total as f64
    }

    /// Whether any member falls inside the half-open index range `[lo, hi)`
    /// — the shard-membership test used by hierarchical topologies. Runs on
    /// whole words with boundary masks, not per-bit probes.
    #[must_use]
    pub fn intersects_range(&self, lo: usize, hi: usize) -> bool {
        if lo >= hi {
            return false;
        }
        let start_word = lo / 64;
        let end_word = (hi - 1) / 64;
        for wi in start_word..=end_word {
            let Some(&w) = self.words.get(wi) else { break };
            let mut mask = u64::MAX;
            if wi == start_word {
                mask &= u64::MAX << (lo % 64);
            }
            if wi == end_word {
                let top = hi - wi * 64;
                if top < 64 {
                    mask &= (1u64 << top) - 1;
                }
            }
            if w & mask != 0 {
                return true;
            }
        }
        false
    }

    /// The set of processors present in both `self` and `other` — used to
    /// compute the affinity of a task referencing several data objects (only
    /// processors holding *all* of them serve it locally).
    #[must_use]
    pub fn intersection(&self, other: &AffinitySet) -> AffinitySet {
        let n = self.words.len().min(other.words.len());
        let words = (0..n).map(|i| self.words[i] & other.words[i]).collect();
        let mut set = AffinitySet { words };
        set.trim();
        set
    }

    /// The set of processors present in either `self` or `other`.
    #[must_use]
    pub fn union(&self, other: &AffinitySet) -> AffinitySet {
        let n = self.words.len().max(other.words.len());
        let words = (0..n)
            .map(|i| {
                self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0)
            })
            .collect();
        AffinitySet { words }
    }

    fn locate(proc: ProcessorId) -> (usize, usize) {
        (proc.index() / 64, proc.index() % 64)
    }

    /// Drops trailing zero words so that equal sets compare equal regardless
    /// of their mutation history.
    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl FromIterator<ProcessorId> for AffinitySet {
    fn from_iter<I: IntoIterator<Item = ProcessorId>>(iter: I) -> Self {
        let mut set = AffinitySet::new();
        for p in iter {
            set.insert(p);
        }
        set
    }
}

impl Extend<ProcessorId> for AffinitySet {
    fn extend<I: IntoIterator<Item = ProcessorId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl fmt::Display for AffinitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = AffinitySet::new();
        assert!(s.is_empty());
        assert!(s.insert(ProcessorId::new(3)));
        assert!(
            !s.insert(ProcessorId::new(3)),
            "double insert reports false"
        );
        assert!(s.contains(ProcessorId::new(3)));
        assert!(!s.contains(ProcessorId::new(2)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(ProcessorId::new(3)));
        assert!(!s.remove(ProcessorId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn works_past_64_processors() {
        let mut s = AffinitySet::new();
        s.insert(ProcessorId::new(0));
        s.insert(ProcessorId::new(63));
        s.insert(ProcessorId::new(64));
        s.insert(ProcessorId::new(130));
        assert_eq!(s.len(), 4);
        assert!(s.contains(ProcessorId::new(130)));
        assert!(!s.contains(ProcessorId::new(129)));
        let members: Vec<usize> = s.iter().map(ProcessorId::index).collect();
        assert_eq!(members, vec![0, 63, 64, 130]);
    }

    #[test]
    fn all_covers_every_processor() {
        let s = AffinitySet::all(10);
        assert_eq!(s.len(), 10);
        for p in ProcessorId::all(10) {
            assert!(s.contains(p));
        }
        assert!(!s.contains(ProcessorId::new(10)));
        assert_eq!(s.degree(10), 1.0);
    }

    #[test]
    fn degree_is_fraction() {
        let s: AffinitySet = [0, 1, 2].into_iter().map(ProcessorId::new).collect();
        assert!((s.degree(10) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero processor count")]
    fn degree_rejects_zero_total() {
        let _ = AffinitySet::new().degree(0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: AffinitySet = ProcessorId::all(2).collect();
        s.extend([ProcessorId::new(7)]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(ProcessorId::new(7)));
    }

    #[test]
    fn display_lists_members() {
        let s: AffinitySet = [1usize, 4].into_iter().map(ProcessorId::new).collect();
        assert_eq!(s.to_string(), "{P1,P4}");
        assert_eq!(AffinitySet::new().to_string(), "{}");
    }

    #[test]
    fn intersection_and_union() {
        let a: AffinitySet = [0usize, 1, 70].into_iter().map(ProcessorId::new).collect();
        let b: AffinitySet = [1usize, 2].into_iter().map(ProcessorId::new).collect();
        let i = a.intersection(&b);
        assert_eq!(
            i.iter().map(ProcessorId::index).collect::<Vec<_>>(),
            vec![1]
        );
        let u = a.union(&b);
        assert_eq!(
            u.iter().map(ProcessorId::index).collect::<Vec<_>>(),
            vec![0, 1, 2, 70]
        );
        // asymmetric word lengths in both directions
        assert_eq!(b.intersection(&a), i);
        assert_eq!(b.union(&a), u);
        // identities
        assert_eq!(a.intersection(&a), a);
        assert_eq!(a.union(&a), a);
        assert!(a.intersection(&AffinitySet::new()).is_empty());
    }

    #[test]
    fn intersects_range_matches_naive_scan() {
        let s: AffinitySet = [0usize, 5, 63, 64, 130]
            .into_iter()
            .map(ProcessorId::new)
            .collect();
        for lo in 0..140 {
            for hi in lo..141 {
                let naive = (lo..hi).any(|p| s.contains(ProcessorId::new(p)));
                assert_eq!(
                    s.intersects_range(lo, hi),
                    naive,
                    "range [{lo},{hi}) disagrees with the naive scan"
                );
            }
        }
        assert!(!s.intersects_range(10, 10), "empty range never intersects");
        assert!(
            !s.intersects_range(20, 10),
            "inverted range never intersects"
        );
        assert!(!AffinitySet::new().intersects_range(0, 1_000));
    }

    #[test]
    fn remove_out_of_range_is_noop() {
        let mut s = AffinitySet::new();
        assert!(!s.remove(ProcessorId::new(999)));
    }
}
