//! The task type itself, its builder, and the communication-cost model.

use std::fmt;

use paragon_des::{Duration, Time};
use serde::{Deserialize, Serialize};

use crate::affinity::AffinitySet;
use crate::ids::{ProcessorId, TaskId};
use crate::resources::ResourceRequest;

/// An aperiodic, non-preemptable, independent real-time task (`T_i`).
///
/// A task is immutable once built: schedulers never mutate tasks, they only
/// decide where and when to run them. Construct one through [`Task::builder`].
///
/// # Example
///
/// ```
/// use paragon_des::{Duration, Time};
/// use rt_task::{AffinitySet, ProcessorId, Task, TaskId};
///
/// let t = Task::builder(TaskId::new(0))
///     .processing_time(Duration::from_millis(4))
///     .arrival(Time::from_millis(1))
///     .deadline(Time::from_millis(20))
///     .affinity(AffinitySet::from_iter([ProcessorId::new(1)]))
///     .build();
/// assert_eq!(t.slack(Time::from_millis(1)), Duration::from_millis(15));
/// assert!(!t.is_expired(Time::from_millis(1)));
/// assert!(t.is_expired(Time::from_millis(17)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    id: TaskId,
    processing_time: Duration,
    arrival: Time,
    deadline: Time,
    affinity: AffinitySet,
    resources: Vec<ResourceRequest>,
}

impl Task {
    /// Starts building a task with the given id.
    #[must_use]
    pub fn builder(id: TaskId) -> TaskBuilder {
        TaskBuilder::new(id)
    }

    /// The task's identifier.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The processing time `p_i`: how long the task executes once started
    /// (excluding any communication delay).
    #[must_use]
    #[inline]
    pub fn processing_time(&self) -> Duration {
        self.processing_time
    }

    /// The arrival time `a_i`.
    #[must_use]
    pub fn arrival(&self) -> Time {
        self.arrival
    }

    /// The absolute deadline `d_i`.
    #[must_use]
    #[inline]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// The processors holding this task's referenced data in local memory.
    #[must_use]
    #[inline]
    pub fn affinity(&self) -> &AffinitySet {
        &self.affinity
    }

    /// The resources this task holds for the whole of its execution
    /// (empty for the paper's independent tasks).
    #[must_use]
    #[inline]
    pub fn resources(&self) -> &[ResourceRequest] {
        &self.resources
    }

    /// A copy of this task with the given resource requirements — used by
    /// workload decorators, since tasks are otherwise immutable.
    #[must_use]
    pub fn with_resources(&self, resources: Vec<ResourceRequest>) -> Task {
        Task {
            resources,
            ..self.clone()
        }
    }

    /// The slack at instant `now`: the maximum time execution can still be
    /// delayed without missing the deadline, `d_i − now − p_i`, clamped at
    /// zero (paper, Section 4.2 footnote).
    ///
    /// The slack is optimistic in that it assumes execution on an affine
    /// processor (zero communication cost), matching the paper's use of slack
    /// purely as a bound on scheduling-time allocation.
    #[must_use]
    pub fn slack(&self, now: Time) -> Duration {
        self.deadline
            .saturating_since(now)
            .saturating_sub(self.processing_time)
    }

    /// Whether the deadline can no longer be met even if execution starts
    /// immediately on an affine processor: `now + p_i > d_i` (the paper's
    /// batch-filtering test `p_i + t_c > d_i`).
    #[must_use]
    pub fn is_expired(&self, now: Time) -> bool {
        now + self.processing_time > self.deadline
    }

    /// Whether finishing at `completion` meets the deadline.
    #[must_use]
    #[inline]
    pub fn meets_deadline(&self, completion: Time) -> bool {
        completion <= self.deadline
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(p={}, a={}, d={}, aff={})",
            self.id, self.processing_time, self.arrival, self.deadline, self.affinity
        )
    }
}

/// Incremental construction of a [`Task`].
///
/// Defaults: zero arrival, empty affinity. `processing_time` and `deadline`
/// must be supplied.
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    id: TaskId,
    processing_time: Option<Duration>,
    arrival: Time,
    deadline: Option<Time>,
    affinity: AffinitySet,
    resources: Vec<ResourceRequest>,
}

impl TaskBuilder {
    fn new(id: TaskId) -> Self {
        TaskBuilder {
            id,
            processing_time: None,
            arrival: Time::ZERO,
            deadline: None,
            affinity: AffinitySet::new(),
            resources: Vec::new(),
        }
    }

    /// Sets the processing time `p_i` (required, must be non-zero).
    #[must_use]
    pub fn processing_time(mut self, p: Duration) -> Self {
        self.processing_time = Some(p);
        self
    }

    /// Sets the arrival time `a_i` (defaults to [`Time::ZERO`]).
    #[must_use]
    pub fn arrival(mut self, a: Time) -> Self {
        self.arrival = a;
        self
    }

    /// Sets the absolute deadline `d_i` (required).
    #[must_use]
    pub fn deadline(mut self, d: Time) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the affinity set (defaults to empty).
    #[must_use]
    pub fn affinity(mut self, affinity: AffinitySet) -> Self {
        self.affinity = affinity;
        self
    }

    /// Sets the resource requirements (defaults to none).
    #[must_use]
    pub fn resources(mut self, resources: Vec<ResourceRequest>) -> Self {
        self.resources = resources;
        self
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if `processing_time` or `deadline` was not set, if the
    /// processing time is zero, or if the deadline precedes the arrival —
    /// all of which indicate workload-generator bugs rather than recoverable
    /// conditions.
    #[must_use]
    pub fn build(self) -> Task {
        let processing_time = self
            .processing_time
            .expect("TaskBuilder: processing_time is required");
        let deadline = self.deadline.expect("TaskBuilder: deadline is required");
        assert!(
            !processing_time.is_zero(),
            "TaskBuilder: processing time must be non-zero for {}",
            self.id
        );
        assert!(
            deadline >= self.arrival,
            "TaskBuilder: deadline {deadline} precedes arrival {} for {}",
            self.arrival,
            self.id
        );
        Task {
            id: self.id,
            processing_time,
            arrival: self.arrival,
            deadline,
            affinity: self.affinity,
            resources: self.resources,
        }
    }
}

/// The interconnect communication-cost model.
///
/// The paper's model (`c_ij ∈ {0, C}`): in distributed architectures with
/// cut-through (wormhole) routing, inter-processor communication cost is
/// independent of distance, so a constant `C` is paid whenever a task
/// executes on a processor it has no affinity with
/// ([`CommModel::constant`]). The unabstracted alternative
/// ([`CommModel::mesh`]) prices the fetch by actual 2D-mesh hop distance
/// from the nearest processor holding the data — used to validate the
/// constant-`C` abstraction. The sharded-cluster alternative
/// ([`CommModel::hierarchical`]) prices the fetch by hierarchy class —
/// intra-node, inter-node, inter-rack — and degenerates to the flat model
/// for a 1-node topology ([`crate::TopologySpec::flat`]).
///
/// # Example
///
/// ```
/// use paragon_des::Duration;
/// use rt_task::{CommModel, MeshSpec};
///
/// let comm = CommModel::constant(Duration::from_micros(500));
/// assert_eq!(comm.constant_cost(), Duration::from_micros(500));
/// let mesh = CommModel::mesh(MeshSpec::new(5, 2, 500, 125));
/// assert_eq!(mesh.constant_cost(), Duration::from_micros(500 + 5 * 125));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommModel {
    /// Distance-independent cost `C` per non-affine execution.
    Constant {
        /// The constant `C`.
        c: Duration,
    },
    /// Distance-dependent cost on a 2D mesh: a non-affine execution fetches
    /// the data from the *nearest* affine processor.
    Mesh {
        /// Mesh geometry and per-message costs.
        spec: crate::mesh::MeshSpec,
    },
    /// Hierarchical cost on a sharded cluster: a non-affine execution pays
    /// the cheapest class (intra-node, inter-node, inter-rack) whose span
    /// still reaches an affine processor.
    Hierarchical {
        /// Cluster geometry and per-class costs.
        spec: crate::topology::TopologySpec,
    },
}

impl CommModel {
    /// A model where every non-affine execution pays `c`.
    #[must_use]
    pub const fn constant(c: Duration) -> Self {
        CommModel::Constant { c }
    }

    /// A model with free communication (equivalent to full replication).
    #[must_use]
    pub const fn free() -> Self {
        CommModel::Constant { c: Duration::ZERO }
    }

    /// A distance-based model on the given mesh.
    #[must_use]
    pub const fn mesh(spec: crate::mesh::MeshSpec) -> Self {
        CommModel::Mesh { spec }
    }

    /// A hierarchy-class model on the given sharded topology.
    #[must_use]
    pub const fn hierarchical(spec: crate::topology::TopologySpec) -> Self {
        CommModel::Hierarchical { spec }
    }

    /// The topology behind a hierarchical model, if this is one.
    #[must_use]
    pub const fn topology(&self) -> Option<&crate::topology::TopologySpec> {
        match self {
            CommModel::Hierarchical { spec } => Some(spec),
            _ => None,
        }
    }

    /// The worst-case non-affine cost: `C` for the constant model, the
    /// diameter-path cost for the mesh, the worst hierarchy class for a
    /// topology.
    #[must_use]
    pub fn constant_cost(&self) -> Duration {
        match self {
            CommModel::Constant { c } => *c,
            CommModel::Mesh { spec } => {
                Duration::from_micros(spec.hop_cost_micros(spec.diameter()))
            }
            CommModel::Hierarchical { spec } => spec.worst_class(),
        }
    }

    /// The communication cost `c_ij` for executing `task` on `proc`: zero if
    /// the task has affinity with the processor; otherwise `C` (constant
    /// model), the cheapest fetch from an affine processor (mesh model;
    /// worst-case diameter cost if the task has affinity with nothing), or
    /// the cheapest hierarchy class reaching an affine processor
    /// (hierarchical model; worst class with no affinity).
    #[must_use]
    #[inline]
    pub fn cost(&self, task: &Task, proc: ProcessorId) -> Duration {
        if task.affinity().contains(proc) {
            return Duration::ZERO;
        }
        match self {
            CommModel::Constant { c } => *c,
            CommModel::Mesh { spec } => {
                let hops = task
                    .affinity()
                    .iter()
                    .map(|home| spec.distance(home, proc))
                    .min()
                    .unwrap_or_else(|| spec.diameter());
                Duration::from_micros(spec.hop_cost_micros(hops))
            }
            CommModel::Hierarchical { spec } => spec.cost(task.affinity(), proc),
        }
    }

    /// The total demand `p_i + c_ij` the assignment `(T_i → P_j)` places on
    /// the processor.
    #[must_use]
    #[inline]
    pub fn demand(&self, task: &Task, proc: ProcessorId) -> Duration {
        task.processing_time() + self.cost(task, proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(p_ms: u64, d_ms: u64) -> Task {
        Task::builder(TaskId::new(1))
            .processing_time(Duration::from_millis(p_ms))
            .deadline(Time::from_millis(d_ms))
            .build()
    }

    #[test]
    fn builder_sets_all_fields() {
        let aff: AffinitySet = [ProcessorId::new(2)].into_iter().collect();
        let t = Task::builder(TaskId::new(9))
            .processing_time(Duration::from_micros(10))
            .arrival(Time::from_micros(5))
            .deadline(Time::from_micros(100))
            .affinity(aff.clone())
            .build();
        assert_eq!(t.id(), TaskId::new(9));
        assert_eq!(t.processing_time(), Duration::from_micros(10));
        assert_eq!(t.arrival(), Time::from_micros(5));
        assert_eq!(t.deadline(), Time::from_micros(100));
        assert_eq!(t.affinity(), &aff);
    }

    #[test]
    #[should_panic(expected = "processing_time is required")]
    fn builder_requires_processing_time() {
        let _ = Task::builder(TaskId::new(0))
            .deadline(Time::from_millis(1))
            .build();
    }

    #[test]
    #[should_panic(expected = "deadline is required")]
    fn builder_requires_deadline() {
        let _ = Task::builder(TaskId::new(0))
            .processing_time(Duration::from_millis(1))
            .build();
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn builder_rejects_zero_processing_time() {
        let _ = Task::builder(TaskId::new(0))
            .processing_time(Duration::ZERO)
            .deadline(Time::from_millis(1))
            .build();
    }

    #[test]
    #[should_panic(expected = "precedes arrival")]
    fn builder_rejects_deadline_before_arrival() {
        let _ = Task::builder(TaskId::new(0))
            .processing_time(Duration::from_micros(1))
            .arrival(Time::from_millis(5))
            .deadline(Time::from_millis(1))
            .build();
    }

    #[test]
    fn slack_shrinks_with_time_and_clamps() {
        let t = task(2, 10);
        assert_eq!(t.slack(Time::ZERO), Duration::from_millis(8));
        assert_eq!(t.slack(Time::from_millis(5)), Duration::from_millis(3));
        assert_eq!(t.slack(Time::from_millis(8)), Duration::ZERO);
        assert_eq!(t.slack(Time::from_millis(50)), Duration::ZERO);
    }

    #[test]
    fn expiry_matches_paper_test() {
        let t = task(2, 10);
        // p + t_c > d  <=>  t_c > 8ms
        assert!(!t.is_expired(Time::from_millis(8)));
        assert!(t.is_expired(Time::from_micros(8_001)));
    }

    #[test]
    fn meets_deadline_is_inclusive() {
        let t = task(2, 10);
        assert!(t.meets_deadline(Time::from_millis(10)));
        assert!(!t.meets_deadline(Time::from_micros(10_001)));
    }

    #[test]
    fn comm_model_costs() {
        let aff: AffinitySet = [ProcessorId::new(0)].into_iter().collect();
        let t = Task::builder(TaskId::new(3))
            .processing_time(Duration::from_millis(1))
            .deadline(Time::from_millis(100))
            .affinity(aff)
            .build();
        let comm = CommModel::constant(Duration::from_micros(250));
        assert_eq!(comm.cost(&t, ProcessorId::new(0)), Duration::ZERO);
        assert_eq!(
            comm.cost(&t, ProcessorId::new(1)),
            Duration::from_micros(250)
        );
        assert_eq!(
            comm.demand(&t, ProcessorId::new(0)),
            Duration::from_millis(1)
        );
        assert_eq!(
            comm.demand(&t, ProcessorId::new(1)),
            Duration::from_micros(1_250)
        );
        assert_eq!(
            CommModel::free().cost(&t, ProcessorId::new(9)),
            Duration::ZERO
        );
    }

    #[test]
    fn display_mentions_id() {
        assert!(task(1, 2).to_string().contains("T1"));
    }

    #[test]
    fn mesh_comm_prices_by_nearest_home() {
        use crate::mesh::MeshSpec;
        // 4x1 line mesh: P0 - P1 - P2 - P3; data on P0 and P3
        let aff: AffinitySet = [ProcessorId::new(0), ProcessorId::new(3)]
            .into_iter()
            .collect();
        let t = Task::builder(TaskId::new(5))
            .processing_time(Duration::from_millis(1))
            .deadline(Time::from_millis(100))
            .affinity(aff)
            .build();
        let comm = CommModel::mesh(MeshSpec::new(4, 1, 100, 10));
        // local on either home
        assert_eq!(comm.cost(&t, ProcessorId::new(0)), Duration::ZERO);
        assert_eq!(comm.cost(&t, ProcessorId::new(3)), Duration::ZERO);
        // P1 is 1 hop from P0 (and 2 from P3): 100 + 10
        assert_eq!(
            comm.cost(&t, ProcessorId::new(1)),
            Duration::from_micros(110)
        );
        // P2 is 1 hop from P3
        assert_eq!(
            comm.cost(&t, ProcessorId::new(2)),
            Duration::from_micros(110)
        );
    }

    #[test]
    fn mesh_comm_empty_affinity_pays_diameter() {
        use crate::mesh::MeshSpec;
        let t = Task::builder(TaskId::new(6))
            .processing_time(Duration::from_millis(1))
            .deadline(Time::from_millis(100))
            .build();
        let comm = CommModel::mesh(MeshSpec::new(3, 3, 100, 10));
        // diameter 4 hops
        assert_eq!(
            comm.cost(&t, ProcessorId::new(4)),
            Duration::from_micros(140)
        );
        assert_eq!(comm.constant_cost(), Duration::from_micros(140));
    }
}
