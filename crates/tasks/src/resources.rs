//! Shared/exclusive resource constraints — the task-model extension of the
//! paper's references [3] and [6] (Ramamritham–Stankovic–Zhao).
//!
//! A task may request resources in *shared* or *exclusive* mode; its
//! execution cannot start before every requested resource is available in
//! the requested mode. Availability is summarized by the classical
//! *earliest available time* (EAT) pair per resource:
//!
//! * `EAT_s(r)` — earliest instant a **shared** user may start (pushed out
//!   by exclusive holders),
//! * `EAT_e(r)` — earliest instant an **exclusive** user may start (pushed
//!   out by both shared and exclusive holders).
//!
//! [`ResourceEats`] grows on demand, so resource-free systems pay nothing.

use paragon_des::Time;
use serde::{Deserialize, Serialize};

/// Identifier of a serially reusable resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(usize);

impl ResourceId {
    /// Wraps a dense resource index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        ResourceId(index)
    }

    /// The dense resource index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ResourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// How a task uses a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// Concurrent readers allowed.
    Shared,
    /// Mutually exclusive use.
    Exclusive,
}

/// One resource requirement of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceRequest {
    /// Which resource.
    pub resource: ResourceId,
    /// In which mode.
    pub mode: AccessMode,
}

impl ResourceRequest {
    /// A shared request.
    #[must_use]
    pub const fn shared(r: usize) -> Self {
        ResourceRequest {
            resource: ResourceId::new(r),
            mode: AccessMode::Shared,
        }
    }

    /// An exclusive request.
    #[must_use]
    pub const fn exclusive(r: usize) -> Self {
        ResourceRequest {
            resource: ResourceId::new(r),
            mode: AccessMode::Exclusive,
        }
    }
}

/// Per-resource earliest-available-time state, growing on demand.
///
/// # Example
///
/// ```
/// use paragon_des::Time;
/// use rt_task::{ResourceEats, ResourceRequest};
///
/// let mut eats = ResourceEats::new();
/// let writer = [ResourceRequest::exclusive(0)];
/// assert_eq!(eats.earliest_start(&writer), Time::ZERO);
/// eats.commit(&writer, Time::from_millis(5));
/// // a reader must now wait for the writer...
/// assert_eq!(eats.earliest_start(&[ResourceRequest::shared(0)]), Time::from_millis(5));
/// // ...but an unrelated resource is free
/// assert_eq!(eats.earliest_start(&[ResourceRequest::shared(1)]), Time::ZERO);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceEats {
    shared: Vec<Time>,
    exclusive: Vec<Time>,
}

impl ResourceEats {
    /// No resources held.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites `self` with `other`, reusing the existing backing storage.
    ///
    /// The derived `Clone` falls back to `*self = other.clone()` for
    /// `clone_from`, which reallocates; this field-wise `Vec::clone_from`
    /// keeps capacity, so a reused scratch state pays no heap traffic.
    pub fn copy_from(&mut self, other: &ResourceEats) {
        self.shared.clone_from(&other.shared);
        self.exclusive.clone_from(&other.exclusive);
    }

    /// Number of resources touched so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether no resource has ever been committed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    /// The earliest instant a task with `requests` may start, as far as
    /// resources are concerned.
    #[must_use]
    #[inline]
    pub fn earliest_start(&self, requests: &[ResourceRequest]) -> Time {
        requests
            .iter()
            .map(|req| {
                let i = req.resource.index();
                match req.mode {
                    AccessMode::Shared => self.shared.get(i).copied().unwrap_or(Time::ZERO),
                    AccessMode::Exclusive => self.exclusive.get(i).copied().unwrap_or(Time::ZERO),
                }
            })
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Records that a task holding `requests` completes at `completion`:
    /// an exclusive hold pushes out both modes; a shared hold pushes out
    /// only future exclusive users.
    pub fn commit(&mut self, requests: &[ResourceRequest], completion: Time) {
        for req in requests {
            let i = req.resource.index();
            if i >= self.shared.len() {
                self.shared.resize(i + 1, Time::ZERO);
                self.exclusive.resize(i + 1, Time::ZERO);
            }
            match req.mode {
                AccessMode::Exclusive => {
                    self.shared[i] = self.shared[i].max(completion);
                    self.exclusive[i] = self.exclusive[i].max(completion);
                }
                AccessMode::Shared => {
                    self.exclusive[i] = self.exclusive[i].max(completion);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_constructors() {
        assert_eq!(ResourceId::new(3).index(), 3);
        assert_eq!(ResourceId::new(3).to_string(), "R3");
        assert_eq!(ResourceRequest::shared(1).mode, AccessMode::Shared);
        assert_eq!(ResourceRequest::exclusive(1).mode, AccessMode::Exclusive);
    }

    #[test]
    fn shared_users_overlap() {
        let mut eats = ResourceEats::new();
        let reader = [ResourceRequest::shared(0)];
        eats.commit(&reader, Time::from_millis(10));
        // another reader may start immediately
        assert_eq!(eats.earliest_start(&reader), Time::ZERO);
        // but a writer must wait for the reader
        assert_eq!(
            eats.earliest_start(&[ResourceRequest::exclusive(0)]),
            Time::from_millis(10)
        );
    }

    #[test]
    fn exclusive_users_serialize_everything() {
        let mut eats = ResourceEats::new();
        let writer = [ResourceRequest::exclusive(2)];
        eats.commit(&writer, Time::from_millis(7));
        assert_eq!(eats.earliest_start(&writer), Time::from_millis(7));
        assert_eq!(
            eats.earliest_start(&[ResourceRequest::shared(2)]),
            Time::from_millis(7)
        );
        assert_eq!(eats.len(), 3, "grew on demand");
        assert!(!eats.is_empty());
    }

    #[test]
    fn multiple_requests_take_the_max() {
        let mut eats = ResourceEats::new();
        eats.commit(&[ResourceRequest::exclusive(0)], Time::from_millis(3));
        eats.commit(&[ResourceRequest::exclusive(1)], Time::from_millis(9));
        let both = [ResourceRequest::shared(0), ResourceRequest::shared(1)];
        assert_eq!(eats.earliest_start(&both), Time::from_millis(9));
    }

    #[test]
    fn commits_never_move_backwards() {
        let mut eats = ResourceEats::new();
        let w = [ResourceRequest::exclusive(0)];
        eats.commit(&w, Time::from_millis(10));
        eats.commit(&w, Time::from_millis(4));
        assert_eq!(eats.earliest_start(&w), Time::from_millis(10));
    }

    #[test]
    fn untouched_resources_are_free() {
        let eats = ResourceEats::new();
        assert!(eats.is_empty());
        assert_eq!(
            eats.earliest_start(&[ResourceRequest::exclusive(99)]),
            Time::ZERO
        );
        assert_eq!(eats.earliest_start(&[]), Time::ZERO);
    }
}
