//! Identifier newtypes shared across the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a real-time task (`T_i` in the paper).
///
/// # Example
///
/// ```
/// use rt_task::TaskId;
/// let id = TaskId::new(7);
/// assert_eq!(id.as_u64(), 7);
/// assert_eq!(id.to_string(), "T7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(u64);

impl TaskId {
    /// Wraps a raw task number.
    #[must_use]
    pub const fn new(id: u64) -> Self {
        TaskId(id)
    }

    /// Returns the raw task number.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u64> for TaskId {
    fn from(id: u64) -> Self {
        TaskId(id)
    }
}

/// Identifier of a *working* processor (`P_j` in the paper).
///
/// The dedicated scheduling (host) processor is not a `ProcessorId`: tasks are
/// never assigned to it, so giving it an index would only invite off-by-one
/// bugs. Working processors are indexed densely from zero.
///
/// # Example
///
/// ```
/// use rt_task::ProcessorId;
/// let p = ProcessorId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessorId(usize);

impl ProcessorId {
    /// Wraps a dense worker index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        ProcessorId(index)
    }

    /// Returns the dense worker index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Enumerates the first `count` processor ids, `P0..P{count-1}`.
    pub fn all(count: usize) -> impl Iterator<Item = ProcessorId> {
        (0..count).map(ProcessorId)
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for ProcessorId {
    fn from(index: usize) -> Self {
        ProcessorId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_round_trip() {
        let id = TaskId::new(42);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(TaskId::from(42u64), id);
        assert_eq!(id.to_string(), "T42");
    }

    #[test]
    fn processor_id_round_trip() {
        let p = ProcessorId::new(5);
        assert_eq!(p.index(), 5);
        assert_eq!(ProcessorId::from(5usize), p);
        assert_eq!(p.to_string(), "P5");
    }

    #[test]
    fn processor_all_enumerates_densely() {
        let ids: Vec<ProcessorId> = ProcessorId::all(3).collect();
        assert_eq!(
            ids,
            vec![
                ProcessorId::new(0),
                ProcessorId::new(1),
                ProcessorId::new(2)
            ]
        );
        assert_eq!(ProcessorId::all(0).count(), 0);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(TaskId::new(1) < TaskId::new(2));
        assert!(ProcessorId::new(0) < ProcessorId::new(1));
    }
}
