//! The two search representations of Section 3.

use rt_task::ProcessorId;
use serde::{Deserialize, Serialize};

use crate::policy::{ProcessorOrder, TaskOrder};
use crate::state::PathState;

/// How the scheduling tree `G` is laid out.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Representation {
    /// Figure 2: at each level a *task* is fixed (by `task_order`) and the
    /// branches are the processors it could be assigned to. All processors
    /// are reconsidered at every level, so backtracking "can undo or
    /// resequence tasks on all processors".
    AssignmentOriented {
        /// Which task each level considers.
        task_order: TaskOrder,
    },
    /// Figure 1: at each level a *processor* is fixed (by `processor_order`)
    /// and the branches are the remaining tasks that could run on it.
    /// Backtracking at a level can only swap the task given to that level's
    /// processor.
    SequenceOriented {
        /// Which processor each level serves.
        processor_order: ProcessorOrder,
        /// Whether a level whose processor accepts no remaining task may
        /// advance to the next processor instead of dead-ending. The paper's
        /// D-COLS does *not* do this — its frequent dead-ends are exactly
        /// the behaviour Section 3 predicts — but the variant is exposed for
        /// the ablation experiments.
        skip_processors: bool,
    },
}

impl Representation {
    /// The canonical assignment-oriented representation (EDF task order) —
    /// what RT-SADS uses.
    #[must_use]
    pub fn assignment_oriented() -> Self {
        Representation::AssignmentOriented {
            task_order: TaskOrder::EarliestDeadline,
        }
    }

    /// The canonical sequence-oriented representation (round-robin
    /// processors, no processor skipping) — what D-COLS uses.
    #[must_use]
    pub fn sequence_oriented() -> Self {
        Representation::SequenceOriented {
            processor_order: ProcessorOrder::RoundRobin,
            skip_processors: false,
        }
    }

    /// Whether this is the assignment-oriented layout.
    #[must_use]
    pub fn is_assignment_oriented(&self) -> bool {
        matches!(self, Representation::AssignmentOriented { .. })
    }

    /// The maximum number of *skip rounds* an expansion may attempt when a
    /// round yields no feasible successor.
    ///
    /// Assignment-oriented search moves on to the next unassigned task (the
    /// blocked task stays in the batch for a later phase — "the search will
    /// continue by examining other vertices for inclusion in the
    /// schedule"). The canonical sequence-oriented search has no such move
    /// and dead-ends; the `skip_processors` variant may advance through the
    /// remaining processors once each.
    #[must_use]
    pub fn max_skips(&self, state: &PathState) -> usize {
        match self {
            Representation::AssignmentOriented { .. } => {
                (state.n_tasks() - state.depth()).saturating_sub(1)
            }
            Representation::SequenceOriented {
                skip_processors, ..
            } => {
                if *skip_processors {
                    state.processors() - 1
                } else {
                    0
                }
            }
        }
    }

    /// Enumerates the raw (task, processor) successor candidates of a vertex
    /// whose partial schedule is `state`, **before** feasibility filtering
    /// and heuristic ordering.
    ///
    /// `level_task` is the per-level task ordering precomputed by
    /// [`TaskOrder::order`] for the assignment-oriented case (ignored
    /// otherwise). `skip` selects the skip round (0 = the level's canonical
    /// choice; see [`Representation::max_skips`]).
    #[must_use]
    pub fn raw_candidates(
        &self,
        state: &PathState,
        level_task: &[usize],
        skip: usize,
    ) -> Vec<(usize, ProcessorId)> {
        let mut out = Vec::new();
        self.raw_candidates_into(state, level_task, skip, &mut out);
        out
    }

    /// Like [`Representation::raw_candidates`], but writes into a
    /// caller-provided buffer (cleared first) so the expansion loop can
    /// reuse one allocation across every skip round of every expansion.
    pub fn raw_candidates_into(
        &self,
        state: &PathState,
        level_task: &[usize],
        skip: usize,
        out: &mut Vec<(usize, ProcessorId)>,
    ) {
        out.clear();
        let level = state.depth();
        match self {
            Representation::AssignmentOriented { .. } => {
                // The level's task is the (skip+1)-th *unassigned* task in
                // the precomputed order: backtracking may have unassigned a
                // task that an earlier level on another branch consumed.
                let Some(&task) = level_task
                    .iter()
                    .filter(|&&t| !state.is_assigned(t))
                    .nth(skip)
                else {
                    return;
                };
                out.extend(ProcessorId::all(state.processors()).map(|p| (task, p)));
            }
            Representation::SequenceOriented {
                processor_order, ..
            } => {
                let m = state.processors();
                let base = processor_order.processor_at(level, m, state.n_tasks());
                let p = ProcessorId::new((base + skip) % m);
                out.extend(state.unassigned().map(|t| (t, p)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::{Duration, Time};
    use rt_task::{CommModel, Task, TaskId};

    fn tasks(n: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                Task::builder(TaskId::new(i as u64))
                    .processing_time(Duration::from_micros(100))
                    // deadlines descending so EDF order is reversed
                    .deadline(Time::from_micros(10_000 - i as u64 * 100))
                    .build()
            })
            .collect()
    }

    #[test]
    fn assignment_oriented_branches_over_processors() {
        let ts = tasks(3);
        let repr = Representation::assignment_oriented();
        let order = TaskOrder::EarliestDeadline.order(&ts, Time::ZERO);
        assert_eq!(order, vec![2, 1, 0]);
        let state = PathState::new(vec![Time::ZERO; 4], ts.len());
        let cands = repr.raw_candidates(&state, &order, 0);
        assert_eq!(cands.len(), 4, "one branch per processor");
        assert!(cands.iter().all(|&(t, _)| t == 2), "level 0 fixes task 2");
        let procs: Vec<usize> = cands.iter().map(|&(_, p)| p.index()).collect();
        assert_eq!(procs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn assignment_oriented_skips_assigned_tasks() {
        let ts = tasks(3);
        let repr = Representation::assignment_oriented();
        let order = vec![2, 1, 0];
        let comm = CommModel::free();
        let mut state = PathState::new(vec![Time::ZERO; 2], ts.len());
        state.apply(&ts, &comm, 2, ProcessorId::new(0));
        let cands = repr.raw_candidates(&state, &order, 0);
        assert!(
            cands.iter().all(|&(t, _)| t == 1),
            "next unassigned in order"
        );
    }

    #[test]
    fn assignment_oriented_empty_when_complete() {
        let ts = tasks(1);
        let repr = Representation::assignment_oriented();
        let comm = CommModel::free();
        let mut state = PathState::new(vec![Time::ZERO; 2], 1);
        state.apply(&ts, &comm, 0, ProcessorId::new(1));
        assert!(repr.raw_candidates(&state, &[0], 0).is_empty());
    }

    #[test]
    fn sequence_oriented_branches_over_tasks() {
        let ts = tasks(3);
        let repr = Representation::sequence_oriented();
        let state = PathState::new(vec![Time::ZERO; 2], ts.len());
        let cands = repr.raw_candidates(&state, &[], 0);
        assert_eq!(cands.len(), 3, "one branch per remaining task");
        assert!(
            cands.iter().all(|&(_, p)| p.index() == 0),
            "level 0 serves P0"
        );
    }

    #[test]
    fn sequence_oriented_round_robins_processors() {
        let ts = tasks(4);
        let repr = Representation::sequence_oriented();
        let comm = CommModel::free();
        let mut state = PathState::new(vec![Time::ZERO; 2], ts.len());
        state.apply(&ts, &comm, 0, ProcessorId::new(0));
        let cands = repr.raw_candidates(&state, &[], 0);
        assert!(
            cands.iter().all(|&(_, p)| p.index() == 1),
            "level 1 serves P1"
        );
        assert_eq!(cands.len(), 3);
        state.apply(&ts, &comm, 1, ProcessorId::new(1));
        let cands = repr.raw_candidates(&state, &[], 0);
        assert!(
            cands.iter().all(|&(_, p)| p.index() == 0),
            "level 2 wraps to P0"
        );
    }

    #[test]
    fn constructors_and_predicates() {
        assert!(Representation::assignment_oriented().is_assignment_oriented());
        assert!(!Representation::sequence_oriented().is_assignment_oriented());
    }

    #[test]
    fn assignment_oriented_skip_rounds_walk_the_task_order() {
        let ts = tasks(3);
        let repr = Representation::assignment_oriented();
        let order = vec![2, 1, 0];
        let state = PathState::new(vec![Time::ZERO; 2], ts.len());
        for (skip, expect) in [(0usize, 2usize), (1, 1), (2, 0)] {
            let cands = repr.raw_candidates(&state, &order, skip);
            assert!(cands.iter().all(|&(t, _)| t == expect), "skip {skip}");
        }
        assert!(repr.raw_candidates(&state, &order, 3).is_empty());
        assert_eq!(repr.max_skips(&state), 2);
    }

    #[test]
    fn sequence_oriented_skip_rounds_advance_the_processor() {
        let ts = tasks(2);
        let repr = Representation::SequenceOriented {
            processor_order: ProcessorOrder::RoundRobin,
            skip_processors: true,
        };
        let state = PathState::new(vec![Time::ZERO; 3], ts.len());
        for skip in 0..3 {
            let cands = repr.raw_candidates(&state, &[], skip);
            assert!(cands.iter().all(|&(_, p)| p.index() == skip));
        }
        assert_eq!(repr.max_skips(&state), 2);
        // the canonical (non-skipping) D-COLS never skips
        assert_eq!(Representation::sequence_oriented().max_skips(&state), 0);
    }
}
