//! The depth-first candidate-list search engine shared by RT-SADS and
//! D-COLS.
//!
//! One *scheduling phase* (paper, Section 4.1) is one call to
//! [`search_schedule`]: starting from the root (empty schedule), the current
//! vertex is expanded, its feasible successors are heuristically ordered and
//! pushed on the front of the candidate list `CL`, and the next current
//! vertex is taken from the front of `CL`. The phase ends at a leaf (complete
//! schedule), at a dead-end (`CL` empty), or when the scheduling-time
//! quantum is exhausted — in the latter two cases the best (deepest, then
//! lowest-makespan) feasible partial schedule found so far is returned.

use paragon_des::trace::{PhaseProfile, WalkProfile};
use paragon_des::{Duration, Time};
use rt_task::{CommModel, ProcessorId, ResourceEats, Task};

use paragon_platform::{HostParams, SchedulingMeter};
use rt_telemetry::{Stage, StageProfiler};
use serde::{Deserialize, Serialize};

use crate::policy::{Candidate, ChildOrder};
use crate::repr::Representation;
use crate::state::{Assignment, PathState};

/// Why a scheduling phase ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// A leaf was reached: every *viable* task is assigned. Under the
    /// phase-level viability screen this is weaker than "the whole batch is
    /// scheduled" — compare [`SearchOutcome::is_complete`] (full batch) with
    /// [`SearchOutcome::covers_viable`] (this condition).
    Leaf,
    /// The candidate list emptied: no feasible extension exists anywhere.
    DeadEnd,
    /// The scheduling-time quantum (or vertex cap) ran out.
    QuantumExhausted,
    /// A pruning bound (backtrack limit) cut the search short.
    Pruned,
}

/// The search-space pruning heuristics Section 3 of the paper lists as what
/// "dynamic algorithms are forced to use … to reduce the scheduling
/// complexity": a limit on backtracking and a limit on the depth of search.
/// The defaults disable both (the quantum is then the only bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pruning {
    /// Expansions stop below this depth; the tree is explored only down to
    /// `depth_bound` assignments. `None` = full depth.
    pub depth_bound: Option<usize>,
    /// The phase ends ([`Termination::Pruned`]) after this many backtracks.
    /// `None` = unlimited.
    pub backtrack_limit: Option<u64>,
}

/// Diagnostics of one search phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Vertices generated and evaluated (including infeasible ones).
    pub vertices_generated: u64,
    /// Vertices expanded (popped from `CL` and given successors).
    pub expansions: u64,
    /// Pops that switched to a different branch of `G` (the paper's
    /// backtracking).
    pub backtracks: u64,
    /// Successors that failed the feasibility test.
    pub infeasible_children: u64,
    /// Successors that passed it.
    pub feasible_children: u64,
    /// The deepest feasible partial schedule seen.
    pub deepest: usize,
    /// Skip rounds taken: expansions whose canonical choice (task or, for
    /// the skipping sequence-oriented variant, processor) admitted no
    /// feasible successor and moved on to the next choice.
    pub level_skips: u64,
    /// Expansion attempts refused by the Section-3 depth bound.
    pub depth_prunes: u64,
    /// Batch tasks screened out by the phase-level viability test (they can
    /// meet their deadline on no processor even against the initial finish
    /// times, so the whole phase tree excludes them).
    pub screened_tasks: u64,
    /// Assignments reverted by the incremental engine while switching
    /// between branches (each costs O(1); see [`crate::PathState::undo`]).
    pub undos: u64,
    /// Apply steps a per-pop root replay would have performed that the
    /// incremental engine skipped: the length of the path prefix shared
    /// between consecutive vertices, summed over pops. The old engine paid
    /// exactly `undos + replay_avoided` extra applies per phase.
    pub replay_avoided: u64,
    /// Shard screens run by the shard-first candidate generator (one per
    /// skip round under a hierarchical topology). Zero on flat platforms.
    pub shard_screens: u64,
    /// Shards the screen ruled out or ranked below the fanout cut, whose
    /// processors were therefore never evaluated as candidates — the
    /// O(P) → O(shards) + O(P/shard) saving, counted in shards.
    pub shards_pruned: u64,
}

/// One feasibility probe from the phase-level viability screen: the
/// operands of the paper's test for one candidate processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScreenProbe {
    /// The candidate processor.
    pub processor: ProcessorId,
    /// The processor's initial finish time `max(busy_k, t_s + Q_s(j))`.
    pub available: Time,
    /// The demand `p_l + c_lk` the assignment would add.
    pub demand: Duration,
    /// The resulting completion `se_lk`; the probe fails when it exceeds the
    /// task's deadline.
    pub completion: Time,
}

/// Why one batch task failed the phase-level viability screen: one failed
/// probe per candidate processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenEvidence {
    /// Batch index of the screened task.
    pub task: usize,
    /// The failed feasibility probes, one per processor.
    pub probes: Vec<ScreenProbe>,
}

/// A candidate placement the search evaluated at the same expansion as a
/// delivered assignment but ranked lower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementAlternative {
    /// The rejected processor.
    pub processor: ProcessorId,
    /// Predicted completion on it.
    pub completion: Time,
    /// Its cost-function value `ce_k` (the partial schedule's makespan had
    /// it been chosen).
    pub cost: Time,
}

/// Why a delivered assignment picked the processor it did: the chosen
/// placement's cost next to every sibling alternative for the same task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementEvidence {
    /// Batch index of the placed task.
    pub task: usize,
    /// The chosen processor.
    pub processor: ProcessorId,
    /// Predicted completion on the chosen processor.
    pub completion: Time,
    /// The chosen placement's cost `ce_k`.
    pub cost: Time,
    /// Same-task alternatives evaluated at the same expansion and ranked
    /// lower (empty under sequence-oriented layouts, where siblings differ
    /// by task rather than processor).
    pub rejected: Vec<PlacementAlternative>,
}

/// Decision evidence for one scheduling phase, collected only when
/// [`SearchParams::provenance`] is set: which tasks the viability screen
/// rejected (with the actual test operands) and why each delivered
/// assignment chose its processor. Collection is record-only — it never
/// alters the search order, the delivered schedule, or the stats.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseProvenance {
    /// Screen rejections, in batch order.
    pub screened: Vec<ScreenEvidence>,
    /// One entry per delivered assignment, in path order.
    pub decisions: Vec<PlacementEvidence>,
}

/// Result of one scheduling phase.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best feasible (partial or complete) schedule found, in path
    /// order.
    pub assignments: Vec<Assignment>,
    /// Why the phase ended.
    pub termination: Termination,
    /// Batch tasks that survived the phase-level viability screen — the
    /// depth of a leaf of this phase's tree. One-pass schedulers that do not
    /// screen report the full batch size here.
    pub n_viable: usize,
    /// Makespan (the paper's `CE`: latest processor finish time, including
    /// the initial finish times) of the delivered schedule — the tie-break
    /// key the search used when picking "best". At a leaf this is the leaf's
    /// real makespan, not a sentinel.
    pub makespan: Time,
    /// Search diagnostics.
    pub stats: SearchStats,
    /// Decision evidence, present only when [`SearchParams::provenance`]
    /// was set.
    pub provenance: Option<PhaseProvenance>,
}

impl SearchOutcome {
    /// Whether the schedule covers the whole batch.
    #[must_use]
    pub fn is_complete(&self, batch_len: usize) -> bool {
        self.assignments.len() == batch_len
    }

    /// Whether the schedule covers every *viable* task — the
    /// [`Termination::Leaf`] condition. Under screening this can hold while
    /// [`SearchOutcome::is_complete`] is false: the screened tasks stay in
    /// the batch for a later phase (or expiry).
    #[must_use]
    pub fn covers_viable(&self) -> bool {
        self.assignments.len() == self.n_viable
    }

    /// Batch tasks screened out by the phase-level viability test.
    #[must_use]
    pub fn screened(&self) -> u64 {
        self.stats.screened_tasks
    }

    /// Number of distinct processors the schedule uses.
    #[must_use]
    pub fn processors_used(&self) -> usize {
        let mut procs: Vec<ProcessorId> = self.assignments.iter().map(|a| a.processor).collect();
        procs.sort();
        procs.dedup();
        procs.len()
    }
}

/// Inputs of one scheduling phase.
#[derive(Debug, Clone)]
pub struct SearchParams<'a> {
    /// The batch being scheduled.
    pub tasks: &'a [Task],
    /// The interconnect cost model.
    pub comm: &'a CommModel,
    /// Per-processor earliest start for new work:
    /// `max(busy_until_k, t_s + Q_s(j))` (see [`PathState::new`]).
    pub initial_finish: &'a [Time],
    /// Tree layout (assignment- vs sequence-oriented).
    pub representation: &'a Representation,
    /// Heuristic ordering of feasible successors.
    pub child_order: ChildOrder,
    /// Reference instant for slack-based task ordering (`t_s`).
    pub now: Time,
    /// Hard cap on generated vertices, guarding unbounded searches when the
    /// host's vertex cost is zero. `None` = rely on the meter alone.
    pub vertex_cap: Option<u64>,
    /// Optional Section-3 pruning heuristics (depth bound, backtrack
    /// limit).
    pub pruning: Pruning,
    /// The machine's resource earliest-available times at phase start
    /// (empty for the paper's independent tasks).
    pub resources: ResourceEats,
    /// Collect decision evidence ([`SearchOutcome::provenance`]). Off by
    /// default: collection allocates per expansion, and the flight recorder
    /// must be free when tracing is disabled.
    pub provenance: bool,
}

/// Arena node: enough to reconstruct the partial schedule by walking
/// parents, plus its depth so the incremental engine can find the common
/// ancestor of two vertices in O(branch distance).
#[derive(Debug, Clone, Copy)]
struct Node {
    parent: Option<usize>,
    /// 1-based: the number of assignments on the root-to-here path.
    depth: usize,
    task: usize,
    processor: ProcessorId,
}

/// Every per-phase buffer the search engine needs, owned in one place so a
/// long-lived caller (the driver) allocates once and reuses across all
/// scheduling phases.
///
/// Lifetime contract (DESIGN.md §8): buffers live for the whole run; each
/// phase *clears* them on entry (clear-don't-drop) and leaves their capacity
/// behind for the next phase. Once capacities have reached the workload's
/// steady state, [`search_schedule_with`] performs **zero** heap allocations
/// per phase (provenance off) — asserted by the counting-allocator test in
/// `crates/bench/tests/zero_alloc.rs` and pinned against behavioral drift by
/// the `replay-oracle` differential suite.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Append-only node arena of the phase tree.
    arena: Vec<Node>,
    /// Per-node (completion, makespan-if-chosen), provenance only.
    node_costs: Vec<(Time, Time)>,
    /// The candidate list `CL` (stack: end = front).
    cl: Vec<usize>,
    /// Arena ids along the current vertex's root path.
    path: Vec<usize>,
    /// Branch-switch walk buffer (ancestors of the next vertex).
    chain: Vec<usize>,
    /// Feasible successors of one expansion, before ordering.
    children: Vec<Candidate>,
    /// Packed successors of one expansion — `completion(64) |
    /// processor(32) | task(32)` in one `u128` — used instead of
    /// `children` when the child order reduces to the packed key's integer
    /// order (see the select stage in `expand`).
    ckeys: Vec<u128>,
    /// Raw (task, processor) candidates of one skip round.
    raw: Vec<(usize, ProcessorId)>,
    /// Dense completion column of one skip round, index-aligned with `raw`
    /// (the struct-of-arrays candidate evaluation writes all completions in
    /// one batched pass before the accounting loop consumes them).
    comp: Vec<Time>,
    /// Viable tasks in level order (assignment-oriented layouts).
    level_task: Vec<usize>,
    /// Per-task verdict of the phase-level viability screen.
    viable: Vec<bool>,
    /// Cumulative shard end indices under a hierarchical topology (the
    /// node partition handed to [`PathState::configure_shards`]).
    shard_ends: Vec<usize>,
    /// (screen bound, shard) ranking buffer of one shard-first skip round.
    shard_rank: Vec<(Time, usize)>,
    /// The incremental path state, lazily created on first use and reset
    /// (not rebuilt) on later phases.
    state: Option<PathState>,
    /// Backing storage handed out as [`SearchOutcome::assignments`]; refill
    /// it via [`SearchScratch::recycle`] to keep the hot path allocation-free.
    out: Vec<Assignment>,
    /// Stage-scoped self-profiler (disabled by default — two branches per
    /// span, no clock reads, no allocations; see `rt_telemetry::profile`).
    prof: StageProfiler,
}

impl SearchScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a spent assignment vector (e.g. a consumed
    /// [`SearchOutcome::assignments`]) to the pool so the next phase can
    /// reuse its capacity instead of allocating.
    pub fn recycle(&mut self, mut assignments: Vec<Assignment>) {
        assignments.clear();
        if assignments.capacity() > self.out.capacity() {
            self.out = assignments;
        }
    }

    /// Takes the pooled assignment buffer (empty, capacity preserved) for a
    /// scheduler that builds its outcome outside the search engine (the
    /// one-pass baselines, the myopic scheduler).
    #[must_use]
    pub fn take_assignment_buffer(&mut self) -> Vec<Assignment> {
        let mut out = std::mem::take(&mut self.out);
        out.clear();
        out
    }

    /// Turns stage-level self-profiling on or off for phases run on this
    /// scratch. Off (the default) the instrumentation is two predictable
    /// branches per span — no clock reads, no allocations, and bit-identical
    /// outcomes (pinned by the profiled differential suite).
    pub fn set_profiling(&mut self, on: bool) {
        self.prof.set_enabled(on);
    }

    /// Whether stage-level self-profiling is currently enabled.
    #[must_use]
    pub fn profiling(&self) -> bool {
        self.prof.enabled()
    }

    /// Drains the stage times and subtree-walk telemetry accumulated by the
    /// last phase into a wire-format [`PhaseProfile`], resetting the
    /// accumulators. Returns an all-zero record when profiling is off.
    pub fn take_profile(&mut self) -> PhaseProfile {
        self.prof.take()
    }
}

/// Runs one scheduling phase (see the module docs for the algorithm)
/// and [`SearchParams`] for the inputs. The `meter` both limits and measures
/// the scheduling time consumed.
///
/// Allocates fresh working buffers per call; phase-loop callers should hold
/// a [`SearchScratch`] and use [`search_schedule_with`] instead.
#[must_use]
pub fn search_schedule(params: &SearchParams<'_>, meter: &mut SchedulingMeter) -> SearchOutcome {
    let mut scratch = SearchScratch::new();
    search_core(params, meter, false, &mut scratch)
}

/// [`search_schedule`] with caller-owned working buffers: the engine
/// maintains a single incremental [`PathState`]; on each pop it undoes
/// assignments up to the deepest common ancestor of the previous and next
/// vertex and applies back down — O(branch distance) per pop instead of the
/// O(depth) per-pop root replay, so a straight dive is O(depth) overall
/// rather than O(depth²). The paper charges only vertex evaluations against
/// the quantum; reusing the scratch keeps the engine's own bookkeeping (and
/// allocator traffic) within that budget. Behavior is identical to
/// [`search_schedule`] regardless of what previous phases left in `scratch`.
#[must_use]
pub fn search_schedule_with(
    params: &SearchParams<'_>,
    meter: &mut SchedulingMeter,
    scratch: &mut SearchScratch,
) -> SearchOutcome {
    search_core(params, meter, false, scratch)
}

/// The pre-incremental engine, kept as a differential oracle: identical
/// search order and bookkeeping, but every pop rebuilds the vertex's
/// [`PathState`] by replaying the whole root-to-vertex path (O(depth) per
/// pop). Used by the differential property tests and the deep-dive
/// benchmark; never by the production schedulers.
#[cfg(any(test, feature = "replay-oracle"))]
#[must_use]
pub fn search_schedule_replay(
    params: &SearchParams<'_>,
    meter: &mut SchedulingMeter,
) -> SearchOutcome {
    let mut scratch = SearchScratch::new();
    search_core(params, meter, true, &mut scratch)
}

fn search_core(
    params: &SearchParams<'_>,
    meter: &mut SchedulingMeter,
    use_replay: bool,
    scratch: &mut SearchScratch,
) -> SearchOutcome {
    // Clear-don't-drop: every buffer is emptied on entry and refilled below,
    // so a warmed scratch runs the whole phase without touching the
    // allocator. Clearing here (rather than on phase exit) also makes a
    // fresh scratch and a reused one indistinguishable.
    let SearchScratch {
        arena,
        node_costs,
        cl,
        path,
        chain,
        children,
        ckeys,
        raw,
        comp,
        level_task,
        viable,
        shard_ends,
        shard_rank,
        state: state_slot,
        out,
        prof,
    } = scratch;
    arena.clear();
    node_costs.clear();
    cl.clear();
    path.clear();
    chain.clear();
    children.clear();
    ckeys.clear();
    raw.clear();
    comp.clear();
    level_task.clear();
    viable.clear();
    shard_ends.clear();
    shard_rank.clear();
    out.clear();
    prof.reset();

    let n = params.tasks.len();
    let mut stats = SearchStats::default();
    // Root makespan: the latest initial finish time (the empty schedule's CE).
    let root_makespan = params
        .initial_finish
        .iter()
        .copied()
        .max()
        .unwrap_or(Time::ZERO);

    if n == 0 {
        return SearchOutcome {
            assignments: Vec::new(),
            termination: Termination::Leaf,
            n_viable: 0,
            makespan: root_makespan,
            stats,
            provenance: params.provenance.then(PhaseProvenance::default),
        };
    }

    // Phase-level viability screen: processor finish times only grow along
    // any path of `G`, so a task that cannot meet its deadline even against
    // the *initial* finish times is infeasible in the entire phase tree.
    // Screening it out once keeps expansions from re-evaluating it at every
    // level. (Like the paper's per-phase batch expiry test, this screen is
    // not charged against the quantum; screened tasks stay in the batch.)
    // Under provenance every probe is materialized so a screen rejection
    // carries the actual test operands; the verdicts are identical.
    let t_screen = prof.start();
    let screened_evidence = screen_batch(params, viable);
    prof.stop(Stage::Screen, t_screen);
    let viable: &[bool] = viable;
    let n_viable = viable.iter().filter(|&&v| v).count();
    stats.screened_tasks = (n - n_viable) as u64;
    if n_viable == 0 {
        return SearchOutcome {
            assignments: Vec::new(),
            termination: Termination::DeadEnd,
            n_viable: 0,
            makespan: root_makespan,
            stats,
            provenance: params.provenance.then(|| PhaseProvenance {
                screened: screened_evidence,
                decisions: Vec::new(),
            }),
        };
    }

    if let Representation::AssignmentOriented { task_order } = params.representation {
        task_order.order_into(params.tasks, params.now, level_task);
        level_task.retain(|&t| viable[t]);
    }
    let level_task: &[usize] = level_task;

    // The incremental state is part of the scratch: reset in place when a
    // previous phase left one behind, built fresh only on first use.
    match state_slot.as_mut() {
        Some(s) => s.reset(params.initial_finish, n, &params.resources),
        None => {
            *state_slot = Some(PathState::with_resources(
                params.initial_finish.to_vec(),
                n,
                params.resources.clone(),
            ));
        }
    }
    let state = state_slot.as_mut().expect("state initialized above");

    // Shard-first gate: active only under a multi-node hierarchical
    // topology with the assignment-oriented layout. Everything else —
    // constant, mesh, 1-node topology, sequence-oriented — takes the flat
    // candidate path untouched (the 1-node bit-identity contract).
    let shards = shard_gate(params);
    if let Some(topo) = shards {
        node_ends_into(topo, shard_ends);
        state.configure_shards(shard_ends);
    }

    // Best feasible vertex so far: the root (empty schedule, makespan =
    // root_makespan) is the fallback.
    let mut best: Best = (0, root_makespan, None);
    let ctx = Ctx {
        params,
        viable,
        level_task,
        n_viable,
        use_replay,
        shards,
        vertex_cap: params.vertex_cap,
        backtrack_limit: params.pruning.backtrack_limit,
    };
    let mut work = Work {
        arena,
        node_costs,
        cl,
        path,
        chain,
        children,
        ckeys,
        raw,
        comp,
        shard_rank,
        state,
        prof,
    };
    let termination;

    // Expand the root, then walk the candidate list with one incrementally
    // maintained state.
    if let Some((leaf_id, leaf_makespan)) =
        ctx.expand(&mut work, None, meter, &mut stats, &mut best)
    {
        best = (n_viable, leaf_makespan, Some(leaf_id));
        termination = Termination::Leaf;
    } else {
        termination = ctx
            .dfs_loop(&mut work, meter, &mut stats, &mut best, None)
            .termination;
    }

    // Deliver the best vertex's schedule. Untracked: the extraction switch
    // is not part of the search, so it must not skew the per-pop counters.
    // The assignments are copied into the pooled `out` buffer (the state
    // itself stays in the scratch for the next phase); callers return the
    // vector via [`SearchScratch::recycle`] to close the reuse loop.
    let assignments = match best.2 {
        Some(id) => {
            ctx.switch_to(&mut work, &mut stats, id, false);
            out.extend_from_slice(work.state.assignments());
            std::mem::take(out)
        }
        None => Vec::new(),
    };
    let provenance = params
        .provenance
        .then(|| phase_provenance(work.arena, work.node_costs, best.2, screened_evidence));
    SearchOutcome {
        assignments,
        termination,
        n_viable,
        makespan: best.1,
        stats,
        provenance,
    }
}

/// Best feasible vertex so far: `(depth, makespan, arena id)`; a `None` id
/// means "deliver nothing" (the empty root schedule).
type Best = (usize, Time, Option<usize>);

/// The read-only context of one candidate-list walk: the caller's
/// parameters plus the phase-level screen verdicts and level order
/// (computed once per phase) and the budget this particular walk runs
/// under. The serial engine uses the caller's budget verbatim; the
/// parallel engine hands each subtree a slice of it.
struct Ctx<'a, 'b> {
    params: &'b SearchParams<'a>,
    viable: &'b [bool],
    level_task: &'b [usize],
    n_viable: usize,
    use_replay: bool,
    /// `Some` when the shard-first candidate generator is active (multi-node
    /// hierarchical topology, assignment-oriented layout).
    shards: Option<&'a rt_task::TopologySpec>,
    /// Generated-vertex budget of this walk (the phase cap, or one
    /// subtree's slice of it).
    vertex_cap: Option<u64>,
    /// Backtrack budget of this walk (the phase limit, or one subtree's
    /// slice of it).
    backtrack_limit: Option<u64>,
}

/// The mutable working set of one walk — disjoint borrows of one
/// [`SearchScratch`]'s buffers plus its incremental state, bundled so the
/// expansion/switch/loop steps can be methods shared between the serial
/// engine and the per-subtree walks of the parallel engine.
struct Work<'s> {
    arena: &'s mut Vec<Node>,
    node_costs: &'s mut Vec<(Time, Time)>,
    cl: &'s mut Vec<usize>,
    path: &'s mut Vec<usize>,
    chain: &'s mut Vec<usize>,
    children: &'s mut Vec<Candidate>,
    ckeys: &'s mut Vec<u128>,
    raw: &'s mut Vec<(usize, ProcessorId)>,
    comp: &'s mut Vec<Time>,
    shard_rank: &'s mut Vec<(Time, usize)>,
    state: &'s mut PathState,
    prof: &'s mut StageProfiler,
}

impl<'s> Work<'s> {
    /// Borrows every buffer of `scratch` (plus its state, which the caller
    /// must have initialized) as one working set.
    fn over(scratch: &'s mut SearchScratch) -> Self {
        let SearchScratch {
            arena,
            node_costs,
            cl,
            path,
            chain,
            children,
            ckeys,
            raw,
            comp,
            level_task: _,
            viable: _,
            shard_ends: _,
            shard_rank,
            state,
            out: _,
            prof,
        } = scratch;
        Work {
            arena,
            node_costs,
            cl,
            path,
            chain,
            children,
            ckeys,
            raw,
            comp,
            shard_rank,
            state: state.as_mut().expect("scratch state initialized"),
            prof,
        }
    }
}

/// Whether this phase runs the shard-first candidate generator: only under
/// a hierarchical topology with more than one node, and only for the
/// assignment-oriented layout (sequence-oriented levels fix a processor, so
/// there is no per-level shard choice to make). The topology must span
/// exactly the phase's processors.
fn shard_gate<'a>(params: &SearchParams<'a>) -> Option<&'a rt_task::TopologySpec> {
    let topo = params.comm.topology()?;
    if topo.nodes() < 2 || !params.representation.is_assignment_oriented() {
        return None;
    }
    assert_eq!(
        topo.workers(),
        params.initial_finish.len(),
        "topology processor count must match the phase's processors"
    );
    Some(topo)
}

/// Writes the cumulative node end indices of `topo` into `ends` (the shard
/// partition [`PathState::configure_shards`] consumes).
fn node_ends_into(topo: &rt_task::TopologySpec, ends: &mut Vec<usize>) {
    ends.clear();
    ends.extend((0..topo.nodes()).map(|s| topo.node_range(s).1));
}

/// Packs one feasible candidate into a single integer whose natural order
/// is `(completion, processor, task)` — the layout the select stage's raw
/// `u128` sort relies on. `Time` is transparently its microsecond count, so
/// the round-trip through the key is exact.
#[inline]
fn pack_candidate(completion: Time, processor: usize, task: usize) -> u128 {
    debug_assert!(processor < (1 << 32) && task < (1 << 32));
    ((completion.as_micros() as u128) << 64) | ((processor as u128) << 32) | task as u128
}

/// How one candidate-list walk ended: the termination reason plus the exit
/// telemetry the parallel merge needs (`end_depth` = length of the current
/// path at exit, `pops` = vertices popped from `CL`).
struct LoopOut {
    termination: Termination,
    end_depth: usize,
    pops: u64,
}

impl Ctx<'_, '_> {
    /// Reconstructs the PathState of a vertex by replaying root->vertex —
    /// the O(depth) oracle path, taken only when `use_replay` is set.
    /// Allocates freely: the oracle is never on the production hot path.
    fn replay(&self, arena: &[Node], id: Option<usize>) -> PathState {
        let params = self.params;
        let mut chain = Vec::new();
        let mut cursor = id;
        while let Some(i) = cursor {
            chain.push(i);
            cursor = arena[i].parent;
        }
        let mut state = PathState::with_resources(
            params.initial_finish.to_vec(),
            params.tasks.len(),
            params.resources.clone(),
        );
        for &i in chain.iter().rev() {
            let node = &arena[i];
            state.apply(params.tasks, params.comm, node.task, node.processor);
        }
        state
    }

    /// Moves the incremental state (whose current vertex path is
    /// `work.path`, with `path[d-1]` the arena id at depth d) to vertex
    /// `cv`: walk cv's ancestors until one lies on the current path at its
    /// own depth, undo down to that common ancestor, then apply the
    /// collected chain. Both engines run the same bookkeeping (so stats are
    /// bit-identical); only the state materialization differs.
    fn switch_to(&self, work: &mut Work<'_>, stats: &mut SearchStats, cv: usize, track: bool) {
        // Profiling: the ancestor walk and the undo pops share one Undo
        // span; the apply chain gets its own. Spans bracket whole loops —
        // never individual apply/undo calls — per the stage-granularity
        // rule (DESIGN.md §8).
        let t_undo = work.prof.start();
        work.chain.clear();
        let mut cursor = Some(cv);
        let common_depth = loop {
            let Some(i) = cursor else { break 0 };
            let node = &work.arena[i];
            if work.path.get(node.depth - 1) == Some(&i) {
                break node.depth;
            }
            work.chain.push(i);
            cursor = node.parent;
        };
        if track {
            stats.undos += (work.path.len() - common_depth) as u64;
            stats.replay_avoided += common_depth as u64;
        }
        if self.use_replay {
            work.prof.stop(Stage::Undo, t_undo);
            let t_apply = work.prof.start();
            work.path.truncate(common_depth);
            work.path.extend(work.chain.iter().rev());
            *work.state = self.replay(work.arena, Some(cv));
            work.prof.stop(Stage::Apply, t_apply);
        } else {
            while work.path.len() > common_depth {
                work.state.undo();
                work.path.pop();
            }
            work.prof.stop(Stage::Undo, t_undo);
            let t_apply = work.prof.start();
            for &i in work.chain.iter().rev() {
                let node = work.arena[i];
                work.state.apply(
                    self.params.tasks,
                    self.params.comm,
                    node.task,
                    node.processor,
                );
                work.path.push(i);
            }
            work.prof.stop(Stage::Apply, t_apply);
        }
    }

    /// Expands `cv` (`None` = the root): generates, filters, orders and
    /// pushes its successors. Returns `Some((leaf id, leaf makespan))` if a
    /// schedule covering every viable task was generated.
    fn expand(
        &self,
        work: &mut Work<'_>,
        cv: Option<usize>,
        meter: &mut SchedulingMeter,
        stats: &mut SearchStats,
        best: &mut Best,
    ) -> Option<(usize, Time)> {
        let params = self.params;
        // Depth bound (Section 3 pruning): do not expand below the bound.
        if params
            .pruning
            .depth_bound
            .is_some_and(|bound| work.state.depth() >= bound)
        {
            stats.depth_prunes += 1;
            return None;
        }
        stats.expansions += 1;
        let max_skips = params.representation.max_skips(work.state);
        // The cost function ce compares each candidate's completion against
        // the partial schedule's makespan, which the state maintains
        // incrementally — an O(1) read per expansion.
        let base_makespan = work.state.makespan();
        work.children.clear();
        work.ckeys.clear();
        // The two default-ish child orders reduce to the integer order of a
        // packed `completion(64) | processor(32) | task(32)` key (see the
        // select stage below), so their candidates skip the `Candidate`
        // struct entirely: 16-byte pushes in the cost loop and a raw `u128`
        // sort instead of a 40-byte-element comparator sort.
        let packable = matches!(
            params.child_order,
            ChildOrder::LoadBalance | ChildOrder::EarliestCompletion
        );
        // Budget hoists: both are constant for the whole expansion, and the
        // cap compare degenerates to an always-false branch when uncapped
        // (`vertices_generated` cannot reach `u64::MAX`).
        let cap = self.vertex_cap.unwrap_or(u64::MAX);
        // Profiling: the cost span may be cut short by a `break
        // 'skip_rounds` inside the accounting loop; the pending slot carries
        // the open span across the jump so the stop after the loop closes
        // it (stop with `None` is a no-op).
        let mut t_cost = None;
        // Per-candidate accounting order in every branch below (pinned by
        // the `vertex_cap_break_classifies_every_counted_vertex` and
        // `quantum_break_counts_the_uncharged_vertex` tests):
        //   1. vertex cap — checked *before* generating, so a cap break
        //      counts nothing: every cap-counted vertex is classified.
        //   2. quantum charge — counted whether or not it succeeds, so
        //      `vertices_generated == meter.vertices()` always; but a
        //      *failed* charge never reaches classification, so a
        //      mid-round quantum break leaves exactly one counted,
        //      unclassified vertex.
        //   3. feasibility classification — only for charged vertices.
        if params.representation.is_assignment_oriented() {
            // Assignment-oriented levels fix one task, so the round's
            // candidates are exactly one row of the persistent candidate
            // column: sync it in O(Δ) from the journal and read completions
            // straight out of it — no raw candidate list, no O(P) refill.
            // Round `skip` expands the (skip+1)-th unassigned task of the
            // level order. The assigned set is constant for the whole
            // expansion (charges never assign), so consecutive rounds can
            // resume one forward scan instead of re-running `nth(skip)`
            // from the front — O(n) total across all rounds, not O(n²).
            let mut cursor = 0usize;
            'skip_rounds: for _skip in 0..=max_skips {
                let task = {
                    let mut found = None;
                    while let Some(&t) = self.level_task.get(cursor) {
                        cursor += 1;
                        if !work.state.is_assigned(t) {
                            found = Some(t);
                            break;
                        }
                    }
                    match found {
                        Some(t) => t,
                        None => break, // no unassigned task remains at all
                    }
                };
                // The task is fixed for the round, so its deadline is too.
                let deadline = params.tasks[task].deadline();
                if let Some(topo) = self.shards {
                    // Shard-first: screen the nodes against the level's task
                    // and enumerate processors only inside the winning
                    // shards. Like the batch screen, the per-shard bounds
                    // cost no quantum — the saving the sharded bench point
                    // measures.
                    let t_shard = work.prof.start();
                    self.rank_shards(topo, work, task, stats);
                    work.prof.stop(Stage::Shard, t_shard);
                    if work.shard_rank.is_empty() {
                        // The task exists but no shard can meet its
                        // deadline: move on to the next task, as the flat
                        // path would after evaluating (and charging) every
                        // processor.
                        stats.level_skips += 1;
                        continue;
                    }
                    // Sync only the winning shards' column segments — the
                    // losing shards stay stale and unpaid-for.
                    let t_fill = work.prof.start();
                    for i in 0..work.shard_rank.len() {
                        let s = work.shard_rank[i].1;
                        work.state
                            .ensure_candidate_segment(params.tasks, params.comm, task, s);
                    }
                    work.prof.stop(Stage::Fill, t_fill);
                    t_cost = work.prof.start();
                    let col = work.state.comp_column(task);
                    for &(_, s) in work.shard_rank.iter() {
                        let (lo, hi) = topo.node_range(s);
                        for (off, &completion) in col[lo..hi].iter().enumerate() {
                            let p = lo + off;
                            if stats.vertices_generated >= cap {
                                break 'skip_rounds; // cap reached mid-expansion
                            }
                            let charged = meter.charge_vertex();
                            stats.vertices_generated += 1;
                            if !charged {
                                break 'skip_rounds; // quantum ran out mid-expansion
                            }
                            if completion <= deadline {
                                stats.feasible_children += 1;
                                if packable {
                                    work.ckeys.push(pack_candidate(completion, p, task));
                                } else {
                                    work.children.push(Candidate {
                                        task,
                                        processor: p,
                                        completion,
                                        makespan: base_makespan.max(completion),
                                        deadline,
                                    });
                                }
                            } else {
                                stats.infeasible_children += 1;
                            }
                        }
                    }
                    work.prof.stop(Stage::Cost, t_cost.take());
                } else {
                    let t_fill = work.prof.start();
                    let col = work.state.candidate_column(params.tasks, params.comm, task);
                    work.prof.stop(Stage::Fill, t_fill);
                    t_cost = work.prof.start();
                    for (p, &completion) in col.iter().enumerate() {
                        if stats.vertices_generated >= cap {
                            break 'skip_rounds; // cap reached mid-expansion
                        }
                        let charged = meter.charge_vertex();
                        stats.vertices_generated += 1;
                        if !charged {
                            break 'skip_rounds; // quantum ran out mid-expansion
                        }
                        if completion <= deadline {
                            stats.feasible_children += 1;
                            if packable {
                                work.ckeys.push(pack_candidate(completion, p, task));
                            } else {
                                work.children.push(Candidate {
                                    task,
                                    processor: p,
                                    completion,
                                    makespan: base_makespan.max(completion),
                                    deadline,
                                });
                            }
                        } else {
                            stats.infeasible_children += 1;
                        }
                    }
                    work.prof.stop(Stage::Cost, t_cost.take());
                }
                if !work.children.is_empty() || !work.ckeys.is_empty() {
                    break;
                }
                stats.level_skips += 1;
            }
        } else {
            // Sequence-oriented levels fix a processor and branch over
            // tasks: the candidates span many tasks, so the per-task
            // column does not apply and the round keeps the batched
            // completions_into evaluation.
            'skip_rounds: for skip in 0..=max_skips {
                params.representation.raw_candidates_into(
                    work.state,
                    self.level_task,
                    skip,
                    work.raw,
                );
                // Screened (phase-infeasible) tasks are invisible to the
                // search and cost no quantum. An empty round means no viable
                // task is left at all — skipping further cannot help.
                work.raw.retain(|&(t, _)| self.viable[t]);
                if work.raw.is_empty() {
                    break;
                }
                let t_fill = work.prof.start();
                work.state
                    .completions_into(params.tasks, params.comm, work.raw, work.comp);
                work.prof.stop(Stage::Fill, t_fill);
                t_cost = work.prof.start();
                for (i, &(task, p)) in work.raw.iter().enumerate() {
                    if stats.vertices_generated >= cap {
                        break 'skip_rounds; // cap reached mid-expansion
                    }
                    let charged = meter.charge_vertex();
                    stats.vertices_generated += 1;
                    if !charged {
                        break 'skip_rounds; // quantum ran out mid-expansion
                    }
                    let completion = work.comp[i];
                    if params.tasks[task].meets_deadline(completion) {
                        stats.feasible_children += 1;
                        if packable {
                            work.ckeys.push(pack_candidate(completion, p.index(), task));
                        } else {
                            work.children.push(Candidate {
                                task,
                                processor: p.index(),
                                completion,
                                makespan: base_makespan.max(completion),
                                deadline: params.tasks[task].deadline(),
                            });
                        }
                    } else {
                        stats.infeasible_children += 1;
                    }
                }
                work.prof.stop(Stage::Cost, t_cost.take());
                if !work.children.is_empty() || !work.ckeys.is_empty() {
                    break;
                }
                stats.level_skips += 1;
            }
        }
        // Closes the span a mid-loop budget break left open; ordering and
        // pushing the children is its own `select` stage from here on.
        work.prof.stop(Stage::Cost, t_cost);
        let t_select = work.prof.start();
        let depth = work.state.depth() + 1;
        // Push lowest-priority first so the highest-priority child is popped
        // next (CL front). Bulk-extend the arena and CL rather than pushing
        // per child: the capacity checks amortise and the Node construction
        // stays in one tight loop.
        let base_id = work.arena.len();
        let mut leaf = None;
        if packable {
            // The packed key's integer order is `(completion, processor,
            // task)`. For `EarliestCompletion` that *is* the policy key;
            // for `LoadBalance` — `(makespan, completion, processor, task)`
            // — it is equivalent because every makespan here is
            // `base_makespan.max(completion)` for the one shared
            // `base_makespan`: `max` is monotone in `completion`, so
            // distinct completions order the makespans identically, and
            // equal completions give equal makespans, falling through to
            // the same `(processor, task)` tiebreak. A raw `u128` sort
            // replaces a 40-byte-element comparator sort — on wide sharded
            // expansions this is most of the select stage.
            work.ckeys.sort_unstable();
            work.arena.extend(work.ckeys.iter().rev().map(|&k| Node {
                parent: cv,
                depth,
                task: k as u32 as usize,
                processor: ProcessorId::new((k >> 32) as u32 as usize),
            }));
            if params.provenance {
                work.node_costs.extend(work.ckeys.iter().rev().map(|&k| {
                    let completion = Time::from_micros((k >> 64) as u64);
                    (completion, base_makespan.max(completion))
                }));
            }
            work.cl.extend(base_id..base_id + work.ckeys.len());
            if !work.ckeys.is_empty() {
                stats.deepest = stats.deepest.max(depth);
            }
            for (i, &k) in work.ckeys.iter().rev().enumerate() {
                let id = base_id + i;
                let makespan = base_makespan.max(Time::from_micros((k >> 64) as u64));
                // Every generated feasible vertex is a candidate "best".
                let key = (depth, makespan);
                if key.0 > best.0 || (key.0 == best.0 && key.1 < best.1) {
                    *best = (depth, makespan, Some(id));
                }
                if depth == self.n_viable {
                    // Prefer the highest-priority leaf of this expansion:
                    // since we iterate lowest-priority first, keep
                    // overwriting.
                    leaf = Some((id, makespan));
                }
            }
        } else {
            params.child_order.sort(work.children);
            work.arena
                .extend(work.children.iter().rev().map(|child| Node {
                    parent: cv,
                    depth,
                    task: child.task,
                    processor: ProcessorId::new(child.processor),
                }));
            if params.provenance {
                work.node_costs.extend(
                    work.children
                        .iter()
                        .rev()
                        .map(|c| (c.completion, c.makespan)),
                );
            }
            work.cl.extend(base_id..base_id + work.children.len());
            if !work.children.is_empty() {
                stats.deepest = stats.deepest.max(depth);
            }
            for (i, child) in work.children.iter().rev().enumerate() {
                let id = base_id + i;
                // Every generated feasible vertex is a candidate "best".
                let key = (depth, child.makespan);
                if key.0 > best.0 || (key.0 == best.0 && key.1 < best.1) {
                    *best = (depth, child.makespan, Some(id));
                }
                if depth == self.n_viable {
                    // Prefer the highest-priority leaf of this expansion:
                    // since we iterate lowest-priority first, keep
                    // overwriting.
                    leaf = Some((id, child.makespan));
                }
            }
        }
        work.prof.stop(Stage::Select, t_select);
        leaf
    }

    /// The shard-first screen: tests every shard of the topology against
    /// the level's task with an aggregate feasibility bound and leaves the
    /// best-ranked feasible shards (up to the topology's fanout) in
    /// `work.shard_rank`. The expansion then enumerates processors only
    /// inside those winners, reading completions from the task's candidate
    /// column.
    ///
    /// The screen bound for shard `s` is
    /// `max(shard_min(s), earliest_resource_start) + p + min_node_cost(s)`,
    /// a lower bound on the completion of the task on *every* processor of
    /// the shard (and exact on its best one), so a screened-out shard truly
    /// has no feasible member. Only the fanout cut is heuristic. Shards are
    /// ranked by `(bound, shard index)` — a total order, so the generated
    /// candidate set is deterministic.
    fn rank_shards(
        &self,
        topo: &rt_task::TopologySpec,
        work: &mut Work<'_>,
        task: usize,
        stats: &mut SearchStats,
    ) {
        let t = &self.params.tasks[task];
        stats.shard_screens += 1;
        work.shard_rank.clear();
        let earliest = work.state.earliest_resource_start(t);
        let mut pruned = 0u64;
        for s in 0..topo.nodes() {
            let start = work.state.shard_min(s).max(earliest);
            let bound = start + t.processing_time() + topo.min_node_cost(t.affinity(), s);
            if t.meets_deadline(bound) {
                work.shard_rank.push((bound, s));
            } else {
                pruned += 1;
            }
        }
        work.shard_rank.sort_unstable();
        let fanout = topo.fanout().min(work.shard_rank.len());
        pruned += (work.shard_rank.len() - fanout) as u64;
        stats.shards_pruned += pruned;
        work.shard_rank.truncate(fanout);
    }

    /// Walks the candidate list until a leaf, a dead-end, a budget break or
    /// a pruning bound: the serial engine's main loop, also run per subtree
    /// by the parallel engine (against that subtree's own budget slices).
    fn dfs_loop(
        &self,
        work: &mut Work<'_>,
        meter: &mut SchedulingMeter,
        stats: &mut SearchStats,
        best: &mut Best,
        mut last_expanded: Option<usize>,
    ) -> LoopOut {
        let mut pops = 0u64;
        let termination = loop {
            if meter.exhausted()
                || self
                    .vertex_cap
                    .is_some_and(|cap| stats.vertices_generated >= cap)
            {
                break Termination::QuantumExhausted;
            }
            let Some(cv) = work.cl.pop() else {
                break Termination::DeadEnd;
            };
            pops += 1;
            if work.arena[cv].parent != last_expanded {
                stats.backtracks += 1;
                if self
                    .backtrack_limit
                    .is_some_and(|limit| stats.backtracks > limit)
                {
                    break Termination::Pruned;
                }
            }
            self.switch_to(work, stats, cv, true);
            last_expanded = Some(cv);
            if let Some((leaf_id, leaf_makespan)) = self.expand(work, Some(cv), meter, stats, best)
            {
                *best = (self.n_viable, leaf_makespan, Some(leaf_id));
                break Termination::Leaf;
            }
        };
        LoopOut {
            termination,
            end_depth: work.path.len(),
            pops,
        }
    }
}

/// The phase-level viability screen over the whole batch: fills `viable`
/// with one verdict per task and returns the evidence for rejected tasks
/// (empty unless [`SearchParams::provenance`] is set, which materializes
/// every probe's operands; the verdicts are identical either way).
fn screen_batch(params: &SearchParams<'_>, viable: &mut Vec<bool>) -> Vec<ScreenEvidence> {
    let mut screened_evidence: Vec<ScreenEvidence> = Vec::new();
    if params.provenance {
        for (idx, t) in params.tasks.iter().enumerate() {
            let probes: Vec<ScreenProbe> = ProcessorId::all(params.initial_finish.len())
                .map(|p| {
                    let available = params.initial_finish[p.index()];
                    let demand = params.comm.demand(t, p);
                    ScreenProbe {
                        processor: p,
                        available,
                        demand,
                        completion: available + demand,
                    }
                })
                .collect();
            let ok = probes.iter().any(|pr| t.meets_deadline(pr.completion));
            if !ok {
                screened_evidence.push(ScreenEvidence { task: idx, probes });
            }
            viable.push(ok);
        }
    } else {
        viable.extend(params.tasks.iter().map(|t| {
            ProcessorId::all(params.initial_finish.len()).any(|p| {
                t.meets_deadline(params.initial_finish[p.index()] + params.comm.demand(t, p))
            })
        }));
    }
    screened_evidence
}

/// Same-expansion alternatives for one delivered node: every sibling in
/// `arena` with the same parent and task, in generation order.
fn rejected_siblings(
    arena: &[Node],
    node_costs: &[(Time, Time)],
    exclude: usize,
    parent: Option<usize>,
    task: usize,
) -> Vec<PlacementAlternative> {
    arena
        .iter()
        .enumerate()
        .filter(|&(sid, sib)| sid != exclude && sib.parent == parent && sib.task == task)
        .map(|(sid, sib)| PlacementAlternative {
            processor: sib.processor,
            completion: node_costs[sid].0,
            cost: node_costs[sid].1,
        })
        .collect()
}

/// Decision evidence for the delivered path: each assignment's chosen cost
/// next to its same-task siblings (the rejected alternatives of the same
/// expansion). Reconstructed after the fact so collection cannot perturb
/// the search.
fn phase_provenance(
    arena: &[Node],
    node_costs: &[(Time, Time)],
    best_id: Option<usize>,
    screened: Vec<ScreenEvidence>,
) -> PhaseProvenance {
    let mut decisions = Vec::new();
    if let Some(best_id) = best_id {
        let mut path_ids = Vec::new();
        let mut cursor = Some(best_id);
        while let Some(i) = cursor {
            path_ids.push(i);
            cursor = arena[i].parent;
        }
        path_ids.reverse();
        for &id in &path_ids {
            let node = &arena[id];
            let (completion, cost) = node_costs[id];
            decisions.push(PlacementEvidence {
                task: node.task,
                processor: node.processor,
                completion,
                cost,
                rejected: rejected_siblings(arena, node_costs, id, node.parent, node.task),
            });
        }
    }
    PhaseProvenance {
        screened,
        decisions,
    }
}

/// Wire label of a walk termination for [`WalkProfile::termination`] (the
/// strings the Perfetto exporter and `rtsads_sim profile` group by).
fn termination_label(t: Termination) -> &'static str {
    match t {
        Termination::Leaf => "leaf",
        Termination::DeadEnd => "dead_end",
        Termination::QuantumExhausted => "budget",
        Termination::Pruned => "pruned",
    }
}

/// Adds one subtree walk's counters into the merged phase counters.
/// Everything is additive except `deepest` (a max) — `screened_tasks` is
/// additive too, but subtree walks never screen, so only the shared
/// prologue contributes.
fn merge_stats(acc: &mut SearchStats, sub: &SearchStats) {
    acc.vertices_generated += sub.vertices_generated;
    acc.expansions += sub.expansions;
    acc.backtracks += sub.backtracks;
    acc.infeasible_children += sub.infeasible_children;
    acc.feasible_children += sub.feasible_children;
    acc.deepest = acc.deepest.max(sub.deepest);
    acc.level_skips += sub.level_skips;
    acc.depth_prunes += sub.depth_prunes;
    acc.screened_tasks += sub.screened_tasks;
    acc.undos += sub.undos;
    acc.replay_avoided += sub.replay_avoided;
    acc.shard_screens += sub.shard_screens;
    acc.shards_pruned += sub.shards_pruned;
}

/// Per-subtree scratch pool for the deterministic parallel engine: one
/// [`SearchScratch`] per root subtree, grown on demand and reused across
/// phases exactly like the serial scratch.
#[derive(Debug, Default)]
pub struct ParallelScratch {
    subs: Vec<SearchScratch>,
}

impl ParallelScratch {
    /// An empty pool; per-subtree scratches grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Telemetry of one subtree walk of a parallel phase (report only — the
/// merged [`SearchOutcome`] is the authoritative result).
#[derive(Debug, Clone)]
pub struct SubReport {
    /// How this subtree's walk ended.
    pub termination: Termination,
    /// The subtree's own counters. Its depth-1 root vertex was generated
    /// and charged by the shared root expansion, so it is *not* counted
    /// here.
    pub stats: SearchStats,
    /// Vertices popped from the subtree's candidate list.
    pub pops: u64,
    /// Length of the subtree's current path when the walk ended.
    pub end_depth: usize,
    /// Whether the merge committed this subtree. Subtrees after the first
    /// leaf are discarded, exactly as the serial engine never reaches them.
    pub committed: bool,
    /// Vertices charged against the subtree's private meter slice.
    pub vertices: u64,
    /// Scheduling time consumed from the subtree's private meter slice.
    pub consumed: Duration,
}

/// How a parallel phase executed: whether it split, how the subtree walks
/// ended, and the shared-prologue counters the merge started from.
#[derive(Debug, Clone, Default)]
pub struct ParallelReport {
    /// Whether the phase actually split (two or more subtrees and budget
    /// left after the root expansion). When false the phase ran the serial
    /// loop and `subs` is empty.
    pub split: bool,
    /// Number of root subtrees (feasible root children).
    pub subtrees: usize,
    /// Subtrees the merge committed (`<= subtrees`; the rest were discarded
    /// because an earlier subtree reached a leaf).
    pub committed: usize,
    /// Counters after the shared root expansion, before any subtree ran —
    /// the merge's starting point.
    pub stage_stats: SearchStats,
    /// Per-subtree telemetry, in root-priority order (index 0 = the
    /// highest-priority root child, the branch the serial engine dives
    /// first).
    pub subs: Vec<SubReport>,
}

/// One root subtree handed to a worker: its root child (already in the
/// stage arena) and the budget slices its walk runs under.
#[derive(Debug, Clone, Copy)]
struct SubSpec {
    /// Arena id of the subtree's root child in the *stage* arena.
    root_id: usize,
    task: usize,
    processor: ProcessorId,
    completion: Time,
    makespan: Time,
    vertex_cap: Option<u64>,
    backtrack_limit: Option<u64>,
    quantum: Duration,
}

/// What one subtree walk produced ([`SubReport`] is the public
/// projection).
struct SubRun {
    termination: Termination,
    stats: SearchStats,
    best: Best,
    pops: u64,
    end_depth: usize,
    vertices: u64,
    consumed: Duration,
    exhausted: bool,
}

/// Runs one subtree walk on its own scratch and private meter slice: seeds
/// the scratch with the subtree's root child (depth 1 — the vertex the
/// shared root expansion already generated and charged), then runs the same
/// candidate-list loop as the serial engine.
fn run_sub(
    ctx: &Ctx<'_, '_>,
    spec: &SubSpec,
    scratch: &mut SearchScratch,
    host: HostParams,
) -> SubRun {
    let params = ctx.params;
    let SearchScratch {
        arena,
        node_costs,
        cl,
        path,
        chain,
        children,
        ckeys,
        raw,
        comp,
        level_task: _,
        viable: _,
        shard_ends,
        shard_rank,
        state: state_slot,
        out: _,
        prof,
    } = scratch;
    arena.clear();
    node_costs.clear();
    cl.clear();
    path.clear();
    chain.clear();
    children.clear();
    ckeys.clear();
    raw.clear();
    comp.clear();
    shard_ends.clear();
    shard_rank.clear();
    prof.reset();
    match state_slot.as_mut() {
        Some(s) => s.reset(params.initial_finish, params.tasks.len(), &params.resources),
        None => {
            *state_slot = Some(PathState::with_resources(
                params.initial_finish.to_vec(),
                params.tasks.len(),
                params.resources.clone(),
            ));
        }
    }
    let state = state_slot.as_mut().expect("state initialized above");
    if let Some(topo) = ctx.shards {
        node_ends_into(topo, shard_ends);
        state.configure_shards(shard_ends);
    }
    arena.push(Node {
        parent: None,
        depth: 1,
        task: spec.task,
        processor: spec.processor,
    });
    if params.provenance {
        node_costs.push((spec.completion, spec.makespan));
    }
    cl.push(0);
    let sub_ctx = Ctx {
        params,
        viable: ctx.viable,
        level_task: ctx.level_task,
        n_viable: ctx.n_viable,
        use_replay: false,
        shards: ctx.shards,
        vertex_cap: spec.vertex_cap,
        backtrack_limit: spec.backtrack_limit,
    };
    let mut meter = SchedulingMeter::new(host, spec.quantum);
    let mut stats = SearchStats::default();
    let mut best: Best = (1, spec.makespan, Some(0));
    let mut work = Work {
        arena,
        node_costs,
        cl,
        path,
        chain,
        children,
        ckeys,
        raw,
        comp,
        shard_rank,
        state,
        prof,
    };
    let walk = sub_ctx.dfs_loop(&mut work, &mut meter, &mut stats, &mut best, None);
    SubRun {
        termination: walk.termination,
        stats,
        best,
        pops: walk.pops,
        end_depth: walk.end_depth,
        vertices: meter.vertices(),
        consumed: meter.consumed(),
        // A slice meter that filled up exactly as the walk finished on its
        // own (dead-end/leaf) is a slicing artifact, not phase exhaustion —
        // the serial engine, holding the undivided quantum, would not be
        // exhausted there. Only a walk the budget actually cut short
        // carries the flag up (the merged meter still re-derives exact-fill
        // exhaustion from its own totals in `SchedulingMeter::absorb`).
        exhausted: meter.exhausted() && walk.termination == Termination::QuantumExhausted,
    }
}

/// The deterministic parallel engine: [`search_schedule_with`] whose
/// exploration below the root is split across `threads` worker threads.
///
/// The root is expanded once, on the caller's meter, identically to the
/// serial engine; each feasible root child then seeds an independent
/// subtree walk with its own scratch and a private meter carrying `1/k` of
/// the remaining quantum, plus `1/k` slices of the vertex cap and backtrack
/// limit. The split is by *subtree*, never by thread: `threads` only sets
/// how many OS threads drain the `k` walks, so the outcome is bit-identical
/// at any thread count (including 1). Whenever no subtree budget slice
/// binds, the merged outcome is also bit-identical to the serial engine's
/// (see DESIGN.md — the deterministic-reduction invariant).
#[must_use]
pub fn search_schedule_parallel(
    params: &SearchParams<'_>,
    threads: usize,
    meter: &mut SchedulingMeter,
    scratch: &mut SearchScratch,
    par: &mut ParallelScratch,
) -> SearchOutcome {
    search_parallel_core(params, threads, meter, scratch, par).0
}

/// [`search_schedule_parallel`] returning the per-subtree execution report
/// next to the merged outcome (differential tests and diagnostics).
#[must_use]
pub fn search_schedule_parallel_with_report(
    params: &SearchParams<'_>,
    threads: usize,
    meter: &mut SchedulingMeter,
    scratch: &mut SearchScratch,
    par: &mut ParallelScratch,
) -> (SearchOutcome, ParallelReport) {
    search_parallel_core(params, threads, meter, scratch, par)
}

/// The parallel phase: the serial prologue and root expansion, a
/// deterministic subtree split, and the stats/meter/best/provenance merge.
fn search_parallel_core(
    params: &SearchParams<'_>,
    threads: usize,
    meter: &mut SchedulingMeter,
    scratch: &mut SearchScratch,
    par: &mut ParallelScratch,
) -> (SearchOutcome, ParallelReport) {
    let SearchScratch {
        arena,
        node_costs,
        cl,
        path,
        chain,
        children,
        ckeys,
        raw,
        comp,
        level_task,
        viable,
        shard_ends,
        shard_rank,
        state: state_slot,
        out,
        prof,
    } = scratch;
    arena.clear();
    node_costs.clear();
    cl.clear();
    path.clear();
    chain.clear();
    children.clear();
    ckeys.clear();
    raw.clear();
    comp.clear();
    level_task.clear();
    viable.clear();
    shard_ends.clear();
    shard_rank.clear();
    out.clear();
    prof.reset();

    let n = params.tasks.len();
    let mut stats = SearchStats::default();
    let root_makespan = params
        .initial_finish
        .iter()
        .copied()
        .max()
        .unwrap_or(Time::ZERO);
    let mut report = ParallelReport::default();

    if n == 0 {
        return (
            SearchOutcome {
                assignments: Vec::new(),
                termination: Termination::Leaf,
                n_viable: 0,
                makespan: root_makespan,
                stats,
                provenance: params.provenance.then(PhaseProvenance::default),
            },
            report,
        );
    }

    let t_screen = prof.start();
    let screened_evidence = screen_batch(params, viable);
    prof.stop(Stage::Screen, t_screen);
    let viable: &[bool] = viable;
    let n_viable = viable.iter().filter(|&&v| v).count();
    stats.screened_tasks = (n - n_viable) as u64;
    if n_viable == 0 {
        return (
            SearchOutcome {
                assignments: Vec::new(),
                termination: Termination::DeadEnd,
                n_viable: 0,
                makespan: root_makespan,
                stats,
                provenance: params.provenance.then(|| PhaseProvenance {
                    screened: screened_evidence,
                    decisions: Vec::new(),
                }),
            },
            report,
        );
    }

    if let Representation::AssignmentOriented { task_order } = params.representation {
        task_order.order_into(params.tasks, params.now, level_task);
        level_task.retain(|&t| viable[t]);
    }
    let level_task: &[usize] = level_task;

    match state_slot.as_mut() {
        Some(s) => s.reset(params.initial_finish, n, &params.resources),
        None => {
            *state_slot = Some(PathState::with_resources(
                params.initial_finish.to_vec(),
                n,
                params.resources.clone(),
            ));
        }
    }
    let state = state_slot.as_mut().expect("state initialized above");

    let shards = shard_gate(params);
    if let Some(topo) = shards {
        node_ends_into(topo, shard_ends);
        state.configure_shards(shard_ends);
    }

    let mut best: Best = (0, root_makespan, None);
    let ctx = Ctx {
        params,
        viable,
        level_task,
        n_viable,
        use_replay: false,
        shards,
        vertex_cap: params.vertex_cap,
        backtrack_limit: params.pruning.backtrack_limit,
    };
    let mut work = Work {
        arena,
        node_costs,
        cl,
        path,
        chain,
        children,
        ckeys,
        raw,
        comp,
        shard_rank,
        state,
        prof,
    };

    // Stage: the shared root expansion, charged against the caller's meter
    // exactly like the serial engine.
    let leaf = ctx.expand(&mut work, None, meter, &mut stats, &mut best);
    let k = work.cl.len();
    report.subtrees = k;
    report.stage_stats = stats;

    // Serial fallbacks: a root leaf, fewer than two subtrees, or a budget
    // already dead at the root. Each continues on the serial engine's exact
    // code path (and is therefore bit-identical to it).
    let budget_dead = meter.exhausted()
        || ctx
            .vertex_cap
            .is_some_and(|cap| stats.vertices_generated >= cap);
    if leaf.is_some() || k < 2 || budget_dead {
        let termination = if let Some((leaf_id, leaf_makespan)) = leaf {
            best = (n_viable, leaf_makespan, Some(leaf_id));
            Termination::Leaf
        } else {
            ctx.dfs_loop(&mut work, meter, &mut stats, &mut best, None)
                .termination
        };
        let assignments = match best.2 {
            Some(id) => {
                ctx.switch_to(&mut work, &mut stats, id, false);
                out.extend_from_slice(work.state.assignments());
                std::mem::take(out)
            }
            None => Vec::new(),
        };
        let provenance = params
            .provenance
            .then(|| phase_provenance(work.arena, work.node_costs, best.2, screened_evidence));
        return (
            SearchOutcome {
                assignments,
                termination,
                n_viable,
                makespan: best.1,
                stats,
                provenance,
            },
            report,
        );
    }
    report.split = true;

    // Deterministic subtree specs, highest root priority first. `CL` is a
    // stack (end = front), so subtree 0 — the branch the serial engine
    // dives first — owns the last `CL` entry. Budget slices: each subtree
    // gets 1/k of the remaining quantum, vertex cap and backtrack limit
    // (the first `cap % k` subtrees absorb the vertex-cap remainder).
    let quantum_slice = meter.remaining() / (k as u64);
    let cap_left = ctx
        .vertex_cap
        .map(|cap| cap.saturating_sub(stats.vertices_generated));
    let bt_slice = ctx.backtrack_limit.map(|limit| limit / (k as u64));
    let specs: Vec<SubSpec> = (0..k)
        .map(|i| {
            let root_id = work.cl[k - 1 - i];
            let node = work.arena[root_id];
            // The state still sits at the root, so this recomputes exactly
            // the completion the root expansion evaluated.
            let completion =
                work.state
                    .completion_if(params.tasks, params.comm, node.task, node.processor);
            SubSpec {
                root_id,
                task: node.task,
                processor: node.processor,
                completion,
                makespan: root_makespan.max(completion),
                vertex_cap: cap_left
                    .map(|c| c / (k as u64) + u64::from((i as u64) < c % (k as u64))),
                backtrack_limit: bt_slice,
                quantum: quantum_slice,
            }
        })
        .collect();

    // Drain the k walks on `threads` OS threads (contiguous chunks of the
    // per-subtree scratch pool). The thread count affects scheduling only —
    // each walk's result is keyed by its subtree index, so the merge below
    // sees the same inputs at any width.
    if par.subs.len() < k {
        par.subs.resize_with(k, SearchScratch::default);
    }
    // Each subtree walk profiles into its own scratch's profiler; the flag
    // mirrors the phase profiler's so a disabled phase stays clock-free on
    // every worker thread.
    let prof_on = work.prof.enabled();
    for sub in par.subs[..k].iter_mut() {
        sub.prof.set_enabled(prof_on);
    }
    let host = meter.host_params();
    let width = threads.max(1).min(k);
    let mut runs: Vec<Option<SubRun>> = Vec::with_capacity(k);
    runs.resize_with(k, || None);
    if width == 1 {
        for (slot, (sub_scratch, spec)) in runs.iter_mut().zip(par.subs[..k].iter_mut().zip(&specs))
        {
            *slot = Some(run_sub(&ctx, spec, sub_scratch, host));
        }
    } else {
        let chunk = k.div_ceil(width);
        let ctx_ref = &ctx;
        std::thread::scope(|scope| {
            let handles: Vec<_> = par.subs[..k]
                .chunks_mut(chunk)
                .zip(specs.chunks(chunk))
                .map(|(scratches, chunk_specs)| {
                    scope.spawn(move || {
                        scratches
                            .iter_mut()
                            .zip(chunk_specs)
                            .map(|(s, spec)| run_sub(ctx_ref, spec, s, host))
                            .collect::<Vec<SubRun>>()
                    })
                })
                .collect();
            for (ci, handle) in handles.into_iter().enumerate() {
                let walks = handle.join().expect("subtree search thread panicked");
                for (j, walk) in walks.into_iter().enumerate() {
                    runs[ci * chunk + j] = Some(walk);
                }
            }
        });
    }
    let runs: Vec<SubRun> = runs
        .into_iter()
        .map(|r| r.expect("every subtree ran"))
        .collect();

    // Commit rule: the serial engine stops at the first leaf, so only the
    // subtrees up to and including the lowest-index Leaf are "real" — later
    // subtrees would never have run serially and are discarded wholesale.
    let t_merge = work.prof.start();
    let leaf_sub = runs.iter().position(|r| r.termination == Termination::Leaf);
    let committed = leaf_sub.map_or(k, |l| l + 1);
    report.committed = committed;

    // Merge counters and meters in subtree-priority order, then add the
    // cross-subtree bookkeeping the serial engine charges when hopping from
    // the end of one exhausted subtree to the next root child: one
    // backtrack per entered subtree after the first, and an undo of the
    // previous subtree's final path (the common ancestor is the root, so
    // no replay is avoided).
    let mut entered_depths: Vec<u64> = Vec::new();
    for run in &runs[..committed] {
        merge_stats(&mut stats, &run.stats);
        meter.absorb(run.vertices, run.consumed, run.exhausted);
        if run.pops > 0 {
            entered_depths.push(run.end_depth as u64);
        }
    }
    stats.backtracks += (entered_depths.len() as u64).saturating_sub(1);
    if entered_depths.len() >= 2 {
        stats.undos += entered_depths[..entered_depths.len() - 1]
            .iter()
            .sum::<u64>();
    }

    // Best-vertex reduction. The stage fold over the root children already
    // reproduces the serial engine's depth-1 ordering (lowest priority
    // folded first), so only *interior* subtree bests (depth >= 2) compete:
    // folding them in priority order under the same strict-improvement rule
    // recovers exactly the serial "first optimum in exploration order". A
    // leaf overrides unconditionally, as in the serial loop.
    let mut owner: Option<usize> = None; // best's subtree; None = stage arena
    let termination = if let Some(l) = leaf_sub {
        best = runs[l].best;
        owner = Some(l);
        Termination::Leaf
    } else {
        for (i, run) in runs[..committed].iter().enumerate() {
            let cand = run.best;
            if cand.0 >= 2 && (cand.0 > best.0 || (cand.0 == best.0 && cand.1 < best.1)) {
                best = cand;
                owner = Some(i);
            }
        }
        if runs[..committed]
            .iter()
            .any(|r| r.termination == Termination::QuantumExhausted)
        {
            Termination::QuantumExhausted
        } else if runs[..committed]
            .iter()
            .any(|r| r.termination == Termination::Pruned)
        {
            Termination::Pruned
        } else {
            Termination::DeadEnd
        }
    };
    work.prof.stop(Stage::Merge, t_merge);

    // Deliver the best vertex's schedule from whichever arena owns it.
    let assignments = match owner {
        None => match best.2 {
            Some(id) => {
                ctx.switch_to(&mut work, &mut stats, id, false);
                out.extend_from_slice(work.state.assignments());
                std::mem::take(out)
            }
            None => Vec::new(),
        },
        Some(i) => {
            let mut sub_work = Work::over(&mut par.subs[i]);
            let id = best.2.expect("a subtree best always names a vertex");
            ctx.switch_to(&mut sub_work, &mut stats, id, false);
            out.extend_from_slice(sub_work.state.assignments());
            std::mem::take(out)
        }
    };

    // Provenance merge: the screen evidence comes from the shared prologue;
    // the decision path from the owning arena. A subtree's depth-1 node
    // repeats a stage root child, so its rejected alternatives are the
    // *other* root children (stage arena); deeper nodes find their siblings
    // in the subtree's own arena. The values match the serial engine's —
    // only arena ids differ, and evidence carries none.
    let provenance = params.provenance.then(|| match owner {
        None => phase_provenance(work.arena, work.node_costs, best.2, screened_evidence),
        Some(i) => {
            let sub = &par.subs[i];
            let id = best.2.expect("a subtree best always names a vertex");
            let mut path_ids = Vec::new();
            let mut cursor = Some(id);
            while let Some(nid) = cursor {
                path_ids.push(nid);
                cursor = sub.arena[nid].parent;
            }
            path_ids.reverse();
            let mut decisions = Vec::new();
            for &nid in &path_ids {
                let node = &sub.arena[nid];
                let (completion, cost) = sub.node_costs[nid];
                let rejected = if node.parent.is_none() {
                    rejected_siblings(
                        work.arena,
                        work.node_costs,
                        specs[i].root_id,
                        None,
                        node.task,
                    )
                } else {
                    rejected_siblings(&sub.arena, &sub.node_costs, nid, node.parent, node.task)
                };
                decisions.push(PlacementEvidence {
                    task: node.task,
                    processor: node.processor,
                    completion,
                    cost,
                    rejected,
                });
            }
            PhaseProvenance {
                screened: screened_evidence,
                decisions,
            }
        }
    });

    // Fold every walk's stage times into the phase profiler (all k walks
    // ran and burned wall time, committed or not) and record one walk entry
    // each for the imbalance diagnostics. Both are no-ops when profiling is
    // off; the enabled guard keeps the label allocation off the hot path.
    if work.prof.enabled() {
        for (i, run) in runs.iter().enumerate() {
            work.prof.absorb(&par.subs[i].prof);
            work.prof.record_walk(WalkProfile {
                termination: termination_label(run.termination).to_string(),
                vertices: run.vertices,
                end_depth: run.end_depth,
                pops: run.pops,
                committed: i < committed,
            });
        }
    }

    report.subs = runs
        .iter()
        .enumerate()
        .map(|(i, run)| SubReport {
            termination: run.termination,
            stats: run.stats,
            pops: run.pops,
            end_depth: run.end_depth,
            committed: i < committed,
            vertices: run.vertices,
            consumed: run.consumed,
        })
        .collect();

    (
        SearchOutcome {
            assignments,
            termination,
            n_viable,
            makespan: best.1,
            stats,
            provenance,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;
    use paragon_platform::HostParams;
    use rt_task::{AffinitySet, TaskId};

    fn mk_task(id: u64, p_us: u64, d_us: u64, aff: &[usize]) -> Task {
        Task::builder(TaskId::new(id))
            .processing_time(Duration::from_micros(p_us))
            .deadline(Time::from_micros(d_us))
            .affinity(
                aff.iter()
                    .map(|&k| ProcessorId::new(k))
                    .collect::<AffinitySet>(),
            )
            .build()
    }

    fn free_meter() -> SchedulingMeter {
        SchedulingMeter::new(HostParams::free(), Duration::ZERO)
    }

    fn params<'a>(
        tasks: &'a [Task],
        comm: &'a CommModel,
        initial: &'a [Time],
        repr: &'a Representation,
        order: ChildOrder,
    ) -> SearchParams<'a> {
        SearchParams {
            tasks,
            comm,
            initial_finish: initial,
            representation: repr,
            child_order: order,
            now: Time::ZERO,
            vertex_cap: Some(100_000),
            pruning: Pruning::default(),
            resources: ResourceEats::new(),
            provenance: false,
        }
    }

    #[test]
    fn empty_batch_is_a_trivial_leaf() {
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let p = params(&[], &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::Leaf);
        assert!(out.assignments.is_empty());
        assert!(out.is_complete(0));
    }

    #[test]
    fn assignment_oriented_schedules_everything_feasible() {
        let tasks: Vec<Task> = (0..6).map(|i| mk_task(i, 100, 100_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 3];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::Leaf);
        assert!(out.is_complete(6));
        // load balancing spreads 6 equal tasks over 3 processors, 2 each
        assert_eq!(out.processors_used(), 3);
        let max_done = out.assignments.iter().map(|a| a.completion).max().unwrap();
        assert_eq!(max_done, Time::from_micros(200));
    }

    #[test]
    fn all_scheduled_tasks_meet_deadlines() {
        // Mixed feasibility: generous and impossible deadlines.
        let tasks = vec![
            mk_task(0, 100, 150, &[]),
            mk_task(1, 100, 90, &[]), // infeasible: p=100 > d=90
            mk_task(2, 100, 300, &[]),
        ];
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        // task 1 can never be scheduled: the phase still ends at a leaf of
        // the *screened* tree, covering the viable tasks but not the batch.
        assert_eq!(out.termination, Termination::Leaf);
        assert!(!out.is_complete(3));
        assert!(out.covers_viable());
        assert_eq!(out.n_viable, 2);
        assert_eq!(out.screened(), 1, "task 1 screened at phase level");
        assert!(out.assignments.iter().all(|a| a.task != 1));
        for a in &out.assignments {
            assert!(tasks[a.task].meets_deadline(a.completion));
        }
    }

    #[test]
    fn quantum_exhaustion_returns_partial_schedule() {
        let tasks: Vec<Task> = (0..50).map(|i| mk_task(i, 100, 1_000_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 4];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        // 10us quantum at 1us per vertex = 10 vertices = 2.5 expansions of 4
        let mut meter = SchedulingMeter::new(
            HostParams::new(Duration::from_micros(1)),
            Duration::from_micros(10),
        );
        let out = search_schedule(&p, &mut meter);
        assert_eq!(out.termination, Termination::QuantumExhausted);
        assert!(!out.assignments.is_empty(), "delivers what it found");
        assert!(out.assignments.len() < 50);
        assert_eq!(out.stats.vertices_generated, meter.vertices());
    }

    #[test]
    fn quantum_break_counts_the_uncharged_vertex() {
        // Accounting contract, step 2: the charge attempt that finds the
        // quantum exhausted is still counted as a generated vertex (so the
        // stats always equal `meter.vertices()`), but it is never
        // classified. 10us quantum at 1us per vertex: charges 1..=9 fill
        // 9us, charge 10 is the exact fill (succeeds, exhausts), charge 11
        // fails -> 11 counted, 10 classified.
        let tasks: Vec<Task> = (0..50).map(|i| mk_task(i, 100, 1_000_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 4];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let mut meter = SchedulingMeter::new(
            HostParams::new(Duration::from_micros(1)),
            Duration::from_micros(10),
        );
        let out = search_schedule(&p, &mut meter);
        assert_eq!(out.termination, Termination::QuantumExhausted);
        assert_eq!(out.stats.vertices_generated, 11);
        assert_eq!(out.stats.vertices_generated, meter.vertices());
        assert_eq!(
            out.stats.feasible_children + out.stats.infeasible_children,
            out.stats.vertices_generated - 1,
            "exactly the one uncharged vertex goes unclassified"
        );
    }

    #[test]
    fn vertex_cap_break_classifies_every_counted_vertex() {
        // Accounting contract, step 1: the cap is checked *before* a vertex
        // is generated, so a mid-round cap break counts nothing — every
        // counted vertex carries a feasibility verdict. Cap 6 on a
        // 4-processor expansion breaks two candidates into the second round.
        let tasks: Vec<Task> = (0..50).map(|i| mk_task(i, 100, 1_000_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 4];
        let mut p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        p.vertex_cap = Some(6);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::QuantumExhausted);
        assert_eq!(out.stats.vertices_generated, 6, "never exceeds the cap");
        assert_eq!(
            out.stats.feasible_children + out.stats.infeasible_children,
            out.stats.vertices_generated,
            "a cap break leaves no unclassified vertex"
        );
    }

    #[test]
    fn reused_scratch_matches_fresh_runs() {
        // One scratch carried across phases of very different shapes (sizes,
        // layouts, pruning, quantum pressure) must reproduce every fresh-run
        // outcome bit for bit — the clearing invariant of DESIGN.md §8.
        let comm_free = CommModel::free();
        let comm_slow = CommModel::constant(Duration::from_micros(1_000));
        let asg = Representation::assignment_oriented();
        let seq = Representation::sequence_oriented();
        let big: Vec<Task> = (0..30).map(|i| mk_task(i, 100, 100_000, &[])).collect();
        let tight: Vec<Task> = (0..10).map(|i| mk_task(i, 100, 400, &[])).collect();
        let affine = vec![mk_task(0, 100, 150, &[0, 1]), mk_task(1, 100, 150, &[0])];
        type Scenario<'a> = (
            &'a [Task],
            &'a CommModel,
            &'a Representation,
            usize,
            Pruning,
            bool,
        );
        let scenarios: Vec<Scenario> = vec![
            (&big, &comm_free, &asg, 3, Pruning::default(), false),
            (&tight, &comm_free, &asg, 2, Pruning::default(), true),
            (&affine, &comm_slow, &asg, 2, Pruning::default(), true),
            (&big, &comm_free, &seq, 2, Pruning::default(), false),
            (
                &tight,
                &comm_free,
                &asg,
                2,
                Pruning {
                    depth_bound: Some(4),
                    backtrack_limit: Some(2),
                },
                false,
            ),
            // shrink back down: stale capacity must not leak into a small phase
            (&affine, &comm_free, &asg, 2, Pruning::default(), true),
        ];
        let mut scratch = SearchScratch::new();
        for (tasks, comm, repr, procs, pruning, provenance) in scenarios {
            let initial = vec![Time::ZERO; procs];
            let mut p = params(tasks, comm, &initial, repr, ChildOrder::LoadBalance);
            p.pruning = pruning;
            p.provenance = provenance;
            let fresh = search_schedule(&p, &mut free_meter());
            let reused = search_schedule_with(&p, &mut free_meter(), &mut scratch);
            assert_eq!(fresh.assignments, reused.assignments);
            assert_eq!(fresh.termination, reused.termination);
            assert_eq!(fresh.n_viable, reused.n_viable);
            assert_eq!(fresh.makespan, reused.makespan);
            assert_eq!(fresh.stats, reused.stats);
            assert_eq!(fresh.provenance, reused.provenance);
            scratch.recycle(reused.assignments);
        }
    }

    #[test]
    fn dead_end_when_nothing_fits() {
        // Two tasks, each alone feasible, but not both on one processor.
        let tasks = vec![mk_task(0, 100, 120, &[]), mk_task(1, 100, 120, &[])];
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 1]; // single processor
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::DeadEnd);
        assert_eq!(
            out.assignments.len(),
            1,
            "best partial schedule has one task"
        );
    }

    #[test]
    fn sequence_oriented_dead_ends_where_assignment_oriented_succeeds() {
        // The paper's core conjecture, in miniature. Two processors; both
        // tasks have affinity only with P1 and deadlines too tight to pay
        // the communication cost. Sequence-oriented must give level 0's
        // P0 a task (infeasible) -> immediate dead-end. Assignment-oriented
        // just assigns both tasks to P1.
        let tasks = vec![mk_task(0, 100, 250, &[1]), mk_task(1, 100, 250, &[1])];
        let comm = CommModel::constant(Duration::from_micros(1_000));
        let initial = [Time::ZERO; 2];

        let seq = Representation::sequence_oriented();
        let p = params(&tasks, &comm, &initial, &seq, ChildOrder::EarliestDeadline);
        let out_seq = search_schedule(&p, &mut free_meter());
        assert_eq!(out_seq.termination, Termination::DeadEnd);
        assert!(out_seq.assignments.is_empty());

        let asg = Representation::assignment_oriented();
        let p = params(&tasks, &comm, &initial, &asg, ChildOrder::LoadBalance);
        let out_asg = search_schedule(&p, &mut free_meter());
        assert_eq!(out_asg.termination, Termination::Leaf);
        assert!(out_asg.is_complete(2));
        assert!(out_asg.assignments.iter().all(|a| a.processor.index() == 1));
    }

    #[test]
    fn sequence_oriented_completes_balanced_feasible_case() {
        let tasks: Vec<Task> = (0..4).map(|i| mk_task(i, 100, 100_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::sequence_oriented();
        let initial = [Time::ZERO; 2];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::EarliestDeadline);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::Leaf);
        assert!(out.is_complete(4));
        // round-robin: levels 0,2 on P0 and 1,3 on P1
        assert_eq!(out.processors_used(), 2);
    }

    #[test]
    fn backtracking_recovers_from_greedy_mistake() {
        // Task A (earliest deadline, considered first) fits on either
        // processor; task B only fits on P0 *and only if A is not there*.
        // Greedy load-balance puts A on P0 first (both empty, tie broken by
        // processor index), B then fails everywhere, and the search must
        // backtrack to try A on P1.
        let tasks = vec![
            mk_task(0, 100, 150, &[0, 1]), // A: local everywhere, must start immediately
            mk_task(1, 100, 150, &[0]),    // B: affine P0 only; comm 1000 -> infeasible elsewhere
        ];
        let comm = CommModel::constant(Duration::from_micros(1_000));
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::Leaf);
        assert!(out.is_complete(2));
        assert!(out.stats.backtracks > 0, "needed at least one backtrack");
        assert!(out.stats.undos > 0, "branch switch reverted assignments");
        let a = out.assignments.iter().find(|a| a.task == 0).unwrap();
        let b = out.assignments.iter().find(|a| a.task == 1).unwrap();
        assert_eq!(a.processor.index(), 1);
        assert_eq!(b.processor.index(), 0);
    }

    #[test]
    fn vertex_cap_bounds_unbudgeted_search() {
        // Two processors fit 4 tasks each by the 400us deadline; with 10
        // tasks the last two are unschedulable and force exponential
        // backtracking through every arrangement of the first eight.
        let tasks: Vec<Task> = (0..10).map(|i| mk_task(i, 100, 400, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let mut p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        p.vertex_cap = Some(500);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::QuantumExhausted);
        assert!(out.stats.vertices_generated <= 501);
    }

    #[test]
    fn depth_bound_limits_schedule_length() {
        let tasks: Vec<Task> = (0..10).map(|i| mk_task(i, 100, 100_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let mut p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        p.pruning = Pruning {
            depth_bound: Some(4),
            backtrack_limit: None,
        };
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.assignments.len(), 4, "bounded at depth 4");
        assert!(
            out.stats.depth_prunes > 0,
            "the bound actually refused expansions"
        );
        assert_ne!(out.termination, Termination::Leaf);
        for a in &out.assignments {
            assert!(tasks[a.task].meets_deadline(a.completion));
        }
    }

    #[test]
    fn backtrack_limit_prunes_the_search() {
        // Force heavy backtracking: 10 equal tasks, capacity for 8.
        let tasks: Vec<Task> = (0..10).map(|i| mk_task(i, 100, 400, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let mut p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        p.pruning = Pruning {
            depth_bound: None,
            backtrack_limit: Some(3),
        };
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::Pruned);
        assert!(out.stats.backtracks <= 4);
        assert!(!out.assignments.is_empty(), "best partial still delivered");
    }

    #[test]
    fn zero_backtrack_limit_is_one_dive() {
        let tasks: Vec<Task> = (0..10).map(|i| mk_task(i, 100, 400, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let mut p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        p.pruning = Pruning {
            depth_bound: None,
            backtrack_limit: Some(0),
        };
        let out = search_schedule(&p, &mut free_meter());
        // one straight dive schedules the 8 that fit, then stops at the
        // first backtrack
        assert_eq!(out.termination, Termination::Pruned);
        assert_eq!(out.assignments.len(), 8);
    }

    #[test]
    fn pruning_defaults_do_not_bind() {
        let tasks: Vec<Task> = (0..6).map(|i| mk_task(i, 100, 100_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        assert_eq!(p.pruning, Pruning::default());
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::Leaf);
    }

    #[test]
    fn stats_are_consistent() {
        let tasks: Vec<Task> = (0..5).map(|i| mk_task(i, 100, 100_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(
            out.stats.feasible_children + out.stats.infeasible_children,
            out.stats.vertices_generated
        );
        assert_eq!(out.stats.deepest, 5);
        assert!(out.stats.expansions >= 5);
    }

    #[test]
    fn initial_backlog_delays_completions() {
        let tasks = vec![mk_task(0, 100, 100_000, &[])];
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        // P0 busy until 5_000, P1 until 200
        let initial = [Time::from_micros(5_000), Time::from_micros(200)];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.assignments[0].processor.index(), 1);
        assert_eq!(out.assignments[0].completion, Time::from_micros(300));
    }

    #[test]
    fn leaf_outcome_reports_real_makespan() {
        // Six equal 100us tasks balanced over three processors finish at
        // 200us; the outcome must carry that makespan, not a sentinel.
        let tasks: Vec<Task> = (0..6).map(|i| mk_task(i, 100, 100_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 3];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::Leaf);
        assert_eq!(out.makespan, Time::from_micros(200));
        let max_done = out.assignments.iter().map(|a| a.completion).max().unwrap();
        assert_eq!(out.makespan, max_done);
    }

    #[test]
    fn incremental_dive_avoids_quadratic_replay() {
        // A straight dive: every pop is a child of the vertex just expanded,
        // so the incremental engine applies exactly one assignment per pop
        // (zero undos) while a root replay would redo the whole shared
        // prefix — `replay_avoided` counts those skipped applies.
        let n: usize = 64;
        let tasks: Vec<Task> = (0..n as u64)
            .map(|i| mk_task(i, 100, 100_000, &[]))
            .collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let mut p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        p.pruning = Pruning {
            depth_bound: None,
            backtrack_limit: Some(0),
        };
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.assignments.len(), n);
        assert_eq!(out.stats.undos, 0, "a dive never leaves its own branch");
        // Pops happen at depths 1..=n-1 (the leaf is detected during its
        // parent's expansion); the pop at depth d shares a prefix of d-1.
        let expected = ((n - 1) * (n - 2) / 2) as u64;
        assert_eq!(out.stats.replay_avoided, expected);
    }

    #[test]
    fn incremental_matches_replay_oracle() {
        // In-crate differential smoke test (the seeded 500-instance sweep
        // lives in tests/engine_differential.rs): both engines must agree
        // bit-for-bit on every outcome field, including the stats.
        let comm_free = CommModel::free();
        let comm_slow = CommModel::constant(Duration::from_micros(1_000));
        let asg = Representation::assignment_oriented();
        let seq = Representation::sequence_oriented();
        let scenarios: Vec<(Vec<Task>, &CommModel, &Representation, usize, Pruning)> = vec![
            // backtracking-heavy: 10 tasks, capacity 8
            (
                (0..10).map(|i| mk_task(i, 100, 400, &[])).collect(),
                &comm_free,
                &asg,
                2,
                Pruning::default(),
            ),
            // affinity forces a greedy mistake + recovery
            (
                vec![mk_task(0, 100, 150, &[0, 1]), mk_task(1, 100, 150, &[0])],
                &comm_slow,
                &asg,
                2,
                Pruning::default(),
            ),
            // sequence-oriented with skips
            (
                (0..6).map(|i| mk_task(i, 100, 100_000, &[])).collect(),
                &comm_free,
                &seq,
                3,
                Pruning::default(),
            ),
            // mixed feasibility under a depth bound
            (
                (0..8)
                    .map(|i| mk_task(i, 100, if i % 3 == 0 { 90 } else { 100_000 }, &[]))
                    .collect(),
                &comm_free,
                &asg,
                2,
                Pruning {
                    depth_bound: Some(3),
                    backtrack_limit: None,
                },
            ),
            // backtrack-limited dead-end hunt
            (
                (0..10).map(|i| mk_task(i, 100, 400, &[])).collect(),
                &comm_free,
                &asg,
                2,
                Pruning {
                    depth_bound: None,
                    backtrack_limit: Some(3),
                },
            ),
        ];
        for (tasks, comm, repr, procs, pruning) in scenarios {
            let initial = vec![Time::ZERO; procs];
            let mut p = params(&tasks, comm, &initial, repr, ChildOrder::LoadBalance);
            p.pruning = pruning;
            let inc = search_schedule(&p, &mut free_meter());
            let rep = search_schedule_replay(&p, &mut free_meter());
            assert_eq!(inc.assignments, rep.assignments);
            assert_eq!(inc.termination, rep.termination);
            assert_eq!(inc.n_viable, rep.n_viable);
            assert_eq!(inc.makespan, rep.makespan);
            assert_eq!(inc.stats, rep.stats);
        }
    }

    #[test]
    fn provenance_records_screen_operands_and_placement_costs() {
        // Task 1 is infeasible (p=100 > d=90): screened, with one failed
        // probe per processor; the others are placed, each decision carrying
        // its chosen cost and same-task alternatives.
        let tasks = vec![
            mk_task(0, 100, 150, &[]),
            mk_task(1, 100, 90, &[]),
            mk_task(2, 100, 300, &[]),
        ];
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let mut p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        p.provenance = true;
        let out = search_schedule(&p, &mut free_meter());
        let prov = out.provenance.as_ref().expect("provenance requested");
        assert_eq!(prov.screened.len(), 1);
        assert_eq!(prov.screened[0].task, 1);
        assert_eq!(prov.screened[0].probes.len(), 2);
        for probe in &prov.screened[0].probes {
            assert_eq!(probe.completion, probe.available + probe.demand);
            assert!(!tasks[1].meets_deadline(probe.completion));
        }
        assert_eq!(prov.decisions.len(), out.assignments.len());
        for (d, a) in prov.decisions.iter().zip(&out.assignments) {
            assert_eq!(d.task, a.task);
            assert_eq!(d.processor, a.processor);
            assert_eq!(d.completion, a.completion);
            for r in &d.rejected {
                assert_ne!(r.processor, d.processor);
            }
        }

        // Collection is record-only: schedule and stats are bit-identical
        // with provenance off.
        let p2 = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out2 = search_schedule(&p2, &mut free_meter());
        assert_eq!(out.assignments, out2.assignments);
        assert_eq!(out.stats, out2.stats);
        assert!(out2.provenance.is_none());
    }

    #[test]
    fn tight_deadline_respects_phase_end_bound() {
        // Deadline 500; execution cannot start before the planned phase end
        // folded into initial_finish = 450; p = 100 -> completion 550 > 500:
        // infeasible, so nothing is scheduled.
        let tasks = vec![mk_task(0, 100, 500, &[])];
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::from_micros(450)];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::DeadEnd);
        assert!(out.assignments.is_empty());
    }

    /// Runs the parallel engine at `threads` and asserts the outcome equals
    /// `expected` field by field (plus the meter tallies).
    fn assert_parallel_matches(
        p: &SearchParams<'_>,
        threads: usize,
        mk_meter: &dyn Fn() -> SchedulingMeter,
        expected: &SearchOutcome,
        expected_meter: &SchedulingMeter,
    ) -> ParallelReport {
        let mut meter = mk_meter();
        let mut scratch = SearchScratch::new();
        let mut par = ParallelScratch::new();
        let (out, report) =
            search_schedule_parallel_with_report(p, threads, &mut meter, &mut scratch, &mut par);
        assert_eq!(out.assignments, expected.assignments, "threads={threads}");
        assert_eq!(out.termination, expected.termination, "threads={threads}");
        assert_eq!(out.n_viable, expected.n_viable, "threads={threads}");
        assert_eq!(out.makespan, expected.makespan, "threads={threads}");
        assert_eq!(out.stats, expected.stats, "threads={threads}");
        assert_eq!(out.provenance, expected.provenance, "threads={threads}");
        assert_eq!(meter.vertices(), expected_meter.vertices());
        assert_eq!(meter.consumed(), expected_meter.consumed());
        assert_eq!(meter.exhausted(), expected_meter.exhausted());
        report
    }

    #[test]
    fn parallel_leaf_matches_serial_at_every_width() {
        // Balanced feasible case: every subtree dead-ends or leafs without
        // hitting a budget slice, so the merge must be bit-identical to the
        // serial engine at any width.
        let tasks: Vec<Task> = (0..6).map(|i| mk_task(i, 100, 100_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 3];
        let mut p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        p.provenance = true;
        let mut serial_meter = free_meter();
        let serial = search_schedule(&p, &mut serial_meter);
        assert_eq!(serial.termination, Termination::Leaf);
        for threads in [1, 2, 8] {
            let report = assert_parallel_matches(&p, threads, &free_meter, &serial, &serial_meter);
            assert!(report.split, "three root children should split");
            assert_eq!(report.subtrees, 3);
        }
    }

    #[test]
    fn parallel_backtracking_case_matches_serial() {
        // The greedy-mistake scenario: subtree 0 (A on P0) dead-ends, the
        // serial engine backtracks into subtree 1 (A on P1) and completes.
        // The parallel merge must reproduce the cross-subtree backtrack and
        // undo accounting exactly.
        let tasks = vec![mk_task(0, 100, 150, &[0, 1]), mk_task(1, 100, 150, &[0])];
        let comm = CommModel::constant(Duration::from_micros(1_000));
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let mut p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        p.provenance = true;
        let mut serial_meter = free_meter();
        let serial = search_schedule(&p, &mut serial_meter);
        assert_eq!(serial.termination, Termination::Leaf);
        assert!(serial.stats.backtracks > 0);
        for threads in [1, 2, 8] {
            let report = assert_parallel_matches(&p, threads, &free_meter, &serial, &serial_meter);
            assert!(report.split);
            assert_eq!(report.committed, 2, "leaf in subtree 1 commits both");
            assert_eq!(report.subs[0].termination, Termination::DeadEnd);
            assert_eq!(report.subs[1].termination, Termination::Leaf);
        }
    }

    #[test]
    fn parallel_dead_end_matches_serial() {
        // 5 equal tasks, 2 processors, only 4 fit by the deadline: the
        // exhaustive search dead-ends. Every subtree dead-ends too, so
        // parallel == serial.
        let tasks: Vec<Task> = (0..5).map(|i| mk_task(i, 100, 250, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let mut p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        p.provenance = true;
        let mut serial_meter = free_meter();
        let serial = search_schedule(&p, &mut serial_meter);
        assert_eq!(serial.termination, Termination::DeadEnd);
        for threads in [1, 2, 8] {
            assert_parallel_matches(&p, threads, &free_meter, &serial, &serial_meter);
        }
    }

    #[test]
    fn parallel_is_width_invariant_under_budget_slicing() {
        // A tight meter makes the subtree quantum slices bind, so the
        // outcome legitimately differs from serial — but it must still be
        // bit-identical across widths, and the counters must stay coherent.
        let tasks: Vec<Task> = (0..10).map(|i| mk_task(i, 100, 400, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let mk_meter = || {
            SchedulingMeter::new(
                HostParams::new(Duration::from_micros(1)),
                Duration::from_micros(97),
            )
        };
        let mut meter = mk_meter();
        let mut scratch = SearchScratch::new();
        let mut par = ParallelScratch::new();
        let (base, report) =
            search_schedule_parallel_with_report(&p, 1, &mut meter, &mut scratch, &mut par);
        assert!(report.split);
        assert_eq!(
            meter.vertices(),
            base.stats.vertices_generated,
            "accounting invariant survives the merge"
        );
        for threads in [2, 3, 8, 16] {
            assert_parallel_matches(&p, threads, &mk_meter, &base, &meter);
        }
    }

    #[test]
    fn parallel_reuses_scratches_across_phases() {
        let tasks: Vec<Task> = (0..6).map(|i| mk_task(i, 100, 100_000, &[])).collect();
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 3];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let mut scratch = SearchScratch::new();
        let mut par = ParallelScratch::new();
        let mut meter = free_meter();
        let first = search_schedule_parallel(&p, 4, &mut meter, &mut scratch, &mut par);
        for _ in 0..3 {
            let mut meter = free_meter();
            let again = search_schedule_parallel(&p, 4, &mut meter, &mut scratch, &mut par);
            assert_eq!(again.assignments, first.assignments);
            assert_eq!(again.stats, first.stats);
        }
    }

    #[test]
    fn parallel_trivial_and_degenerate_batches() {
        let comm = CommModel::free();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 2];
        let mut scratch = SearchScratch::new();
        let mut par = ParallelScratch::new();

        // Empty batch: trivial leaf, no split.
        let empty: Vec<Task> = Vec::new();
        let p = params(&empty, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let (out, report) =
            search_schedule_parallel_with_report(&p, 8, &mut free_meter(), &mut scratch, &mut par);
        assert_eq!(out.termination, Termination::Leaf);
        assert!(!report.split);

        // Single task: one subtree, serial fallback path.
        let one = vec![mk_task(0, 100, 100_000, &[])];
        let p = params(&one, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let (out, report) =
            search_schedule_parallel_with_report(&p, 8, &mut free_meter(), &mut scratch, &mut par);
        assert_eq!(out.termination, Termination::Leaf);
        assert!(!report.split, "k < 2 never splits");
        assert_eq!(out.assignments.len(), 1);
    }

    #[test]
    fn one_node_topology_is_bit_identical_to_constant() {
        use rt_task::TopologySpec;
        let c = Duration::from_micros(2_000);
        let tasks: Vec<Task> = (0..12)
            .map(|i| mk_task(i, 200 + i * 37, 40_000, &[(i as usize) % 4]))
            .collect();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 8];

        let flat_comm = CommModel::constant(c);
        let topo_comm = CommModel::hierarchical(TopologySpec::flat(8, c));
        let pf = params(&tasks, &flat_comm, &initial, &repr, ChildOrder::LoadBalance);
        let pt = params(&tasks, &topo_comm, &initial, &repr, ChildOrder::LoadBalance);
        let flat = search_schedule(&pf, &mut free_meter());
        let topo = search_schedule(&pt, &mut free_meter());
        assert_eq!(flat.assignments, topo.assignments);
        assert_eq!(flat.termination, topo.termination);
        assert_eq!(flat.makespan, topo.makespan);
        assert_eq!(
            flat.stats, topo.stats,
            "1-node topology takes the flat path"
        );
        assert_eq!(topo.stats.shard_screens, 0, "no shard screen at 1 node");
    }

    #[test]
    fn sharded_search_prunes_the_candidate_loop() {
        use rt_task::TopologySpec;
        // 16 processors, 4 nodes of 4, fanout 2: each expansion may evaluate
        // at most 8 processors instead of all 16.
        let topo = TopologySpec::new(16, 4, 2, 0, 1_000, 2_000);
        let comm = CommModel::hierarchical(topo);
        let tasks: Vec<Task> = (0..20)
            .map(|i| mk_task(i, 300, 200_000, &[(i as usize) % 16]))
            .collect();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 16];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        assert_eq!(out.termination, Termination::Leaf);
        assert!(out.is_complete(20));
        for a in &out.assignments {
            assert!(tasks[a.task].meets_deadline(a.completion));
        }
        assert!(out.stats.shard_screens > 0, "shard screen ran");
        assert!(out.stats.shards_pruned > 0, "fanout cut pruned shards");
        let per_expansion = out.stats.vertices_generated as f64 / out.stats.expansions as f64;
        assert!(
            per_expansion <= 8.0 + f64::EPSILON,
            "sharded expansion evaluated {per_expansion} candidates on average, \
             expected at most fanout * node size = 8"
        );
    }

    #[test]
    fn sharded_parallel_matches_serial() {
        use rt_task::TopologySpec;
        let topo = TopologySpec::new(12, 3, 1, 0, 1_000, 1_000);
        let comm = CommModel::hierarchical(topo);
        let tasks: Vec<Task> = (0..15)
            .map(|i| mk_task(i, 250 + i * 11, 150_000, &[(i as usize) % 12]))
            .collect();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 12];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let serial = search_schedule(&p, &mut free_meter());
        let mut scratch = SearchScratch::new();
        let mut par = ParallelScratch::new();
        for threads in [1, 4] {
            let out =
                search_schedule_parallel(&p, threads, &mut free_meter(), &mut scratch, &mut par);
            assert_eq!(out.assignments, serial.assignments, "threads={threads}");
            assert_eq!(out.makespan, serial.makespan);
            assert_eq!(out.stats, serial.stats);
        }
    }

    #[test]
    fn sharded_screen_never_rules_out_a_feasible_placement() {
        use rt_task::TopologySpec;
        // Tight deadlines force the screen to discard shards; with fanout
        // covering every node the cut is exact, so the sharded search must
        // schedule at least as many tasks as deadline feasibility allows on
        // its best shard. Compare against the flat hierarchical cost model
        // run without sharding (sequence of a 1-node gate is not available,
        // so compare viability: every task the flat run schedules, the
        // sharded run schedules too).
        let topo = TopologySpec::new(8, 4, 1, 0, 500, 500).with_fanout(4);
        let comm = CommModel::hierarchical(topo);
        let tasks: Vec<Task> = (0..10)
            .map(|i| mk_task(i, 400, 1_200 + i * 400, &[(i as usize) % 8]))
            .collect();
        let repr = Representation::assignment_oriented();
        let initial = [Time::ZERO; 8];
        let p = params(&tasks, &comm, &initial, &repr, ChildOrder::LoadBalance);
        let out = search_schedule(&p, &mut free_meter());
        // Full fanout = no heuristic cut: the screen only drops shards whose
        // *best* processor already misses the deadline, so the search still
        // covers every viable task.
        assert!(out.covers_viable());
        for a in &out.assignments {
            assert!(tasks[a.task].meets_deadline(a.completion));
        }
    }
}
