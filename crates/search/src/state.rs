//! Partial-schedule state along one root-to-vertex path.

use paragon_des::Time;
use rt_task::{CommModel, ProcessorId, ResourceEats, Task};
use serde::{Deserialize, Serialize};

/// One committed task-to-processor assignment (a vertex of `G` on the
/// current path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Index of the task within the batch being scheduled.
    pub task: usize,
    /// The processor it is assigned to.
    pub processor: ProcessorId,
    /// The predicted completion instant `se_lk` (absolute virtual time,
    /// already including the phase-end bound `t_c + RQ_s`).
    pub completion: Time,
}

/// The partial schedule a root-to-vertex path represents.
///
/// Per-processor finish times start from
/// `max(worker availability, planned execution start)`, which folds the
/// paper's feasibility test `t_c + RQ_s(j) + se_lk ≤ d_l` into a single
/// comparison `completion ≤ d_l`: during a phase, `t_c + RQ_s(j)` is the
/// constant `t_s + Q_s(j)` (the planned phase end).
///
/// # Example
///
/// ```
/// use paragon_des::{Duration, Time};
/// use rt_task::{AffinitySet, CommModel, ProcessorId, Task, TaskId};
/// use sched_search::PathState;
///
/// let tasks = vec![Task::builder(TaskId::new(0))
///     .processing_time(Duration::from_millis(2))
///     .deadline(Time::from_millis(30))
///     .affinity(AffinitySet::from_iter([ProcessorId::new(0)]))
///     .build()];
/// let comm = CommModel::constant(Duration::from_millis(1));
/// // both processors become free at t=10ms (planned execution start)
/// let mut state = PathState::new(vec![Time::from_millis(10); 2], tasks.len());
/// let done = state.completion_if(&tasks, &comm, 0, ProcessorId::new(1));
/// assert_eq!(done, Time::from_millis(13)); // 10 + p(2) + C(1)
/// state.apply(&tasks, &comm, 0, ProcessorId::new(1));
/// assert!(state.is_complete());
/// assert_eq!(state.makespan(), Time::from_millis(13));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathState {
    assigned: Vec<bool>,
    n_assigned: usize,
    finish: Vec<Time>,
    assignments: Vec<Assignment>,
    resources: ResourceEats,
    undo_log: Vec<UndoRecord>,
    /// Cumulative shard end indices (`shard s` covers processors
    /// `[ends[s-1], ends[s])`). Empty = unsharded, the flat default.
    shard_ends: Vec<usize>,
    /// Per-shard minimum finish time, maintained incrementally — the SoA
    /// column the shard-first screen aggregates per shard.
    shard_min: Vec<Time>,
}

/// What [`PathState::apply`] displaced, kept so [`PathState::undo`] can
/// revert one assignment in O(1) (plus the resource snapshot for the rare
/// resource-holding task).
///
/// The fields are exactly the state an assignment can clobber: the assigned
/// processor's previous finish time, its shard's previous minimum finish
/// (meaningless — [`Time::ZERO`] — when unsharded), and — only when the task
/// holds resources, since [`ResourceEats::commit`] is a max-merge that
/// cannot be inverted locally — a snapshot of the resource EATs taken before
/// the commit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct UndoRecord {
    prev_finish: Time,
    prev_shard_min: Time,
    prev_resources: Option<ResourceEats>,
}

impl PathState {
    /// Creates the root state (empty schedule).
    ///
    /// `initial_finish[k]` is the instant processor `P_k` could start new
    /// work: `max(busy_until_k, t_s + Q_s)`.
    ///
    /// # Panics
    ///
    /// Panics if there are no processors.
    #[must_use]
    pub fn new(initial_finish: Vec<Time>, n_tasks: usize) -> Self {
        Self::with_resources(initial_finish, n_tasks, ResourceEats::new())
    }

    /// Creates the root state carrying the machine's current resource
    /// earliest-available times (for resource-constrained task systems).
    ///
    /// # Panics
    ///
    /// Panics if there are no processors.
    #[must_use]
    pub fn with_resources(
        initial_finish: Vec<Time>,
        n_tasks: usize,
        resources: ResourceEats,
    ) -> Self {
        assert!(!initial_finish.is_empty(), "PathState needs processors");
        PathState {
            assigned: vec![false; n_tasks],
            n_assigned: 0,
            finish: initial_finish,
            assignments: Vec::new(),
            resources,
            undo_log: Vec::new(),
            shard_ends: Vec::new(),
            shard_min: Vec::new(),
        }
    }

    /// Rewinds this state to a fresh root, reusing every backing buffer.
    ///
    /// Equivalent to `*self = PathState::with_resources(initial_finish.to_vec(),
    /// n_tasks, resources.clone())` but allocation-free once the buffers have
    /// grown to their steady-state capacity — the per-phase reuse path of the
    /// search scratch.
    ///
    /// # Panics
    ///
    /// Panics if there are no processors.
    pub fn reset(&mut self, initial_finish: &[Time], n_tasks: usize, resources: &ResourceEats) {
        assert!(!initial_finish.is_empty(), "PathState needs processors");
        self.assigned.clear();
        self.assigned.resize(n_tasks, false);
        self.n_assigned = 0;
        self.finish.clear();
        self.finish.extend_from_slice(initial_finish);
        self.assignments.clear();
        self.resources.copy_from(resources);
        self.undo_log.clear();
        self.shard_ends.clear();
        self.shard_min.clear();
    }

    /// Partitions the processors into shards for shard-first candidate
    /// generation. `ends[s]` is the exclusive upper processor index of shard
    /// `s`; shard `s` covers `[ends[s-1], ends[s])`. Called after
    /// construction or [`PathState::reset`]; clear-don't-drop, so repeated
    /// configuration is allocation-free at steady state.
    ///
    /// # Panics
    ///
    /// Panics unless `ends` is strictly increasing and covers every
    /// processor exactly.
    pub fn configure_shards(&mut self, ends: &[usize]) {
        assert!(
            ends.last() == Some(&self.finish.len()),
            "shard ends must cover every processor"
        );
        assert!(
            ends.windows(2).all(|w| w[0] < w[1]) && ends[0] > 0,
            "shard ends must be strictly increasing"
        );
        self.shard_ends.clear();
        self.shard_ends.extend_from_slice(ends);
        self.shard_min.clear();
        let mut lo = 0;
        for &hi in ends {
            let min = *self.finish[lo..hi].iter().min().expect("non-empty shard");
            self.shard_min.push(min);
            lo = hi;
        }
    }

    /// Number of configured shards (zero when unsharded).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shard_ends.len()
    }

    /// The minimum processor finish time within shard `s` — the earliest
    /// instant *any* processor of the shard could start new work.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    #[must_use]
    pub fn shard_min(&self, s: usize) -> Time {
        self.shard_min[s]
    }

    /// The earliest start instant `task`'s resource requests allow,
    /// independent of processor choice — the resource half of
    /// [`PathState::completion_if`], exposed so the shard screen can bound
    /// completions without touching per-processor state.
    #[must_use]
    pub fn earliest_resource_start(&self, task: &Task) -> Time {
        self.resources.earliest_start(task.resources())
    }

    /// Which shard hosts processor `p`.
    fn shard_of(&self, p: usize) -> usize {
        self.shard_ends.partition_point(|&e| e <= p)
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.finish.len()
    }

    /// Number of tasks in the batch.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.assigned.len()
    }

    /// Number of tasks assigned so far (the current depth in `G`).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.n_assigned
    }

    /// Whether every batch task is assigned (a leaf of `G` — a complete
    /// schedule).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.n_assigned == self.assigned.len()
    }

    /// Whether batch task `task` is already in the partial schedule.
    #[must_use]
    pub fn is_assigned(&self, task: usize) -> bool {
        self.assigned[task]
    }

    /// Indices of tasks not yet assigned, ascending.
    pub fn unassigned(&self) -> impl Iterator<Item = usize> + '_ {
        self.assigned
            .iter()
            .enumerate()
            .filter(|(_, &a)| !a)
            .map(|(i, _)| i)
    }

    /// The current finish time of processor `p` under this partial schedule
    /// (the paper's `ce_k`, as an absolute instant).
    #[must_use]
    pub fn finish_of(&self, p: ProcessorId) -> Time {
        self.finish[p.index()]
    }

    /// The completion instant task `task` would have if appended to
    /// processor `p` now — without mutating the state.
    #[must_use]
    pub fn completion_if(
        &self,
        tasks: &[Task],
        comm: &CommModel,
        task: usize,
        p: ProcessorId,
    ) -> Time {
        let t = &tasks[task];
        let start = self.finish[p.index()].max(self.resources.earliest_start(t.resources()));
        start + comm.demand(t, p)
    }

    /// Computes the completion instant of every `(task, processor)` candidate
    /// in `raw` against this state in one pass, writing the dense column into
    /// `out` (index-aligned with `raw`). Each entry equals
    /// [`PathState::completion_if`] for the same pair; batching the evaluation
    /// keeps the finish-time loads contiguous and looks the resource
    /// earliest-start up once per run of consecutive same-task candidates
    /// (the assignment-oriented layout emits one task × all processors).
    pub fn completions_into(
        &self,
        tasks: &[Task],
        comm: &CommModel,
        raw: &[(usize, ProcessorId)],
        out: &mut Vec<Time>,
    ) {
        out.clear();
        let mut cached: Option<(usize, Time)> = None;
        for &(task, p) in raw {
            let t = &tasks[task];
            let earliest = match cached {
                Some((ct, v)) if ct == task => v,
                _ => {
                    let v = self.resources.earliest_start(t.resources());
                    cached = Some((task, v));
                    v
                }
            };
            out.push(self.finish[p.index()].max(earliest) + comm.demand(t, p));
        }
    }

    /// Commits assignment `(task → p)` and returns its completion instant.
    ///
    /// # Panics
    ///
    /// Panics if `task` is already assigned.
    pub fn apply(&mut self, tasks: &[Task], comm: &CommModel, task: usize, p: ProcessorId) -> Time {
        assert!(!self.assigned[task], "task index {task} assigned twice");
        let completion = self.completion_if(tasks, comm, task, p);
        let requests = tasks[task].resources();
        let prev_shard_min = if self.shard_ends.is_empty() {
            Time::ZERO
        } else {
            self.shard_min[self.shard_of(p.index())]
        };
        self.undo_log.push(UndoRecord {
            prev_finish: self.finish[p.index()],
            prev_shard_min,
            prev_resources: if requests.is_empty() {
                None
            } else {
                Some(self.resources.clone())
            },
        });
        self.assigned[task] = true;
        self.n_assigned += 1;
        self.finish[p.index()] = completion;
        if !self.shard_ends.is_empty() {
            // The assignment only delays finish[p], so a single O(shard
            // size) rescan of the affected shard keeps the minimum exact.
            let s = self.shard_of(p.index());
            let lo = if s == 0 { 0 } else { self.shard_ends[s - 1] };
            let hi = self.shard_ends[s];
            self.shard_min[s] = *self.finish[lo..hi].iter().min().expect("non-empty shard");
        }
        self.resources.commit(requests, completion);
        self.assignments.push(Assignment {
            task,
            processor: p,
            completion,
        });
        completion
    }

    /// Reverts the most recent [`PathState::apply`], restoring the displaced
    /// processor finish time (and resource EATs, if the task held any) and
    /// returning the removed assignment. O(1) for resource-free tasks.
    ///
    /// Together with `apply` this lets a search move between sibling
    /// branches of the scheduling tree in O(branch distance) instead of
    /// replaying the whole root-to-vertex path.
    ///
    /// # Panics
    ///
    /// Panics if the state is at the root (nothing to undo).
    pub fn undo(&mut self) -> Assignment {
        let a = self.assignments.pop().expect("undo on the root state");
        let u = self.undo_log.pop().expect("undo log tracks assignments");
        self.assigned[a.task] = false;
        self.n_assigned -= 1;
        self.finish[a.processor.index()] = u.prev_finish;
        if !self.shard_ends.is_empty() {
            let s = self.shard_of(a.processor.index());
            self.shard_min[s] = u.prev_shard_min;
        }
        if let Some(resources) = u.prev_resources {
            self.resources = resources;
        }
        a
    }

    /// The total execution time `CE` of this partial schedule: the latest
    /// finish time over all processors (paper, Section 4.4).
    #[must_use]
    pub fn makespan(&self) -> Time {
        *self.finish.iter().max().expect("at least one processor")
    }

    /// The committed assignments in path order.
    #[must_use]
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Consumes the state, returning the assignments.
    #[must_use]
    pub fn into_assignments(self) -> Vec<Assignment> {
        self.assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;
    use rt_task::{AffinitySet, TaskId};

    fn mk_tasks(specs: &[(u64, u64, &[usize])]) -> Vec<Task> {
        specs
            .iter()
            .enumerate()
            .map(|(i, (p_us, d_us, aff))| {
                Task::builder(TaskId::new(i as u64))
                    .processing_time(Duration::from_micros(*p_us))
                    .deadline(Time::from_micros(*d_us))
                    .affinity(
                        aff.iter()
                            .map(|&k| ProcessorId::new(k))
                            .collect::<AffinitySet>(),
                    )
                    .build()
            })
            .collect()
    }

    #[test]
    fn root_state_is_empty() {
        let s = PathState::new(vec![Time::ZERO; 3], 4);
        assert_eq!(s.depth(), 0);
        assert_eq!(s.processors(), 3);
        assert_eq!(s.n_tasks(), 4);
        assert!(!s.is_complete());
        assert_eq!(s.unassigned().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(s.makespan(), Time::ZERO);
    }

    #[test]
    fn apply_updates_finish_and_assigned() {
        let tasks = mk_tasks(&[(100, 10_000, &[0]), (200, 10_000, &[1])]);
        let comm = CommModel::constant(Duration::from_micros(50));
        let mut s = PathState::new(vec![Time::from_micros(1_000); 2], 2);
        let c0 = s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        assert_eq!(c0, Time::from_micros(1_100)); // affine, no C
        let c1 = s.apply(&tasks, &comm, 1, ProcessorId::new(0));
        assert_eq!(c1, Time::from_micros(1_350)); // 1100 + 200 + 50 (non-affine)
        assert!(s.is_complete());
        assert_eq!(s.finish_of(ProcessorId::new(0)), Time::from_micros(1_350));
        assert_eq!(s.finish_of(ProcessorId::new(1)), Time::from_micros(1_000));
        assert_eq!(s.makespan(), Time::from_micros(1_350));
        assert_eq!(s.assignments().len(), 2);
        assert!(s.is_assigned(0) && s.is_assigned(1));
    }

    #[test]
    fn completion_if_does_not_mutate() {
        let tasks = mk_tasks(&[(100, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let s = PathState::new(vec![Time::ZERO; 2], 1);
        let c = s.completion_if(&tasks, &comm, 0, ProcessorId::new(1));
        assert_eq!(c, Time::from_micros(110));
        assert_eq!(s.depth(), 0);
        assert_eq!(s.finish_of(ProcessorId::new(1)), Time::ZERO);
    }

    #[test]
    fn heterogeneous_initial_finish_respected() {
        let tasks = mk_tasks(&[(100, 10_000, &[1])]);
        let comm = CommModel::free();
        let s = PathState::new(vec![Time::from_micros(500), Time::from_micros(2_000)], 1);
        assert_eq!(
            s.completion_if(&tasks, &comm, 0, ProcessorId::new(1)),
            Time::from_micros(2_100)
        );
        assert_eq!(s.makespan(), Time::from_micros(2_000));
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn double_apply_panics() {
        let tasks = mk_tasks(&[(100, 10_000, &[])]);
        let comm = CommModel::free();
        let mut s = PathState::new(vec![Time::ZERO], 1);
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
    }

    #[test]
    fn undo_reverts_apply_exactly() {
        let tasks = mk_tasks(&[(100, 10_000, &[0]), (200, 10_000, &[1])]);
        let comm = CommModel::constant(Duration::from_micros(50));
        let mut s = PathState::new(vec![Time::from_micros(1_000); 2], 2);
        let before = s.clone();
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        s.apply(&tasks, &comm, 1, ProcessorId::new(0));
        let a1 = s.undo();
        assert_eq!(a1.task, 1);
        assert_eq!(s.depth(), 1);
        assert!(!s.is_assigned(1));
        assert_eq!(s.finish_of(ProcessorId::new(0)), Time::from_micros(1_100));
        let a0 = s.undo();
        assert_eq!(a0.task, 0);
        assert_eq!(s, before, "undo restores the exact prior state");
    }

    #[test]
    fn undo_restores_resource_eats() {
        use rt_task::ResourceRequest;
        let tasks = vec![
            Task::builder(TaskId::new(0))
                .processing_time(Duration::from_micros(100))
                .deadline(Time::from_micros(10_000))
                .resources(vec![ResourceRequest::exclusive(0)])
                .build(),
            Task::builder(TaskId::new(1))
                .processing_time(Duration::from_micros(100))
                .deadline(Time::from_micros(10_000))
                .resources(vec![ResourceRequest::shared(0)])
                .build(),
        ];
        let comm = CommModel::free();
        let mut s = PathState::new(vec![Time::ZERO; 2], 2);
        let before = s.clone();
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        // task 1 must wait for the exclusive holder even on another processor
        assert_eq!(
            s.completion_if(&tasks, &comm, 1, ProcessorId::new(1)),
            Time::from_micros(200)
        );
        s.undo();
        assert_eq!(s, before);
        // and the resource wait is gone again
        assert_eq!(
            s.completion_if(&tasks, &comm, 1, ProcessorId::new(1)),
            Time::from_micros(100)
        );
    }

    #[test]
    fn interleaved_apply_undo_matches_straight_replay() {
        let tasks = mk_tasks(&[(100, 10_000, &[]), (150, 10_000, &[]), (70, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let mut zigzag = PathState::new(vec![Time::ZERO; 2], 3);
        zigzag.apply(&tasks, &comm, 0, ProcessorId::new(0));
        zigzag.apply(&tasks, &comm, 1, ProcessorId::new(1));
        zigzag.undo();
        zigzag.apply(&tasks, &comm, 2, ProcessorId::new(0));
        zigzag.undo();
        zigzag.undo();
        zigzag.apply(&tasks, &comm, 0, ProcessorId::new(0));
        zigzag.apply(&tasks, &comm, 2, ProcessorId::new(1));

        let mut straight = PathState::new(vec![Time::ZERO; 2], 3);
        straight.apply(&tasks, &comm, 0, ProcessorId::new(0));
        straight.apply(&tasks, &comm, 2, ProcessorId::new(1));
        assert_eq!(zigzag, straight);
    }

    #[test]
    fn reset_matches_fresh_construction() {
        use rt_task::ResourceRequest;
        let tasks = mk_tasks(&[(100, 10_000, &[]), (150, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let mut s = PathState::new(vec![Time::ZERO; 2], 2);
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        s.apply(&tasks, &comm, 1, ProcessorId::new(1));

        // reset to a different root: other finishes, other task count,
        // non-trivial resource EATs
        let finishes = [Time::from_micros(300), Time::from_micros(700)];
        let mut eats = ResourceEats::new();
        eats.commit(&[ResourceRequest::exclusive(1)], Time::from_micros(42));
        s.reset(&finishes, 3, &eats);
        let fresh = PathState::with_resources(finishes.to_vec(), 3, eats.clone());
        assert_eq!(s, fresh, "reset is indistinguishable from fresh");
        assert_eq!(s.depth(), 0);
        assert_eq!(s.makespan(), Time::from_micros(700));
    }

    #[test]
    #[should_panic(expected = "PathState needs processors")]
    fn reset_without_processors_panics() {
        let mut s = PathState::new(vec![Time::ZERO], 1);
        s.reset(&[], 1, &ResourceEats::new());
    }

    #[test]
    #[should_panic(expected = "undo on the root state")]
    fn undo_at_root_panics() {
        let mut s = PathState::new(vec![Time::ZERO], 1);
        s.undo();
    }

    #[test]
    fn shard_min_tracks_apply_and_undo() {
        let tasks = mk_tasks(&[(100, 10_000, &[]), (150, 10_000, &[]), (70, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let finishes: Vec<Time> = [10u64, 40, 30, 20].map(Time::from_micros).into();
        let mut s = PathState::new(finishes, 3);
        s.configure_shards(&[2, 4]);
        assert_eq!(s.shards(), 2);
        assert_eq!(s.shard_min(0), Time::from_micros(10));
        assert_eq!(s.shard_min(1), Time::from_micros(20));

        let before = s.clone();
        s.apply(&tasks, &comm, 0, ProcessorId::new(0)); // P0: 10 -> 120
        assert_eq!(s.shard_min(0), Time::from_micros(40));
        s.apply(&tasks, &comm, 1, ProcessorId::new(3)); // P3: 20 -> 180
        assert_eq!(s.shard_min(1), Time::from_micros(30));
        s.apply(&tasks, &comm, 2, ProcessorId::new(1)); // P1: 40 -> 120
        assert_eq!(s.shard_min(0), Time::from_micros(120));

        s.undo();
        s.undo();
        s.undo();
        assert_eq!(s, before, "undo restores the shard minima exactly");
    }

    #[test]
    fn reset_clears_shard_configuration() {
        let mut s = PathState::new(vec![Time::ZERO; 4], 2);
        s.configure_shards(&[2, 4]);
        s.reset(&[Time::ZERO; 4], 2, &ResourceEats::new());
        assert_eq!(s.shards(), 0, "reset returns to the unsharded default");
        assert_eq!(s, PathState::new(vec![Time::ZERO; 4], 2));
    }

    #[test]
    #[should_panic(expected = "cover every processor")]
    fn shard_ends_must_cover_processors() {
        let mut s = PathState::new(vec![Time::ZERO; 4], 1);
        s.configure_shards(&[2, 3]);
    }

    #[test]
    fn into_assignments_returns_path_order() {
        let tasks = mk_tasks(&[(1, 1_000, &[]), (1, 1_000, &[])]);
        let comm = CommModel::free();
        let mut s = PathState::new(vec![Time::ZERO], 2);
        s.apply(&tasks, &comm, 1, ProcessorId::new(0));
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        let asg = s.into_assignments();
        assert_eq!(asg[0].task, 1);
        assert_eq!(asg[1].task, 0);
    }
}
