//! Partial-schedule state along one root-to-vertex path.

use paragon_des::{Duration, Time};
use rt_task::{CommModel, ProcessorId, ResourceEats, Task};
use serde::{Deserialize, Serialize};

/// One committed task-to-processor assignment (a vertex of `G` on the
/// current path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Index of the task within the batch being scheduled.
    pub task: usize,
    /// The processor it is assigned to.
    pub processor: ProcessorId,
    /// The predicted completion instant `se_lk` (absolute virtual time,
    /// already including the phase-end bound `t_c + RQ_s`).
    pub completion: Time,
}

/// The partial schedule a root-to-vertex path represents.
///
/// Per-processor finish times start from
/// `max(worker availability, planned execution start)`, which folds the
/// paper's feasibility test `t_c + RQ_s(j) + se_lk ≤ d_l` into a single
/// comparison `completion ≤ d_l`: during a phase, `t_c + RQ_s(j)` is the
/// constant `t_s + Q_s(j)` (the planned phase end).
///
/// # Example
///
/// ```
/// use paragon_des::{Duration, Time};
/// use rt_task::{AffinitySet, CommModel, ProcessorId, Task, TaskId};
/// use sched_search::PathState;
///
/// let tasks = vec![Task::builder(TaskId::new(0))
///     .processing_time(Duration::from_millis(2))
///     .deadline(Time::from_millis(30))
///     .affinity(AffinitySet::from_iter([ProcessorId::new(0)]))
///     .build()];
/// let comm = CommModel::constant(Duration::from_millis(1));
/// // both processors become free at t=10ms (planned execution start)
/// let mut state = PathState::new(vec![Time::from_millis(10); 2], tasks.len());
/// let done = state.completion_if(&tasks, &comm, 0, ProcessorId::new(1));
/// assert_eq!(done, Time::from_millis(13)); // 10 + p(2) + C(1)
/// state.apply(&tasks, &comm, 0, ProcessorId::new(1));
/// assert!(state.is_complete());
/// assert_eq!(state.makespan(), Time::from_millis(13));
/// ```
#[derive(Debug, Clone)]
pub struct PathState {
    assigned: Vec<bool>,
    n_assigned: usize,
    finish: Vec<Time>,
    assignments: Vec<Assignment>,
    resources: ResourceEats,
    undo_log: Vec<UndoRecord>,
    /// Cumulative shard end indices (`shard s` covers processors
    /// `[ends[s-1], ends[s])`). Empty = unsharded, the flat default.
    shard_ends: Vec<usize>,
    /// Per-shard minimum finish time, maintained incrementally — the SoA
    /// column the shard-first screen aggregates per shard.
    shard_min: Vec<Time>,
    /// Latest finish time over all processors, maintained as a running max
    /// by `apply` (appending only delays a processor) and restored from the
    /// undo log by `undo` — `makespan()` in O(1) instead of an O(P) scan.
    makespan: Time,
    /// Touched-processor journal: every `apply` and `undo` appends the index
    /// of the processor whose finish time it changed. Candidate columns
    /// record the journal position they were filled at and replay only the
    /// suffix on reuse — the O(Δ) dirty-tracking that replaces the O(P)
    /// per-vertex refill.
    journal: Vec<u32>,
    /// Phase generation; bumped by `reset` so columns filled in an earlier
    /// phase are recognised as stale without being dropped.
    col_gen: u64,
    /// Bumped whenever the resource EATs change (`apply`/`undo` of a
    /// resource-holding task). Columns cache the task's resource
    /// earliest-start and revalidate it lazily against this epoch.
    res_epoch: u64,
    /// Per-task persistent candidate columns (`comp`/`ce_k`), indexed by
    /// batch task index. Grows monotonically; never dropped between phases.
    columns: Vec<TaskColumn>,
    /// Iterative segment min-tree over `finish`, maintained only when
    /// sharded: leaves `[len/2, len/2 + P)` mirror `finish`, padded to a
    /// power of two with `Time::MAX`. An `apply`/`undo` updates one
    /// root-to-leaf path (O(log P)) and the touched shard's minimum is a
    /// range-min query, replacing the O(shard size) rescan.
    tree: Vec<Time>,
}

/// One task's persistent candidate column: the completion instant the task
/// would have on every processor (`max(finish_k, earliest) + demand_k`),
/// maintained incrementally across vertices of the same phase.
///
/// Validity is tracked per *segment* (the shard partition when sharded, one
/// segment covering all processors otherwise): each segment remembers the
/// phase generation and journal position it was last synchronised at, so the
/// shard-first screen only ever pays for the segments it actually
/// enumerates.
#[derive(Debug, Clone, Default)]
struct TaskColumn {
    /// State-independent demand `p_l + c_lk` per processor — valid wherever
    /// the owning segment's `gen` is current.
    demand: Vec<Duration>,
    /// Completion instants, index-aligned with `finish`.
    comp: Vec<Time>,
    /// The task's resource earliest-start the `comp` entries were computed
    /// against.
    earliest: Time,
    /// Resource epoch `earliest` was taken at.
    res_epoch: u64,
    /// Phase generation `earliest` was taken at.
    head_gen: u64,
    /// Per-segment sync state.
    segs: Vec<SegState>,
}

/// Synchronisation point of one column segment: the phase generation it was
/// cold-filled in and the journal length it has replayed up to.
#[derive(Debug, Clone, Copy, Default)]
struct SegState {
    gen: u64,
    journal_pos: usize,
}

/// Semantic equality: two states are equal when they represent the same
/// partial schedule. The incremental caches (journal, candidate columns,
/// segment min-tree, generation counters) are deliberately excluded — they
/// are derived performance state whose shape depends on the access history,
/// not on the schedule.
impl PartialEq for PathState {
    fn eq(&self, other: &Self) -> bool {
        self.assigned == other.assigned
            && self.n_assigned == other.n_assigned
            && self.finish == other.finish
            && self.assignments == other.assignments
            && self.resources == other.resources
            && self.undo_log == other.undo_log
            && self.shard_ends == other.shard_ends
            && self.shard_min == other.shard_min
            && self.makespan == other.makespan
    }
}

impl Eq for PathState {}

/// What [`PathState::apply`] displaced, kept so [`PathState::undo`] can
/// revert one assignment in O(1) (plus the resource snapshot for the rare
/// resource-holding task).
///
/// The fields are exactly the state an assignment can clobber: the assigned
/// processor's previous finish time, its shard's previous minimum finish
/// (meaningless — [`Time::ZERO`] — when unsharded), the previous makespan
/// (the running max cannot be inverted locally), and — only when the task
/// holds resources, since [`ResourceEats::commit`] is a max-merge that
/// cannot be inverted locally — a snapshot of the resource EATs taken before
/// the commit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct UndoRecord {
    prev_finish: Time,
    prev_shard_min: Time,
    prev_makespan: Time,
    prev_resources: Option<ResourceEats>,
}

impl PathState {
    /// Creates the root state (empty schedule).
    ///
    /// `initial_finish[k]` is the instant processor `P_k` could start new
    /// work: `max(busy_until_k, t_s + Q_s)`.
    ///
    /// # Panics
    ///
    /// Panics if there are no processors.
    #[must_use]
    pub fn new(initial_finish: Vec<Time>, n_tasks: usize) -> Self {
        Self::with_resources(initial_finish, n_tasks, ResourceEats::new())
    }

    /// Creates the root state carrying the machine's current resource
    /// earliest-available times (for resource-constrained task systems).
    ///
    /// # Panics
    ///
    /// Panics if there are no processors.
    #[must_use]
    pub fn with_resources(
        initial_finish: Vec<Time>,
        n_tasks: usize,
        resources: ResourceEats,
    ) -> Self {
        assert!(!initial_finish.is_empty(), "PathState needs processors");
        let makespan = *initial_finish.iter().max().expect("non-empty");
        PathState {
            assigned: vec![false; n_tasks],
            n_assigned: 0,
            finish: initial_finish,
            assignments: Vec::new(),
            resources,
            undo_log: Vec::new(),
            shard_ends: Vec::new(),
            shard_min: Vec::new(),
            makespan,
            journal: Vec::new(),
            col_gen: 1,
            res_epoch: 0,
            columns: Vec::new(),
            tree: Vec::new(),
        }
    }

    /// Rewinds this state to a fresh root, reusing every backing buffer.
    ///
    /// Equivalent to `*self = PathState::with_resources(initial_finish.to_vec(),
    /// n_tasks, resources.clone())` but allocation-free once the buffers have
    /// grown to their steady-state capacity — the per-phase reuse path of the
    /// search scratch.
    ///
    /// # Panics
    ///
    /// Panics if there are no processors.
    pub fn reset(&mut self, initial_finish: &[Time], n_tasks: usize, resources: &ResourceEats) {
        assert!(!initial_finish.is_empty(), "PathState needs processors");
        self.assigned.clear();
        self.assigned.resize(n_tasks, false);
        self.n_assigned = 0;
        self.finish.clear();
        self.finish.extend_from_slice(initial_finish);
        self.assignments.clear();
        self.resources.copy_from(resources);
        self.undo_log.clear();
        self.shard_ends.clear();
        self.shard_min.clear();
        self.makespan = *initial_finish.iter().max().expect("non-empty");
        self.journal.clear();
        // Stale columns from the previous phase stay allocated (their
        // buffers are the cache) but their generation no longer matches, so
        // the next use cold-fills in place.
        self.col_gen += 1;
        self.res_epoch = 0;
        self.tree.clear();
    }

    /// Partitions the processors into shards for shard-first candidate
    /// generation. `ends[s]` is the exclusive upper processor index of shard
    /// `s`; shard `s` covers `[ends[s-1], ends[s])`. Called after
    /// construction or [`PathState::reset`]; clear-don't-drop, so repeated
    /// configuration is allocation-free at steady state.
    ///
    /// # Panics
    ///
    /// Panics unless `ends` is strictly increasing and covers every
    /// processor exactly.
    pub fn configure_shards(&mut self, ends: &[usize]) {
        assert!(
            ends.last() == Some(&self.finish.len()),
            "shard ends must cover every processor"
        );
        assert!(
            ends.windows(2).all(|w| w[0] < w[1]) && ends[0] > 0,
            "shard ends must be strictly increasing"
        );
        self.shard_ends.clear();
        self.shard_ends.extend_from_slice(ends);
        self.shard_min.clear();
        let mut lo = 0;
        for &hi in ends {
            let min = *self.finish[lo..hi].iter().min().expect("non-empty shard");
            self.shard_min.push(min);
            lo = hi;
        }
        // Build the segment min-tree over the finish column: leaves padded
        // to a power of two with Time::MAX so internal nodes need no bounds
        // checks. Clear-don't-drop keeps repeated configuration
        // allocation-free at steady state.
        let p = self.finish.len();
        let size = p.next_power_of_two();
        self.tree.clear();
        self.tree.resize(2 * size, Time::MAX);
        self.tree[size..size + p].copy_from_slice(&self.finish);
        for i in (1..size).rev() {
            self.tree[i] = self.tree[2 * i].min(self.tree[2 * i + 1]);
        }
    }

    /// Re-anchors leaf `p` of the min-tree at `finish[p]` and recomputes its
    /// root-to-leaf path. O(log P).
    fn tree_update(&mut self, p: usize) {
        let size = self.tree.len() / 2;
        let mut i = size + p;
        self.tree[i] = self.finish[p];
        while i > 1 {
            i /= 2;
            self.tree[i] = self.tree[2 * i].min(self.tree[2 * i + 1]);
        }
    }

    /// Minimum of `finish[lo..hi]` via the min-tree. O(log P).
    fn tree_range_min(&self, lo: usize, hi: usize) -> Time {
        let size = self.tree.len() / 2;
        let (mut lo, mut hi) = (lo + size, hi + size);
        let mut m = Time::MAX;
        while lo < hi {
            if lo & 1 == 1 {
                m = m.min(self.tree[lo]);
                lo += 1;
            }
            if hi & 1 == 1 {
                hi -= 1;
                m = m.min(self.tree[hi]);
            }
            lo /= 2;
            hi /= 2;
        }
        m
    }

    /// Number of configured shards (zero when unsharded).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shard_ends.len()
    }

    /// The minimum processor finish time within shard `s` — the earliest
    /// instant *any* processor of the shard could start new work.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a configured shard.
    #[must_use]
    pub fn shard_min(&self, s: usize) -> Time {
        self.shard_min[s]
    }

    /// The earliest start instant `task`'s resource requests allow,
    /// independent of processor choice — the resource half of
    /// [`PathState::completion_if`], exposed so the shard screen can bound
    /// completions without touching per-processor state.
    #[must_use]
    pub fn earliest_resource_start(&self, task: &Task) -> Time {
        self.resources.earliest_start(task.resources())
    }

    /// Which shard hosts processor `p`.
    fn shard_of(&self, p: usize) -> usize {
        self.shard_ends.partition_point(|&e| e <= p)
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.finish.len()
    }

    /// Number of tasks in the batch.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.assigned.len()
    }

    /// Number of tasks assigned so far (the current depth in `G`).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.n_assigned
    }

    /// Whether every batch task is assigned (a leaf of `G` — a complete
    /// schedule).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.n_assigned == self.assigned.len()
    }

    /// Whether batch task `task` is already in the partial schedule.
    #[must_use]
    pub fn is_assigned(&self, task: usize) -> bool {
        self.assigned[task]
    }

    /// Indices of tasks not yet assigned, ascending.
    pub fn unassigned(&self) -> impl Iterator<Item = usize> + '_ {
        self.assigned
            .iter()
            .enumerate()
            .filter(|(_, &a)| !a)
            .map(|(i, _)| i)
    }

    /// The current finish time of processor `p` under this partial schedule
    /// (the paper's `ce_k`, as an absolute instant).
    #[must_use]
    pub fn finish_of(&self, p: ProcessorId) -> Time {
        self.finish[p.index()]
    }

    /// The completion instant task `task` would have if appended to
    /// processor `p` now — without mutating the state.
    #[must_use]
    pub fn completion_if(
        &self,
        tasks: &[Task],
        comm: &CommModel,
        task: usize,
        p: ProcessorId,
    ) -> Time {
        let t = &tasks[task];
        let start = self.finish[p.index()].max(self.resources.earliest_start(t.resources()));
        start + comm.demand(t, p)
    }

    /// Computes the completion instant of every `(task, processor)` candidate
    /// in `raw` against this state in one pass, writing the dense column into
    /// `out` (index-aligned with `raw`). Each entry equals
    /// [`PathState::completion_if`] for the same pair; batching the evaluation
    /// keeps the finish-time loads contiguous and looks the resource
    /// earliest-start up once per run of consecutive same-task candidates
    /// (the assignment-oriented layout emits one task × all processors).
    pub fn completions_into(
        &self,
        tasks: &[Task],
        comm: &CommModel,
        raw: &[(usize, ProcessorId)],
        out: &mut Vec<Time>,
    ) {
        out.clear();
        let mut cached: Option<(usize, Time)> = None;
        for &(task, p) in raw {
            let t = &tasks[task];
            let earliest = match cached {
                Some((ct, v)) if ct == task => v,
                _ => {
                    let v = self.resources.earliest_start(t.resources());
                    cached = Some((task, v));
                    v
                }
            };
            out.push(self.finish[p.index()].max(earliest) + comm.demand(t, p));
        }
    }

    /// Number of column segments: the shard partition when sharded, one
    /// segment covering every processor otherwise.
    fn n_segments(&self) -> usize {
        self.shard_ends.len().max(1)
    }

    /// Processor range `[lo, hi)` covered by column segment `seg`.
    fn seg_range(&self, seg: usize) -> (usize, usize) {
        if self.shard_ends.is_empty() {
            (0, self.finish.len())
        } else {
            let lo = if seg == 0 {
                0
            } else {
                self.shard_ends[seg - 1]
            };
            (lo, self.shard_ends[seg])
        }
    }

    /// Brings segment `seg` of `task`'s candidate column up to date with the
    /// current state, in O(Δ) where Δ is the number of journal entries since
    /// the segment last synchronised (O(segment size) on the first touch per
    /// phase, or when Δ would exceed a straight refill).
    ///
    /// Each entry of the synchronised range equals
    /// [`PathState::completion_if`] for the same `(task, processor)` pair —
    /// bit-for-bit, since both compute `max(finish_k, earliest) + demand_k`
    /// from the same operands.
    pub fn ensure_candidate_segment(
        &mut self,
        tasks: &[Task],
        comm: &CommModel,
        task: usize,
        seg: usize,
    ) {
        let n_segs = self.n_segments();
        let (lo, hi) = self.seg_range(seg);
        let p_count = self.finish.len();
        if self.columns.len() <= task {
            self.columns.resize_with(task + 1, TaskColumn::default);
        }
        let t = &tasks[task];
        let col = &mut self.columns[task];
        // Reshape for this phase's geometry if it changed (no-op — and no
        // allocation — once capacities reach their steady state).
        if col.comp.len() != p_count || col.segs.len() != n_segs {
            col.comp.clear();
            col.comp.resize(p_count, Time::ZERO);
            col.demand.clear();
            col.demand.resize(p_count, Duration::ZERO);
            col.segs.clear();
            col.segs.resize(n_segs, SegState::default());
            col.head_gen = 0;
        }
        // Revalidate the cached resource earliest-start. A changed value
        // shifts every completion of the column, so it invalidates all
        // segments; an unchanged one costs a single epoch compare on the
        // (overwhelmingly common) resource-free path.
        if col.head_gen != self.col_gen {
            col.earliest = self.resources.earliest_start(t.resources());
            col.res_epoch = self.res_epoch;
            col.head_gen = self.col_gen;
        } else if col.res_epoch != self.res_epoch {
            let e = self.resources.earliest_start(t.resources());
            col.res_epoch = self.res_epoch;
            if e != col.earliest {
                col.earliest = e;
                for s in &mut col.segs {
                    s.gen = 0; // col_gen starts at 1, so 0 is always stale
                }
            }
        }
        let sstate = col.segs[seg];
        if sstate.gen != self.col_gen {
            // Cold fill: compute demand and completion for the whole range.
            for p in lo..hi {
                let d = comm.demand(t, ProcessorId::new(p));
                col.demand[p] = d;
                col.comp[p] = self.finish[p].max(col.earliest) + d;
            }
            col.segs[seg] = SegState {
                gen: self.col_gen,
                journal_pos: self.journal.len(),
            };
        } else {
            let delta = &self.journal[sstate.journal_pos..];
            if delta.len() >= hi - lo {
                // The journal suffix outweighs a straight refill; demand is
                // already cached, so recompute the range directly.
                for p in lo..hi {
                    col.comp[p] = self.finish[p].max(col.earliest) + col.demand[p];
                }
            } else {
                // O(Δ) replay: patch only the processors touched since the
                // segment last synchronised.
                for &p in delta {
                    let p = p as usize;
                    if p >= lo && p < hi {
                        col.comp[p] = self.finish[p].max(col.earliest) + col.demand[p];
                    }
                }
            }
            col.segs[seg].journal_pos = self.journal.len();
        }
    }

    /// Brings every segment of `task`'s candidate column up to date and
    /// returns it: `column[k]` is the completion instant the task would have
    /// on processor `k` (equals [`PathState::completion_if`] entry-wise).
    pub fn candidate_column(&mut self, tasks: &[Task], comm: &CommModel, task: usize) -> &[Time] {
        for seg in 0..self.n_segments() {
            self.ensure_candidate_segment(tasks, comm, task, seg);
        }
        &self.columns[task].comp
    }

    /// Read-only view of `task`'s candidate column. Only the segments
    /// brought up to date by [`PathState::ensure_candidate_segment`] (or
    /// [`PathState::candidate_column`]) since the last `apply`/`undo` are
    /// meaningful.
    ///
    /// # Panics
    ///
    /// Panics if the column was never filled.
    #[must_use]
    pub fn comp_column(&self, task: usize) -> &[Time] {
        &self.columns[task].comp
    }

    /// Commits assignment `(task → p)` and returns its completion instant.
    ///
    /// # Panics
    ///
    /// Panics if `task` is already assigned.
    pub fn apply(&mut self, tasks: &[Task], comm: &CommModel, task: usize, p: ProcessorId) -> Time {
        assert!(!self.assigned[task], "task index {task} assigned twice");
        let completion = self.completion_if(tasks, comm, task, p);
        let requests = tasks[task].resources();
        let prev_shard_min = if self.shard_ends.is_empty() {
            Time::ZERO
        } else {
            self.shard_min[self.shard_of(p.index())]
        };
        self.undo_log.push(UndoRecord {
            prev_finish: self.finish[p.index()],
            prev_shard_min,
            prev_makespan: self.makespan,
            prev_resources: if requests.is_empty() {
                None
            } else {
                Some(self.resources.clone())
            },
        });
        self.assigned[task] = true;
        self.n_assigned += 1;
        self.finish[p.index()] = completion;
        // Appending only delays finish[p] (completion ≥ previous finish), so
        // the makespan is a monotone running max.
        self.makespan = self.makespan.max(completion);
        self.journal.push(p.index() as u32);
        if !self.shard_ends.is_empty() {
            // One O(log P) leaf update plus an O(log P) range-min over the
            // affected shard keeps the minimum exact.
            self.tree_update(p.index());
            let s = self.shard_of(p.index());
            let lo = if s == 0 { 0 } else { self.shard_ends[s - 1] };
            let hi = self.shard_ends[s];
            self.shard_min[s] = self.tree_range_min(lo, hi);
        }
        if !requests.is_empty() {
            self.res_epoch += 1;
        }
        self.resources.commit(requests, completion);
        self.assignments.push(Assignment {
            task,
            processor: p,
            completion,
        });
        completion
    }

    /// Reverts the most recent [`PathState::apply`], restoring the displaced
    /// processor finish time (and resource EATs, if the task held any) and
    /// returning the removed assignment. O(1) for resource-free tasks.
    ///
    /// Together with `apply` this lets a search move between sibling
    /// branches of the scheduling tree in O(branch distance) instead of
    /// replaying the whole root-to-vertex path.
    ///
    /// # Panics
    ///
    /// Panics if the state is at the root (nothing to undo).
    pub fn undo(&mut self) -> Assignment {
        let a = self.assignments.pop().expect("undo on the root state");
        let u = self.undo_log.pop().expect("undo log tracks assignments");
        self.assigned[a.task] = false;
        self.n_assigned -= 1;
        self.finish[a.processor.index()] = u.prev_finish;
        self.makespan = u.prev_makespan;
        self.journal.push(a.processor.index() as u32);
        if !self.shard_ends.is_empty() {
            self.tree_update(a.processor.index());
            let s = self.shard_of(a.processor.index());
            self.shard_min[s] = u.prev_shard_min;
        }
        if let Some(resources) = u.prev_resources {
            self.resources = resources;
            self.res_epoch += 1;
        }
        a
    }

    /// The total execution time `CE` of this partial schedule: the latest
    /// finish time over all processors (paper, Section 4.4). O(1) — the
    /// value is maintained incrementally by `apply`/`undo`.
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// The committed assignments in path order.
    #[must_use]
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Consumes the state, returning the assignments.
    #[must_use]
    pub fn into_assignments(self) -> Vec<Assignment> {
        self.assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;
    use rt_task::{AffinitySet, TaskId};

    fn mk_tasks(specs: &[(u64, u64, &[usize])]) -> Vec<Task> {
        specs
            .iter()
            .enumerate()
            .map(|(i, (p_us, d_us, aff))| {
                Task::builder(TaskId::new(i as u64))
                    .processing_time(Duration::from_micros(*p_us))
                    .deadline(Time::from_micros(*d_us))
                    .affinity(
                        aff.iter()
                            .map(|&k| ProcessorId::new(k))
                            .collect::<AffinitySet>(),
                    )
                    .build()
            })
            .collect()
    }

    #[test]
    fn root_state_is_empty() {
        let s = PathState::new(vec![Time::ZERO; 3], 4);
        assert_eq!(s.depth(), 0);
        assert_eq!(s.processors(), 3);
        assert_eq!(s.n_tasks(), 4);
        assert!(!s.is_complete());
        assert_eq!(s.unassigned().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(s.makespan(), Time::ZERO);
    }

    #[test]
    fn apply_updates_finish_and_assigned() {
        let tasks = mk_tasks(&[(100, 10_000, &[0]), (200, 10_000, &[1])]);
        let comm = CommModel::constant(Duration::from_micros(50));
        let mut s = PathState::new(vec![Time::from_micros(1_000); 2], 2);
        let c0 = s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        assert_eq!(c0, Time::from_micros(1_100)); // affine, no C
        let c1 = s.apply(&tasks, &comm, 1, ProcessorId::new(0));
        assert_eq!(c1, Time::from_micros(1_350)); // 1100 + 200 + 50 (non-affine)
        assert!(s.is_complete());
        assert_eq!(s.finish_of(ProcessorId::new(0)), Time::from_micros(1_350));
        assert_eq!(s.finish_of(ProcessorId::new(1)), Time::from_micros(1_000));
        assert_eq!(s.makespan(), Time::from_micros(1_350));
        assert_eq!(s.assignments().len(), 2);
        assert!(s.is_assigned(0) && s.is_assigned(1));
    }

    #[test]
    fn completion_if_does_not_mutate() {
        let tasks = mk_tasks(&[(100, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let s = PathState::new(vec![Time::ZERO; 2], 1);
        let c = s.completion_if(&tasks, &comm, 0, ProcessorId::new(1));
        assert_eq!(c, Time::from_micros(110));
        assert_eq!(s.depth(), 0);
        assert_eq!(s.finish_of(ProcessorId::new(1)), Time::ZERO);
    }

    #[test]
    fn heterogeneous_initial_finish_respected() {
        let tasks = mk_tasks(&[(100, 10_000, &[1])]);
        let comm = CommModel::free();
        let s = PathState::new(vec![Time::from_micros(500), Time::from_micros(2_000)], 1);
        assert_eq!(
            s.completion_if(&tasks, &comm, 0, ProcessorId::new(1)),
            Time::from_micros(2_100)
        );
        assert_eq!(s.makespan(), Time::from_micros(2_000));
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn double_apply_panics() {
        let tasks = mk_tasks(&[(100, 10_000, &[])]);
        let comm = CommModel::free();
        let mut s = PathState::new(vec![Time::ZERO], 1);
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
    }

    #[test]
    fn undo_reverts_apply_exactly() {
        let tasks = mk_tasks(&[(100, 10_000, &[0]), (200, 10_000, &[1])]);
        let comm = CommModel::constant(Duration::from_micros(50));
        let mut s = PathState::new(vec![Time::from_micros(1_000); 2], 2);
        let before = s.clone();
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        s.apply(&tasks, &comm, 1, ProcessorId::new(0));
        let a1 = s.undo();
        assert_eq!(a1.task, 1);
        assert_eq!(s.depth(), 1);
        assert!(!s.is_assigned(1));
        assert_eq!(s.finish_of(ProcessorId::new(0)), Time::from_micros(1_100));
        let a0 = s.undo();
        assert_eq!(a0.task, 0);
        assert_eq!(s, before, "undo restores the exact prior state");
    }

    #[test]
    fn undo_restores_resource_eats() {
        use rt_task::ResourceRequest;
        let tasks = vec![
            Task::builder(TaskId::new(0))
                .processing_time(Duration::from_micros(100))
                .deadline(Time::from_micros(10_000))
                .resources(vec![ResourceRequest::exclusive(0)])
                .build(),
            Task::builder(TaskId::new(1))
                .processing_time(Duration::from_micros(100))
                .deadline(Time::from_micros(10_000))
                .resources(vec![ResourceRequest::shared(0)])
                .build(),
        ];
        let comm = CommModel::free();
        let mut s = PathState::new(vec![Time::ZERO; 2], 2);
        let before = s.clone();
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        // task 1 must wait for the exclusive holder even on another processor
        assert_eq!(
            s.completion_if(&tasks, &comm, 1, ProcessorId::new(1)),
            Time::from_micros(200)
        );
        s.undo();
        assert_eq!(s, before);
        // and the resource wait is gone again
        assert_eq!(
            s.completion_if(&tasks, &comm, 1, ProcessorId::new(1)),
            Time::from_micros(100)
        );
    }

    #[test]
    fn interleaved_apply_undo_matches_straight_replay() {
        let tasks = mk_tasks(&[(100, 10_000, &[]), (150, 10_000, &[]), (70, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let mut zigzag = PathState::new(vec![Time::ZERO; 2], 3);
        zigzag.apply(&tasks, &comm, 0, ProcessorId::new(0));
        zigzag.apply(&tasks, &comm, 1, ProcessorId::new(1));
        zigzag.undo();
        zigzag.apply(&tasks, &comm, 2, ProcessorId::new(0));
        zigzag.undo();
        zigzag.undo();
        zigzag.apply(&tasks, &comm, 0, ProcessorId::new(0));
        zigzag.apply(&tasks, &comm, 2, ProcessorId::new(1));

        let mut straight = PathState::new(vec![Time::ZERO; 2], 3);
        straight.apply(&tasks, &comm, 0, ProcessorId::new(0));
        straight.apply(&tasks, &comm, 2, ProcessorId::new(1));
        assert_eq!(zigzag, straight);
    }

    #[test]
    fn reset_matches_fresh_construction() {
        use rt_task::ResourceRequest;
        let tasks = mk_tasks(&[(100, 10_000, &[]), (150, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let mut s = PathState::new(vec![Time::ZERO; 2], 2);
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        s.apply(&tasks, &comm, 1, ProcessorId::new(1));

        // reset to a different root: other finishes, other task count,
        // non-trivial resource EATs
        let finishes = [Time::from_micros(300), Time::from_micros(700)];
        let mut eats = ResourceEats::new();
        eats.commit(&[ResourceRequest::exclusive(1)], Time::from_micros(42));
        s.reset(&finishes, 3, &eats);
        let fresh = PathState::with_resources(finishes.to_vec(), 3, eats.clone());
        assert_eq!(s, fresh, "reset is indistinguishable from fresh");
        assert_eq!(s.depth(), 0);
        assert_eq!(s.makespan(), Time::from_micros(700));
    }

    #[test]
    #[should_panic(expected = "PathState needs processors")]
    fn reset_without_processors_panics() {
        let mut s = PathState::new(vec![Time::ZERO], 1);
        s.reset(&[], 1, &ResourceEats::new());
    }

    #[test]
    #[should_panic(expected = "undo on the root state")]
    fn undo_at_root_panics() {
        let mut s = PathState::new(vec![Time::ZERO], 1);
        s.undo();
    }

    #[test]
    fn shard_min_tracks_apply_and_undo() {
        let tasks = mk_tasks(&[(100, 10_000, &[]), (150, 10_000, &[]), (70, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let finishes: Vec<Time> = [10u64, 40, 30, 20].map(Time::from_micros).into();
        let mut s = PathState::new(finishes, 3);
        s.configure_shards(&[2, 4]);
        assert_eq!(s.shards(), 2);
        assert_eq!(s.shard_min(0), Time::from_micros(10));
        assert_eq!(s.shard_min(1), Time::from_micros(20));

        let before = s.clone();
        s.apply(&tasks, &comm, 0, ProcessorId::new(0)); // P0: 10 -> 120
        assert_eq!(s.shard_min(0), Time::from_micros(40));
        s.apply(&tasks, &comm, 1, ProcessorId::new(3)); // P3: 20 -> 180
        assert_eq!(s.shard_min(1), Time::from_micros(30));
        s.apply(&tasks, &comm, 2, ProcessorId::new(1)); // P1: 40 -> 120
        assert_eq!(s.shard_min(0), Time::from_micros(120));

        s.undo();
        s.undo();
        s.undo();
        assert_eq!(s, before, "undo restores the shard minima exactly");
    }

    #[test]
    fn reset_clears_shard_configuration() {
        let mut s = PathState::new(vec![Time::ZERO; 4], 2);
        s.configure_shards(&[2, 4]);
        s.reset(&[Time::ZERO; 4], 2, &ResourceEats::new());
        assert_eq!(s.shards(), 0, "reset returns to the unsharded default");
        assert_eq!(s, PathState::new(vec![Time::ZERO; 4], 2));
    }

    #[test]
    #[should_panic(expected = "cover every processor")]
    fn shard_ends_must_cover_processors() {
        let mut s = PathState::new(vec![Time::ZERO; 4], 1);
        s.configure_shards(&[2, 3]);
    }

    /// The incremental column must match `completion_if` entry-wise no
    /// matter what interleaving of applies and undos preceded the read.
    fn assert_column_fresh(tasks: &[Task], comm: &CommModel, s: &mut PathState, task: usize) {
        let expected: Vec<Time> = (0..s.processors())
            .map(|p| s.completion_if(tasks, comm, task, ProcessorId::new(p)))
            .collect();
        let got = s.candidate_column(tasks, comm, task).to_vec();
        assert_eq!(got, expected, "column for task {task} diverged");
    }

    #[test]
    fn candidate_column_tracks_apply_and_undo() {
        let tasks = mk_tasks(&[(100, 10_000, &[0]), (150, 10_000, &[]), (70, 10_000, &[1])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let mut s = PathState::new(vec![Time::from_micros(5); 3], 3);
        assert_column_fresh(&tasks, &comm, &mut s, 0);
        assert_column_fresh(&tasks, &comm, &mut s, 1);
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        assert_column_fresh(&tasks, &comm, &mut s, 1);
        s.apply(&tasks, &comm, 1, ProcessorId::new(2));
        assert_column_fresh(&tasks, &comm, &mut s, 2);
        s.undo();
        assert_column_fresh(&tasks, &comm, &mut s, 1);
        assert_column_fresh(&tasks, &comm, &mut s, 2);
        s.undo();
        assert_column_fresh(&tasks, &comm, &mut s, 0);
    }

    #[test]
    fn candidate_column_revalidates_after_resource_commit() {
        use rt_task::ResourceRequest;
        let tasks = vec![
            Task::builder(TaskId::new(0))
                .processing_time(Duration::from_micros(100))
                .deadline(Time::from_micros(10_000))
                .resources(vec![ResourceRequest::exclusive(0)])
                .build(),
            Task::builder(TaskId::new(1))
                .processing_time(Duration::from_micros(100))
                .deadline(Time::from_micros(10_000))
                .resources(vec![ResourceRequest::shared(0)])
                .build(),
        ];
        let comm = CommModel::free();
        let mut s = PathState::new(vec![Time::ZERO; 2], 2);
        // Fill task 1's column before the resource commit shifts its
        // earliest start, then verify the cached earliest is invalidated.
        assert_column_fresh(&tasks, &comm, &mut s, 1);
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        assert_column_fresh(&tasks, &comm, &mut s, 1);
        s.undo();
        assert_column_fresh(&tasks, &comm, &mut s, 1);
    }

    #[test]
    fn candidate_column_survives_reset_generation() {
        let tasks = mk_tasks(&[(100, 10_000, &[]), (150, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let mut s = PathState::new(vec![Time::ZERO; 2], 2);
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        assert_column_fresh(&tasks, &comm, &mut s, 1);
        // A reset bumps the generation: stale column entries from the old
        // phase must not leak into the new one.
        let finishes = [Time::from_micros(300), Time::from_micros(700)];
        s.reset(&finishes, 2, &ResourceEats::new());
        assert_column_fresh(&tasks, &comm, &mut s, 0);
        assert_column_fresh(&tasks, &comm, &mut s, 1);
    }

    #[test]
    fn sharded_segments_sync_independently() {
        let tasks = mk_tasks(&[(100, 10_000, &[]), (150, 10_000, &[]), (70, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let finishes: Vec<Time> = [10u64, 40, 30, 20].map(Time::from_micros).into();
        let mut s = PathState::new(finishes, 3);
        s.configure_shards(&[2, 4]);
        // Sync only shard 1 of task 0's column, mutate shard 0, then check
        // that re-syncing each shard yields from-scratch values.
        s.ensure_candidate_segment(&tasks, &comm, 0, 1);
        s.apply(&tasks, &comm, 1, ProcessorId::new(0));
        s.ensure_candidate_segment(&tasks, &comm, 0, 0);
        s.ensure_candidate_segment(&tasks, &comm, 0, 1);
        let expected: Vec<Time> = (0..4)
            .map(|p| s.completion_if(&tasks, &comm, 0, ProcessorId::new(p)))
            .collect();
        assert_eq!(s.comp_column(0), &expected[..]);
        s.undo();
        assert_column_fresh(&tasks, &comm, &mut s, 0);
    }

    #[test]
    fn into_assignments_returns_path_order() {
        let tasks = mk_tasks(&[(1, 1_000, &[]), (1, 1_000, &[])]);
        let comm = CommModel::free();
        let mut s = PathState::new(vec![Time::ZERO], 2);
        s.apply(&tasks, &comm, 1, ProcessorId::new(0));
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        let asg = s.into_assignments();
        assert_eq!(asg[0].task, 1);
        assert_eq!(asg[1].task, 0);
    }
}
