//! Partial-schedule state along one root-to-vertex path.

use paragon_des::Time;
use rt_task::{CommModel, ProcessorId, ResourceEats, Task};
use serde::{Deserialize, Serialize};

/// One committed task-to-processor assignment (a vertex of `G` on the
/// current path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Index of the task within the batch being scheduled.
    pub task: usize,
    /// The processor it is assigned to.
    pub processor: ProcessorId,
    /// The predicted completion instant `se_lk` (absolute virtual time,
    /// already including the phase-end bound `t_c + RQ_s`).
    pub completion: Time,
}

/// The partial schedule a root-to-vertex path represents.
///
/// Per-processor finish times start from
/// `max(worker availability, planned execution start)`, which folds the
/// paper's feasibility test `t_c + RQ_s(j) + se_lk ≤ d_l` into a single
/// comparison `completion ≤ d_l`: during a phase, `t_c + RQ_s(j)` is the
/// constant `t_s + Q_s(j)` (the planned phase end).
///
/// # Example
///
/// ```
/// use paragon_des::{Duration, Time};
/// use rt_task::{AffinitySet, CommModel, ProcessorId, Task, TaskId};
/// use sched_search::PathState;
///
/// let tasks = vec![Task::builder(TaskId::new(0))
///     .processing_time(Duration::from_millis(2))
///     .deadline(Time::from_millis(30))
///     .affinity(AffinitySet::from_iter([ProcessorId::new(0)]))
///     .build()];
/// let comm = CommModel::constant(Duration::from_millis(1));
/// // both processors become free at t=10ms (planned execution start)
/// let mut state = PathState::new(vec![Time::from_millis(10); 2], tasks.len());
/// let done = state.completion_if(&tasks, &comm, 0, ProcessorId::new(1));
/// assert_eq!(done, Time::from_millis(13)); // 10 + p(2) + C(1)
/// state.apply(&tasks, &comm, 0, ProcessorId::new(1));
/// assert!(state.is_complete());
/// assert_eq!(state.makespan(), Time::from_millis(13));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathState {
    assigned: Vec<bool>,
    n_assigned: usize,
    finish: Vec<Time>,
    assignments: Vec<Assignment>,
    resources: ResourceEats,
}

impl PathState {
    /// Creates the root state (empty schedule).
    ///
    /// `initial_finish[k]` is the instant processor `P_k` could start new
    /// work: `max(busy_until_k, t_s + Q_s)`.
    ///
    /// # Panics
    ///
    /// Panics if there are no processors.
    #[must_use]
    pub fn new(initial_finish: Vec<Time>, n_tasks: usize) -> Self {
        Self::with_resources(initial_finish, n_tasks, ResourceEats::new())
    }

    /// Creates the root state carrying the machine's current resource
    /// earliest-available times (for resource-constrained task systems).
    ///
    /// # Panics
    ///
    /// Panics if there are no processors.
    #[must_use]
    pub fn with_resources(
        initial_finish: Vec<Time>,
        n_tasks: usize,
        resources: ResourceEats,
    ) -> Self {
        assert!(!initial_finish.is_empty(), "PathState needs processors");
        PathState {
            assigned: vec![false; n_tasks],
            n_assigned: 0,
            finish: initial_finish,
            assignments: Vec::new(),
            resources,
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.finish.len()
    }

    /// Number of tasks in the batch.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.assigned.len()
    }

    /// Number of tasks assigned so far (the current depth in `G`).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.n_assigned
    }

    /// Whether every batch task is assigned (a leaf of `G` — a complete
    /// schedule).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.n_assigned == self.assigned.len()
    }

    /// Whether batch task `task` is already in the partial schedule.
    #[must_use]
    pub fn is_assigned(&self, task: usize) -> bool {
        self.assigned[task]
    }

    /// Indices of tasks not yet assigned, ascending.
    pub fn unassigned(&self) -> impl Iterator<Item = usize> + '_ {
        self.assigned
            .iter()
            .enumerate()
            .filter(|(_, &a)| !a)
            .map(|(i, _)| i)
    }

    /// The current finish time of processor `p` under this partial schedule
    /// (the paper's `ce_k`, as an absolute instant).
    #[must_use]
    pub fn finish_of(&self, p: ProcessorId) -> Time {
        self.finish[p.index()]
    }

    /// The completion instant task `task` would have if appended to
    /// processor `p` now — without mutating the state.
    #[must_use]
    pub fn completion_if(
        &self,
        tasks: &[Task],
        comm: &CommModel,
        task: usize,
        p: ProcessorId,
    ) -> Time {
        let t = &tasks[task];
        let start = self.finish[p.index()].max(self.resources.earliest_start(t.resources()));
        start + comm.demand(t, p)
    }

    /// Commits assignment `(task → p)` and returns its completion instant.
    ///
    /// # Panics
    ///
    /// Panics if `task` is already assigned.
    pub fn apply(&mut self, tasks: &[Task], comm: &CommModel, task: usize, p: ProcessorId) -> Time {
        assert!(!self.assigned[task], "task index {task} assigned twice");
        let completion = self.completion_if(tasks, comm, task, p);
        self.assigned[task] = true;
        self.n_assigned += 1;
        self.finish[p.index()] = completion;
        self.resources.commit(tasks[task].resources(), completion);
        self.assignments.push(Assignment {
            task,
            processor: p,
            completion,
        });
        completion
    }

    /// The total execution time `CE` of this partial schedule: the latest
    /// finish time over all processors (paper, Section 4.4).
    #[must_use]
    pub fn makespan(&self) -> Time {
        *self.finish.iter().max().expect("at least one processor")
    }

    /// The committed assignments in path order.
    #[must_use]
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Consumes the state, returning the assignments.
    #[must_use]
    pub fn into_assignments(self) -> Vec<Assignment> {
        self.assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;
    use rt_task::{AffinitySet, TaskId};

    fn mk_tasks(specs: &[(u64, u64, &[usize])]) -> Vec<Task> {
        specs
            .iter()
            .enumerate()
            .map(|(i, (p_us, d_us, aff))| {
                Task::builder(TaskId::new(i as u64))
                    .processing_time(Duration::from_micros(*p_us))
                    .deadline(Time::from_micros(*d_us))
                    .affinity(
                        aff.iter()
                            .map(|&k| ProcessorId::new(k))
                            .collect::<AffinitySet>(),
                    )
                    .build()
            })
            .collect()
    }

    #[test]
    fn root_state_is_empty() {
        let s = PathState::new(vec![Time::ZERO; 3], 4);
        assert_eq!(s.depth(), 0);
        assert_eq!(s.processors(), 3);
        assert_eq!(s.n_tasks(), 4);
        assert!(!s.is_complete());
        assert_eq!(s.unassigned().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(s.makespan(), Time::ZERO);
    }

    #[test]
    fn apply_updates_finish_and_assigned() {
        let tasks = mk_tasks(&[(100, 10_000, &[0]), (200, 10_000, &[1])]);
        let comm = CommModel::constant(Duration::from_micros(50));
        let mut s = PathState::new(vec![Time::from_micros(1_000); 2], 2);
        let c0 = s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        assert_eq!(c0, Time::from_micros(1_100)); // affine, no C
        let c1 = s.apply(&tasks, &comm, 1, ProcessorId::new(0));
        assert_eq!(c1, Time::from_micros(1_350)); // 1100 + 200 + 50 (non-affine)
        assert!(s.is_complete());
        assert_eq!(s.finish_of(ProcessorId::new(0)), Time::from_micros(1_350));
        assert_eq!(s.finish_of(ProcessorId::new(1)), Time::from_micros(1_000));
        assert_eq!(s.makespan(), Time::from_micros(1_350));
        assert_eq!(s.assignments().len(), 2);
        assert!(s.is_assigned(0) && s.is_assigned(1));
    }

    #[test]
    fn completion_if_does_not_mutate() {
        let tasks = mk_tasks(&[(100, 10_000, &[])]);
        let comm = CommModel::constant(Duration::from_micros(10));
        let s = PathState::new(vec![Time::ZERO; 2], 1);
        let c = s.completion_if(&tasks, &comm, 0, ProcessorId::new(1));
        assert_eq!(c, Time::from_micros(110));
        assert_eq!(s.depth(), 0);
        assert_eq!(s.finish_of(ProcessorId::new(1)), Time::ZERO);
    }

    #[test]
    fn heterogeneous_initial_finish_respected() {
        let tasks = mk_tasks(&[(100, 10_000, &[1])]);
        let comm = CommModel::free();
        let s = PathState::new(vec![Time::from_micros(500), Time::from_micros(2_000)], 1);
        assert_eq!(
            s.completion_if(&tasks, &comm, 0, ProcessorId::new(1)),
            Time::from_micros(2_100)
        );
        assert_eq!(s.makespan(), Time::from_micros(2_000));
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn double_apply_panics() {
        let tasks = mk_tasks(&[(100, 10_000, &[])]);
        let comm = CommModel::free();
        let mut s = PathState::new(vec![Time::ZERO], 1);
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
    }

    #[test]
    fn into_assignments_returns_path_order() {
        let tasks = mk_tasks(&[(1, 1_000, &[]), (1, 1_000, &[])]);
        let comm = CommModel::free();
        let mut s = PathState::new(vec![Time::ZERO], 2);
        s.apply(&tasks, &comm, 1, ProcessorId::new(0));
        s.apply(&tasks, &comm, 0, ProcessorId::new(0));
        let asg = s.into_assignments();
        assert_eq!(asg[0].task, 1);
        assert_eq!(asg[1].task, 0);
    }
}
