//! Orderings: which task each level considers, which processor each level
//! serves, and how feasible successors are prioritized in the candidate list.

use paragon_des::Time;
use rt_task::Task;
use serde::{Deserialize, Serialize};

/// How the assignment-oriented representation fixes the task considered at
/// each tree level (paper: "at each level of G a task `T_i` is selected").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TaskOrder {
    /// Earliest deadline first — the classical real-time selection heuristic.
    #[default]
    EarliestDeadline,
    /// Smallest slack at a reference instant first.
    MinSlack,
    /// Batch (arrival) order, i.e. no heuristic.
    Arrival,
    /// Shortest processing time first.
    ShortestProcessing,
}

impl TaskOrder {
    /// Computes the level-to-task ordering for a batch at reference instant
    /// `now` (used by slack). Returns batch indices, one per level.
    #[must_use]
    pub fn order(&self, tasks: &[Task], now: Time) -> Vec<usize> {
        let mut idx = Vec::new();
        self.order_into(tasks, now, &mut idx);
        idx
    }

    /// Like [`TaskOrder::order`], but sorts into a caller-provided index
    /// buffer (cleared first) so the per-phase hot path can reuse one
    /// allocation across phases.
    ///
    /// Every sort key ends with the batch index `i`, so keys are unique and
    /// the unstable sort is deterministic — identical output to a stable
    /// sort, without the stable sort's temporary buffer.
    pub fn order_into(&self, tasks: &[Task], now: Time, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..tasks.len());
        match self {
            TaskOrder::EarliestDeadline => {
                out.sort_unstable_by_key(|&i| (tasks[i].deadline(), i));
            }
            TaskOrder::MinSlack => {
                out.sort_unstable_by_key(|&i| (tasks[i].slack(now), i));
            }
            TaskOrder::Arrival => {}
            TaskOrder::ShortestProcessing => {
                out.sort_unstable_by_key(|&i| (tasks[i].processing_time(), i));
            }
        }
    }
}

/// How the sequence-oriented representation fixes the processor served at
/// each tree level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ProcessorOrder {
    /// `P_{l mod m}` at level `l` — the round-robin order shown in the
    /// paper's Figure 1.
    #[default]
    RoundRobin,
    /// Fill one processor's whole sequence before moving to the next
    /// ("consecutive sub-problems that deal with one processor at a time"):
    /// the `n` levels are split into `m` contiguous blocks.
    FillFirst,
}

impl ProcessorOrder {
    /// The processor index served at tree level `level` (0-based), for `m`
    /// processors and `n` total tasks.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn processor_at(&self, level: usize, m: usize, n: usize) -> usize {
        assert!(m > 0, "no processors");
        match self {
            ProcessorOrder::RoundRobin => level % m,
            ProcessorOrder::FillFirst => {
                let block = n.div_ceil(m).max(1);
                (level / block).min(m - 1)
            }
        }
    }
}

/// How an expansion's feasible successors are ordered before being pushed on
/// the front of the candidate list (highest priority first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ChildOrder {
    /// Minimize the resulting partial-schedule execution time `CE` (the
    /// paper's load-balancing cost function, Section 4.4); ties broken by
    /// the candidate's own completion time.
    #[default]
    LoadBalance,
    /// Earliest candidate completion first (greedy, no global cost).
    EarliestCompletion,
    /// Earliest task deadline first (the EDF-style heuristic sequence-
    /// oriented schedulers use to pick the next task for a processor).
    EarliestDeadline,
    /// Generation order (no heuristic) — the ablation baseline.
    None,
}

/// A candidate successor during expansion, with everything needed to order
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Batch index of the task.
    pub task: usize,
    /// Processor index it would run on.
    pub processor: usize,
    /// Predicted completion instant.
    pub completion: Time,
    /// Resulting partial-schedule makespan (`CE` after the assignment).
    pub makespan: Time,
    /// The task's deadline (cached for ordering).
    pub deadline: Time,
}

impl ChildOrder {
    /// Sorts candidates so that the highest-priority successor comes first.
    ///
    /// Unstable sorts are safe here: each key ends in the full
    /// `(task, processor)` pair, which is unique within one expansion, so the
    /// order is a deterministic total order regardless of sort stability —
    /// and the unstable sort needs no temporary allocation.
    pub fn sort(&self, candidates: &mut [Candidate]) {
        match self {
            ChildOrder::LoadBalance => {
                candidates
                    .sort_unstable_by_key(|c| (c.makespan, c.completion, c.processor, c.task));
            }
            ChildOrder::EarliestCompletion => {
                candidates.sort_unstable_by_key(|c| (c.completion, c.processor, c.task));
            }
            ChildOrder::EarliestDeadline => {
                candidates
                    .sort_unstable_by_key(|c| (c.deadline, c.completion, c.task, c.processor));
            }
            ChildOrder::None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_des::Duration;
    use rt_task::TaskId;

    fn task(id: u64, p_us: u64, d_us: u64) -> Task {
        Task::builder(TaskId::new(id))
            .processing_time(Duration::from_micros(p_us))
            .deadline(Time::from_micros(d_us))
            .build()
    }

    #[test]
    fn edf_orders_by_deadline() {
        let tasks = vec![task(0, 10, 300), task(1, 10, 100), task(2, 10, 200)];
        let order = TaskOrder::EarliestDeadline.order(&tasks, Time::ZERO);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn min_slack_accounts_for_processing_time() {
        // d=300 p=250 -> slack 50; d=100 p=10 -> slack 90
        let tasks = vec![task(0, 250, 300), task(1, 10, 100)];
        let order = TaskOrder::MinSlack.order(&tasks, Time::ZERO);
        assert_eq!(order, vec![0, 1]);
        // EDF would say the opposite
        assert_eq!(
            TaskOrder::EarliestDeadline.order(&tasks, Time::ZERO),
            vec![1, 0]
        );
    }

    #[test]
    fn arrival_and_spt_orders() {
        let tasks = vec![task(0, 30, 100), task(1, 10, 100), task(2, 20, 100)];
        assert_eq!(TaskOrder::Arrival.order(&tasks, Time::ZERO), vec![0, 1, 2]);
        assert_eq!(
            TaskOrder::ShortestProcessing.order(&tasks, Time::ZERO),
            vec![1, 2, 0]
        );
    }

    #[test]
    fn round_robin_processor_order() {
        let o = ProcessorOrder::RoundRobin;
        let got: Vec<usize> = (0..6).map(|l| o.processor_at(l, 3, 6)).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn fill_first_processor_order() {
        let o = ProcessorOrder::FillFirst;
        // n=6, m=3 -> blocks of 2
        let got: Vec<usize> = (0..6).map(|l| o.processor_at(l, 3, 6)).collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2]);
        // n=5, m=3 -> blocks of 2, last block short
        let got: Vec<usize> = (0..5).map(|l| o.processor_at(l, 3, 5)).collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2]);
        // levels past n clamp to the last processor
        assert_eq!(o.processor_at(99, 3, 5), 2);
    }

    fn cand(task: usize, proc: usize, comp: u64, mk: u64, dl: u64) -> Candidate {
        Candidate {
            task,
            processor: proc,
            completion: Time::from_micros(comp),
            makespan: Time::from_micros(mk),
            deadline: Time::from_micros(dl),
        }
    }

    #[test]
    fn load_balance_prefers_smallest_makespan() {
        let mut cs = vec![
            cand(0, 0, 500, 900, 1000),
            cand(0, 1, 600, 600, 1000),
            cand(0, 2, 400, 900, 1000),
        ];
        ChildOrder::LoadBalance.sort(&mut cs);
        assert_eq!(cs[0].processor, 1, "smallest resulting makespan first");
        assert_eq!(cs[1].processor, 2, "tie on makespan broken by completion");
        assert_eq!(cs[2].processor, 0);
    }

    #[test]
    fn earliest_completion_ordering() {
        let mut cs = vec![cand(0, 0, 500, 900, 1000), cand(0, 1, 300, 950, 1000)];
        ChildOrder::EarliestCompletion.sort(&mut cs);
        assert_eq!(cs[0].processor, 1);
    }

    #[test]
    fn earliest_deadline_ordering() {
        let mut cs = vec![cand(0, 0, 500, 900, 2000), cand(1, 0, 600, 950, 1000)];
        ChildOrder::EarliestDeadline.sort(&mut cs);
        assert_eq!(cs[0].task, 1);
    }

    #[test]
    fn none_keeps_generation_order() {
        let mut cs = vec![cand(2, 0, 900, 900, 100), cand(1, 0, 100, 100, 50)];
        ChildOrder::None.sort(&mut cs);
        assert_eq!(cs[0].task, 2);
    }
}
