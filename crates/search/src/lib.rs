//! Search-space framework for dynamic real-time multiprocessor scheduling.
//!
//! Section 3 of the paper casts scheduling as an incremental search for a
//! feasible schedule in a tree `G(V,E)`: vertices are task-to-processor
//! assignments `(T_i → P_j)`, a root-to-vertex path is a feasible partial
//! schedule, and extending a path adds one assignment. Candidate vertices are
//! kept in a candidate list `CL`; when an expansion yields no feasible
//! successor the search *backtracks* to the first vertex of `CL`, and when
//! `CL` empties it has hit a *dead-end*.
//!
//! The crate separates the three knobs the paper varies:
//!
//! * [`Representation`] — *assignment-oriented* (each level fixes the task,
//!   the search picks its processor; Figure 2) versus *sequence-oriented*
//!   (each level fixes the processor, the search picks its task; Figure 1),
//! * [`ChildOrder`] — the heuristic/cost ordering of feasible successors
//!   (front of `CL` = highest priority),
//! * the scheduling-time budget — a
//!   [`SchedulingMeter`](paragon_platform::SchedulingMeter) charging one
//!   virtual evaluation cost per generated vertex, so a phase can be
//!   interrupted "at the end of any iteration" exactly as on the Paragon.
//!
//! The engine ([`search_schedule`]) performs the depth-first search and
//! returns the best feasible (partial) schedule found plus diagnostics
//! ([`SearchStats`]) that the experiment harness uses to validate the
//! paper's dead-end and processor-coverage conjectures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod policy;
mod repr;
mod state;

#[cfg(any(test, feature = "replay-oracle"))]
pub use engine::search_schedule_replay;
pub use engine::{
    search_schedule, search_schedule_parallel, search_schedule_parallel_with_report,
    search_schedule_with, ParallelReport, ParallelScratch, PhaseProvenance, PlacementAlternative,
    PlacementEvidence, Pruning, ScreenEvidence, ScreenProbe, SearchOutcome, SearchParams,
    SearchScratch, SearchStats, SubReport, Termination,
};
pub use policy::{Candidate, ChildOrder, ProcessorOrder, TaskOrder};
pub use repr::Representation;
pub use state::{Assignment, PathState};
