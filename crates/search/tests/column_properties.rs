//! Property tests of the persistent candidate columns: after an arbitrary
//! interleaving of `apply`/`undo`, with column reads forced at arbitrary
//! points in between (so segments synchronise at different journal
//! positions), every column entry must be bit-equal to the from-scratch
//! evaluation (`completion_if`) against the live state — and the
//! incrementally maintained `makespan` and per-shard `shard_min` must equal
//! their from-scratch recomputations over the finish array.

use proptest::prelude::*;

use paragon_des::{Duration, Time};
use rt_task::{CommModel, ProcessorId, ResourceEats, ResourceRequest, Task, TaskId, TopologySpec};
use sched_search::PathState;

/// One step of the random walk over the search tree.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Assign the `t`-th (mod remaining) unassigned task to processor
    /// `p` (mod P); no-op when the path is complete.
    Apply(usize, usize),
    /// Pop the deepest assignment; no-op at the root.
    Undo,
}

fn op() -> impl Strategy<Value = Op> {
    (0usize..5, 0usize..64, 0usize..64).prop_map(
        |(kind, t, p)| {
            if kind < 3 {
                Op::Apply(t, p)
            } else {
                Op::Undo
            }
        },
    )
}

#[derive(Debug, Clone)]
struct TaskSpec {
    p_us: u64,
    laxity_x10: u64,
    resource: Option<(usize, bool)>,
}

fn task_spec() -> impl Strategy<Value = TaskSpec> {
    (
        1u64..2_000,
        10u64..60,
        any::<bool>(),
        0usize..3,
        any::<bool>(),
    )
        .prop_map(|(p_us, laxity_x10, has_resource, r, exclusive)| TaskSpec {
            p_us,
            laxity_x10,
            resource: has_resource.then_some((r, exclusive)),
        })
}

fn tasks_from(specs: &[TaskSpec]) -> Vec<Task> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let p = Duration::from_micros(s.p_us);
            let resources = match s.resource {
                Some((r, true)) => vec![ResourceRequest::exclusive(r)],
                Some((r, false)) => vec![ResourceRequest::shared(r)],
                None => Vec::new(),
            };
            Task::builder(TaskId::new(i as u64))
                .processing_time(p)
                .deadline(Time::ZERO + p.mul_f64(s.laxity_x10 as f64 / 10.0))
                .resources(resources)
                .build()
        })
        .collect()
}

/// Checks every incremental structure of `state` against its from-scratch
/// definition. `candidate_column` synchronises the column as a side effect,
/// which is exactly the production read path.
fn check_state(
    tasks: &[Task],
    comm: &CommModel,
    state: &mut PathState,
) -> Result<(), TestCaseError> {
    let procs = state.processors();
    // Incremental makespan == max finish.
    let max_finish = (0..procs)
        .map(|p| state.finish_of(ProcessorId::new(p)))
        .max()
        .unwrap_or(Time::ZERO);
    prop_assert_eq!(state.makespan(), max_finish, "makespan != max finish");
    // Incremental shard minima == per-segment min finish.
    if let Some(topo) = comm.topology() {
        for s in 0..topo.nodes() {
            let (lo, hi) = topo.node_range(s);
            let min_finish = (lo..hi)
                .map(|p| state.finish_of(ProcessorId::new(p)))
                .min()
                .expect("non-empty shard");
            prop_assert_eq!(state.shard_min(s), min_finish, "shard_min({}) stale", s);
        }
    }
    // Every column entry == the from-scratch completion for that pair.
    for t in 0..tasks.len() {
        let col = state.candidate_column(tasks, comm, t).to_vec();
        prop_assert_eq!(col.len(), procs);
        for (p, &got) in col.iter().enumerate() {
            let want = state.completion_if(tasks, comm, t, ProcessorId::new(p));
            prop_assert_eq!(
                got,
                want,
                "column[task={}][p={}] diverged from completion_if",
                t,
                p
            );
        }
    }
    Ok(())
}

fn run_walk(
    tasks: &[Task],
    comm: &CommModel,
    procs: usize,
    shard_ends: &[usize],
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let initial: Vec<Time> = (0..procs)
        .map(|p| Time::from_micros((p as u64 * 137) % 1_000))
        .collect();
    let mut state = PathState::with_resources(initial, tasks.len(), ResourceEats::new());
    if !shard_ends.is_empty() {
        state.configure_shards(shard_ends);
    }
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Apply(t, p) => {
                let unassigned: Vec<usize> = state.unassigned().collect();
                if let Some(&task) = unassigned.get(t % unassigned.len().max(1)) {
                    state.apply(tasks, comm, task, ProcessorId::new(p % procs));
                }
            }
            Op::Undo => {
                if state.depth() > 0 {
                    state.undo();
                }
            }
        }
        // Force column reads at varying interleaving points so segments
        // synchronise at different journal positions; every third step
        // keeps the walk cheap while still exercising stale replays.
        if i % 3 == 0 {
            check_state(tasks, comm, &mut state)?;
        }
    }
    check_state(tasks, comm, &mut state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat (single-segment) columns under a constant-cost model stay
    /// bit-equal to from-scratch evaluation through any apply/undo
    /// interleaving.
    #[test]
    fn flat_columns_match_rebuild(
        specs in prop::collection::vec(task_spec(), 1..10),
        ops in prop::collection::vec(op(), 1..40),
        c_us in 0u64..500,
        procs in 1usize..12,
    ) {
        let tasks = tasks_from(&specs);
        let comm = CommModel::constant(Duration::from_micros(c_us));
        run_walk(&tasks, &comm, procs, &[], &ops)?;
    }

    /// Sharded (multi-segment) columns under a hierarchical model — the
    /// shard-first read path syncs segments independently, so the journal
    /// replay positions differ per segment.
    #[test]
    fn sharded_columns_match_rebuild(
        specs in prop::collection::vec(task_spec(), 1..10),
        ops in prop::collection::vec(op(), 1..40),
        nodes in 2u32..5,
        per_node in 1u32..5,
    ) {
        let tasks = tasks_from(&specs);
        let workers = nodes * per_node;
        let topo = TopologySpec::new(workers, nodes, 1, 50, 400, 400);
        let comm = CommModel::hierarchical(topo);
        let shard_ends: Vec<usize> = (0..topo.nodes()).map(|s| topo.node_range(s).1).collect();
        run_walk(&tasks, &comm, workers as usize, &shard_ends, &ops)?;
    }
}
