//! Figure 5 regeneration bench: one full simulated run (workload build +
//! every scheduling phase + execution) per processor count, for both
//! RT-SADS and D-COLS.
//!
//! Criterion reports the time to regenerate each figure point; the measured
//! deadline hit ratios are printed once per point so the bench doubles as a
//! smoke regeneration of the figure's series.

use bench_support::run_once;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtsads::Algorithm;
use std::hint::black_box;

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_scalability");
    group.sample_size(10);
    for algorithm in [Algorithm::rt_sads(), Algorithm::d_cols()] {
        for workers in [2usize, 6, 10] {
            let report = run_once(workers, 0.3, algorithm.clone(), 0);
            println!(
                "# fig5 point: {} P={workers} -> hit ratio {:.4}",
                algorithm.name(),
                report.hit_ratio()
            );
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), workers),
                &workers,
                |b, &workers| {
                    b.iter(|| black_box(run_once(workers, 0.3, algorithm.clone(), 0).hits));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
