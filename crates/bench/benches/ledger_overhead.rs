//! Microbenchmark of the decision-provenance path: a plain `Driver::run`
//! vs a run with the full [`DecisionLedger`] attached (which also switches
//! on provenance collection in the search), vs a disabled tracer.
//!
//! Provenance is gated on `tracer.enabled()` end to end — the search only
//! materializes screening probes and placement alternatives when asked —
//! so with no sink attached the ledger machinery must be free. Mirrors
//! `trace_overhead`: two Criterion series plus a loud assertion that the
//! disabled path stays within noise of the plain run.

use bench_support::{bench_driver, bench_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use paragon_des::trace::Tracer;
use rt_telemetry::DecisionLedger;
use rtsads::{Algorithm, Driver};
use std::hint::black_box;
use std::time::Instant;

const WORKERS: usize = 8;
const SEED: u64 = 42;

fn ledger_overhead(c: &mut Criterion) {
    let built = bench_workload(WORKERS, 0.3, SEED);
    let driver = Driver::new(bench_driver(WORKERS, Algorithm::rt_sads()).seed(SEED));

    let mut group = c.benchmark_group("ledger_overhead");
    group.bench_function("plain_run", |b| {
        b.iter(|| black_box(driver.run(built.tasks.clone()).hits));
    });
    group.bench_function("ledger_attached_run", |b| {
        b.iter(|| {
            let mut ledger = DecisionLedger::new();
            black_box(driver.run_traced(built.tasks.clone(), &mut ledger).hits)
        });
    });
    group.finish();

    // Assertion pass: the *disabled* provenance path must be free. (The
    // attached ledger is allowed to cost — it materializes evidence — but
    // a run with no sink must not pay for the machinery existing.)
    const ROUNDS: u32 = 20;
    let time = |traced: bool| {
        let started = Instant::now();
        for _ in 0..ROUNDS {
            let tasks = built.tasks.clone();
            let hits = if traced {
                driver.run_traced(tasks, &mut Tracer::disabled()).hits
            } else {
                driver.run(tasks).hits
            };
            black_box(hits);
        }
        started.elapsed().as_secs_f64()
    };
    let plain = time(false);
    let disabled = time(true);
    let ratio = disabled / plain;
    println!("disabled-ledger / plain run time ratio: {ratio:.3}");
    assert!(
        ratio < 1.5,
        "provenance collection must be free when no sink is attached \
         (plain {plain:.4}s, disabled {disabled:.4}s, ratio {ratio:.3})"
    );

    // Sanity: the attached ledger actually recorded the run.
    let mut ledger = DecisionLedger::new();
    let report = driver.run_traced(built.tasks.clone(), &mut ledger);
    assert_eq!(ledger.len(), report.total_tasks);
    assert!(ledger.counts().is_partition_of(report.total_tasks));
}

criterion_group!(benches, ledger_overhead);
criterion_main!(benches);
