//! Figure 6 regeneration bench: one full simulated run per replication
//! rate at 10 processors, for both RT-SADS and D-COLS.

use bench_support::run_once;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtsads::Algorithm;
use std::hint::black_box;

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_replication");
    group.sample_size(10);
    for algorithm in [Algorithm::rt_sads(), Algorithm::d_cols()] {
        for rate_pct in [10u32, 50, 100] {
            let rate = rate_pct as f64 / 100.0;
            let report = run_once(10, rate, algorithm.clone(), 0);
            println!(
                "# fig6 point: {} R={rate_pct}% -> hit ratio {:.4}",
                algorithm.name(),
                report.hit_ratio()
            );
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), rate_pct),
                &rate,
                |b, &rate| {
                    b.iter(|| black_box(run_once(10, rate, algorithm.clone(), 0).hits));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
