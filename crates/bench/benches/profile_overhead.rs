//! Microbenchmark of the stage profiler's disabled path: a full simulation
//! run through `Driver::run` vs `Driver::run_traced` with `profile(true)`
//! but a disabled tracer — the configuration every production run without
//! `--profile` output effectively executes.
//!
//! The driver arms the profiler only when a tracer is attached
//! (`cfg.profile && tracer.enabled()`), and every stage timer in the search
//! hot path is a single branch on the disabled flag with no clock read and
//! no allocation. So besides the two Criterion series this target asserts
//! the profile-configured run is within noise of the plain run (a generous
//! 1.5x bound, same as `trace_overhead`; the real ratio is ~1.0).

use bench_support::{bench_driver, bench_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use paragon_des::trace::Tracer;
use rtsads::{Algorithm, Driver};
use std::hint::black_box;
use std::time::Instant;

const WORKERS: usize = 8;
const SEED: u64 = 42;

fn profile_overhead(c: &mut Criterion) {
    let built = bench_workload(WORKERS, 0.3, SEED);
    let plain = Driver::new(bench_driver(WORKERS, Algorithm::rt_sads()).seed(SEED));
    let profiled = Driver::new(
        bench_driver(WORKERS, Algorithm::rt_sads())
            .seed(SEED)
            .profile(true),
    );

    let mut group = c.benchmark_group("profile_overhead");
    group.bench_function("plain_run", |b| {
        b.iter(|| black_box(plain.run(built.tasks.clone()).hits));
    });
    group.bench_function("profile_config_disabled_tracer_run", |b| {
        b.iter(|| {
            let mut tracer = Tracer::disabled();
            black_box(profiled.run_traced(built.tasks.clone(), &mut tracer).hits)
        });
    });
    group.finish();

    // Assertion pass: time ROUNDS runs of each flavor back to back and fail
    // loudly if the dormant profiler costs measurably more than none.
    const ROUNDS: u32 = 20;
    let time = |with_profile: bool| {
        let started = Instant::now();
        for _ in 0..ROUNDS {
            let tasks = built.tasks.clone();
            let hits = if with_profile {
                profiled.run_traced(tasks, &mut Tracer::disabled()).hits
            } else {
                plain.run(tasks).hits
            };
            black_box(hits);
        }
        started.elapsed().as_secs_f64()
    };
    let base = time(false);
    let dormant = time(true);
    let ratio = dormant / base;
    println!("dormant-profiler / plain run time ratio: {ratio:.3}");
    assert!(
        ratio < 1.5,
        "disabled stage profiler must add no measurable per-phase cost \
         (plain {base:.4}s, dormant {dormant:.4}s, ratio {ratio:.3})"
    );
}

criterion_group!(benches, profile_overhead);
criterion_main!(benches);
