//! Microbenchmark of the tracing seam: a full simulation run through
//! `Driver::run` vs `Driver::run_traced(&mut Tracer::disabled())`.
//!
//! The disabled tracer must be free — every emission site in the driver is
//! guarded by `tracer.enabled()` and the no-op paths are `#[inline]` — so
//! besides the two Criterion series this target asserts the disabled-tracer
//! run is within noise of the plain run (a generous 1.5x bound; the real
//! ratio is ~1.0).

use bench_support::{bench_driver, bench_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use paragon_des::trace::Tracer;
use rtsads::{Algorithm, Driver};
use std::hint::black_box;
use std::time::Instant;

const WORKERS: usize = 8;
const SEED: u64 = 42;

fn trace_overhead(c: &mut Criterion) {
    let built = bench_workload(WORKERS, 0.3, SEED);
    let driver = Driver::new(bench_driver(WORKERS, Algorithm::rt_sads()).seed(SEED));

    let mut group = c.benchmark_group("trace_overhead");
    group.bench_function("plain_run", |b| {
        b.iter(|| black_box(driver.run(built.tasks.clone()).hits));
    });
    group.bench_function("disabled_tracer_run", |b| {
        b.iter(|| {
            let mut tracer = Tracer::disabled();
            black_box(driver.run_traced(built.tasks.clone(), &mut tracer).hits)
        });
    });
    group.finish();

    // Assertion pass: time ROUNDS runs of each flavor back to back and fail
    // loudly if the disabled tracer costs measurably more than no tracer.
    const ROUNDS: u32 = 20;
    let time = |traced: bool| {
        let started = Instant::now();
        for _ in 0..ROUNDS {
            let tasks = built.tasks.clone();
            let hits = if traced {
                driver.run_traced(tasks, &mut Tracer::disabled()).hits
            } else {
                driver.run(tasks).hits
            };
            black_box(hits);
        }
        started.elapsed().as_secs_f64()
    };
    let plain = time(false);
    let disabled = time(true);
    let ratio = disabled / plain;
    println!("disabled-tracer / plain run time ratio: {ratio:.3}");
    assert!(
        ratio < 1.5,
        "disabled tracer must add no measurable per-event cost \
         (plain {plain:.4}s, disabled {disabled:.4}s, ratio {ratio:.3})"
    );
}

criterion_group!(benches, trace_overhead);
criterion_main!(benches);
