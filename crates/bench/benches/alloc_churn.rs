//! Allocation-churn microbenchmark: the same scheduling phase run with a
//! fresh scratch every iteration ("fresh") versus one scratch reused across
//! iterations ("reused") — the way [`rtsads::Driver`] runs phases in steady
//! state. The gap between the two is exactly the cost of allocator traffic
//! on the search hot path; the companion `zero_alloc` test pins the reused
//! variant to literally zero heap allocations per phase.
//!
//! `cargo bench --bench alloc_churn` times it; `-- --test` runs each
//! routine once as a smoke test (CI's perf-smoke job).

use bench_support::{deep_dive_batch, synthetic_batch, tight_batch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paragon_des::{Duration, SimRng, Time};
use paragon_platform::{HostParams, SchedulingMeter};
use rt_task::{CommModel, ResourceEats};
use rtsads::{Algorithm, PhaseScratch};
use sched_search::{
    search_schedule, search_schedule_with, ChildOrder, Pruning, Representation, SearchParams,
    SearchScratch,
};
use std::hint::black_box;

/// The raw engine on the canonical deep dive: depth-`n` straight descent,
/// no backtracking, so per-phase allocator traffic is the dominant
/// non-search cost and buffer reuse shows up directly in the phase rate.
fn engine_deep_dive(c: &mut Criterion) {
    let workers = 2;
    let comm = CommModel::free();
    let repr = Representation::assignment_oriented();
    let mut group = c.benchmark_group("alloc_churn_deep_dive");
    for n in [64usize, 128, 256] {
        let tasks = deep_dive_batch(n);
        let initial = vec![Time::ZERO; workers];
        let params = SearchParams {
            tasks: &tasks,
            comm: &comm,
            initial_finish: &initial,
            representation: &repr,
            child_order: ChildOrder::LoadBalance,
            now: Time::ZERO,
            vertex_cap: None,
            pruning: Pruning::default(),
            resources: ResourceEats::new(),
            provenance: false,
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fresh", n), &params, |b, p| {
            b.iter(|| {
                let mut meter = SchedulingMeter::new(HostParams::free(), Duration::ZERO);
                black_box(search_schedule(p, &mut meter).assignments.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("reused", n), &params, |b, p| {
            let mut scratch = SearchScratch::new();
            b.iter(|| {
                let mut meter = SchedulingMeter::new(HostParams::free(), Duration::ZERO);
                let out = search_schedule_with(p, &mut meter, &mut scratch);
                let len = out.assignments.len();
                scratch.recycle(out.assignments);
                black_box(len)
            });
        });
    }
    group.finish();
}

/// The full algorithm layer on the mixed and backtrack-heavy batches:
/// fresh versus reused [`PhaseScratch`] through `schedule_phase`, i.e. the
/// exact call the driver makes each phase.
fn phase_scratch(c: &mut Criterion) {
    let workers = 8;
    let comm = CommModel::constant(Duration::from_millis(2));
    let mut group = c.benchmark_group("alloc_churn_phase");
    let batches = [
        ("mixed", synthetic_batch(150, workers)),
        ("tight", tight_batch(150, workers)),
    ];
    for (name, tasks) in &batches {
        let initial = vec![Time::ZERO; workers];
        group.throughput(Throughput::Elements(tasks.len() as u64));
        for mode in ["fresh", "reused"] {
            group.bench_with_input(BenchmarkId::new(*name, mode), tasks, |b, tasks| {
                let algorithm = Algorithm::rt_sads();
                let mut scratch = PhaseScratch::new();
                b.iter(|| {
                    if mode == "fresh" {
                        scratch = PhaseScratch::new();
                    }
                    let mut meter = SchedulingMeter::new(
                        HostParams::new(Duration::from_micros(1)),
                        Duration::from_secs(10),
                    );
                    let mut rng = SimRng::seed_from(7);
                    let out = algorithm.schedule_phase(
                        tasks,
                        &comm,
                        &initial,
                        Time::ZERO,
                        Some(200_000),
                        Pruning::default(),
                        &ResourceEats::new(),
                        false,
                        1,
                        &mut meter,
                        &mut rng,
                        &mut scratch,
                    );
                    let n = out.assignments.len();
                    scratch.recycle(out.assignments);
                    black_box(n)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, engine_deep_dive, phase_scratch);
criterion_main!(benches);
