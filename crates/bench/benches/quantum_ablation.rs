//! Ext. B bench: end-to-end runs under the self-adjusting quantum versus
//! fixed quanta (the paper's Section 4.2 mechanism).

use bench_support::{bench_driver, bench_workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paragon_des::Duration;
use rtsads::{Algorithm, Driver, QuantumPolicy};
use std::hint::black_box;

fn quantum(c: &mut Criterion) {
    let workers = 6;
    let mut group = c.benchmark_group("quantum_ablation");
    group.sample_size(10);
    let policies: [(&str, QuantumPolicy); 3] = [
        ("self_adjusting", QuantumPolicy::self_adjusting()),
        ("fixed_1ms", QuantumPolicy::Fixed(Duration::from_millis(1))),
        (
            "fixed_25ms",
            QuantumPolicy::Fixed(Duration::from_millis(25)),
        ),
    ];
    for (label, policy) in policies {
        let built = bench_workload(workers, 0.3, 0);
        let config = bench_driver(workers, Algorithm::rt_sads()).quantum(policy);
        let report = Driver::new(config.clone()).run(built.tasks.clone());
        println!("# quantum {label}: hit ratio {:.4}", report.hit_ratio());
        group.bench_function(BenchmarkId::new("rt_sads", label), |b| {
            b.iter(|| {
                let built = bench_workload(workers, 0.3, 0);
                black_box(Driver::new(config.clone()).run(built.tasks).hits)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, quantum);
criterion_main!(benches);
