//! Microbenchmark of one scheduling phase: how fast the search engine
//! turns a batch into a feasible schedule under each representation, and
//! how the baselines compare at the same job.

use bench_support::{deep_dive_batch, synthetic_batch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paragon_des::{Duration, SimRng, Time};
use paragon_platform::{HostParams, SchedulingMeter};
use rt_task::{CommModel, ResourceEats};
use rtsads::{Algorithm, PhaseScratch};
use sched_search::{
    search_schedule, search_schedule_replay, ChildOrder, Pruning, Representation, SearchParams,
};
use std::hint::black_box;

fn phase(c: &mut Criterion) {
    let workers = 8;
    let comm = CommModel::constant(Duration::from_millis(2));
    let mut group = c.benchmark_group("scheduling_phase");
    for n in [50usize, 150, 400] {
        let tasks = synthetic_batch(n, workers);
        let initial = vec![Time::ZERO; workers];
        group.throughput(Throughput::Elements(n as u64));
        for algorithm in [
            Algorithm::rt_sads(),
            Algorithm::d_cols(),
            Algorithm::GreedyEdf,
        ] {
            group.bench_with_input(BenchmarkId::new(algorithm.name(), n), &tasks, |b, tasks| {
                // One scratch per benchmark, reused across iterations —
                // exactly how the driver runs phases in steady state.
                let mut scratch = PhaseScratch::new();
                b.iter(|| {
                    // an effectively unbounded quantum: profile the raw
                    // search, bounded by the vertex cap
                    let mut meter = SchedulingMeter::new(
                        HostParams::new(Duration::from_micros(1)),
                        Duration::from_secs(10),
                    );
                    let mut rng = SimRng::seed_from(7);
                    let out = algorithm.schedule_phase(
                        tasks,
                        &comm,
                        &initial,
                        Time::ZERO,
                        Some(200_000),
                        Pruning::default(),
                        &ResourceEats::new(),
                        false,
                        1,
                        &mut meter,
                        &mut rng,
                        &mut scratch,
                    );
                    let n = out.assignments.len();
                    scratch.recycle(out.assignments);
                    black_box(n)
                });
            });
        }
    }
    group.finish();
}

/// The tentpole scenario for the incremental engine: a straight dive of
/// depth `n` with every task feasible, so the search expands root-to-leaf
/// without backtracking. The incremental engine applies each assignment
/// exactly once (O(n) state work for the whole phase); the replay oracle
/// rebuilds the full root-to-vertex prefix on every pop (O(n²)), so its
/// per-vertex cost grows with depth.
fn deep_dive(c: &mut Criterion) {
    let workers = 2;
    let comm = CommModel::free();
    let repr = Representation::assignment_oriented();
    let mut group = c.benchmark_group("scheduling_phase_deep_dive");
    for n in [64usize, 128, 256] {
        let tasks = deep_dive_batch(n);
        let initial = vec![Time::ZERO; workers];
        let params = SearchParams {
            tasks: &tasks,
            comm: &comm,
            initial_finish: &initial,
            representation: &repr,
            child_order: ChildOrder::LoadBalance,
            now: Time::ZERO,
            vertex_cap: None,
            pruning: Pruning::default(),
            resources: ResourceEats::new(),
            provenance: false,
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("incremental", n), &params, |b, p| {
            b.iter(|| {
                let mut meter = SchedulingMeter::new(HostParams::free(), Duration::ZERO);
                black_box(search_schedule(p, &mut meter).assignments.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("replay", n), &params, |b, p| {
            b.iter(|| {
                let mut meter = SchedulingMeter::new(HostParams::free(), Duration::ZERO);
                black_box(search_schedule_replay(p, &mut meter).assignments.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, phase, deep_dive);
criterion_main!(benches);
